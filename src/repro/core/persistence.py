"""Persistence of fitted selectors and predicates.

Preprocessing (tokenization + weight computation) is the expensive part of
the paper's pipeline, so a long-running application wants to do it once and
reuse the result across processes.  This module provides simple pickle-based
persistence with a small versioned header so stale snapshots are detected
instead of failing obscurely.

The snapshot contains only plain Python objects (token indexes, weight
dictionaries, the base strings), no open resources, so pickling is safe for
every predicate class.  Declarative predicates are not persisted here: their
state lives in the backing database, which has its own durability story
(e.g. a SQLite file).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Union

from repro.core.predicates.base import Predicate
from repro.core.selection import ApproximateSelector

__all__ = ["SnapshotError", "save_predicate", "load_predicate", "save_selector", "load_selector"]

_MAGIC = "repro-snapshot"
_VERSION = 1


class SnapshotError(RuntimeError):
    """Raised when a snapshot file is missing, corrupt or incompatible."""


@dataclass
class _Snapshot:
    magic: str
    version: int
    kind: str
    payload: object


def _write(path: Union[str, Path], kind: str, payload: object) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    snapshot = _Snapshot(magic=_MAGIC, version=_VERSION, kind=kind, payload=payload)
    with open(path, "wb") as handle:
        pickle.dump(snapshot, handle, protocol=pickle.HIGHEST_PROTOCOL)
    return path


def _read(path: Union[str, Path], kind: str) -> object:
    path = Path(path)
    if not path.exists():
        raise SnapshotError(f"snapshot not found: {path}")
    try:
        with open(path, "rb") as handle:
            snapshot = pickle.load(handle)
    except (pickle.UnpicklingError, EOFError, AttributeError) as exc:
        raise SnapshotError(f"corrupt snapshot: {path}") from exc
    if not isinstance(snapshot, _Snapshot) or snapshot.magic != _MAGIC:
        raise SnapshotError(f"not a repro snapshot: {path}")
    if snapshot.version != _VERSION:
        raise SnapshotError(
            f"snapshot version {snapshot.version} is not supported (expected {_VERSION})"
        )
    if snapshot.kind != kind:
        raise SnapshotError(
            f"snapshot contains a {snapshot.kind!r}, expected a {kind!r}"
        )
    return snapshot.payload


def save_predicate(predicate: Predicate, path: Union[str, Path]) -> Path:
    """Persist a fitted predicate (index + weights) to ``path``."""
    if not predicate.is_fitted:
        raise SnapshotError("only fitted predicates can be saved")
    return _write(path, "predicate", predicate)


def load_predicate(path: Union[str, Path]) -> Predicate:
    """Load a predicate previously saved with :func:`save_predicate`."""
    payload = _read(path, "predicate")
    if not isinstance(payload, Predicate):
        raise SnapshotError("snapshot payload is not a Predicate")
    return payload


def save_selector(selector: ApproximateSelector, path: Union[str, Path]) -> Path:
    """Persist an :class:`ApproximateSelector` (strings + fitted predicate)."""
    return _write(path, "selector", selector)


def load_selector(path: Union[str, Path]) -> ApproximateSelector:
    """Load a selector previously saved with :func:`save_selector`."""
    payload = _read(path, "selector")
    if not isinstance(payload, ApproximateSelector):
        raise SnapshotError("snapshot payload is not an ApproximateSelector")
    return payload
