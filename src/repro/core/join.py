"""Approximate join: the generalization of approximate selection.

The paper studies approximate *selections* and notes (chapter 1) that they
are special cases of the approximate *join* (record linkage / similarity
join) operation.  This module provides that generalization on top of the same
predicate classes:

* :class:`ApproximateJoiner` joins two relations of strings: every tuple of
  the probe relation is used as a query against an indexed base relation and
  pairs scoring at or above a threshold are emitted.
* ``self_join`` performs the similarity self-join used by duplicate
  detection (each string matched against the rest of its own relation).

The join reuses the predicates' candidate generation, so its cost per probe
tuple is the same as one approximate selection -- exactly the "index the base
relation once, stream the probe relation" strategy of the declarative
framework.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Sequence, Set, Union

from repro.core.predicates.base import Predicate
from repro.core.predicates.registry import make_predicate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.blocking.base import Blocker

__all__ = ["JoinMatch", "SelfJoinStats", "ApproximateJoiner"]


@dataclass(frozen=True)
class JoinMatch:
    """One matched pair produced by an approximate join."""

    left_id: int
    right_id: int
    left_text: str
    right_text: str
    score: float


@dataclass
class SelfJoinStats:
    """Work counters of one :meth:`ApproximateJoiner.self_join` run.

    ``pairs_examined`` counts (probe, candidate) pairs actually scored --
    the quantity blocking exists to reduce.  Note the blocked path also
    excludes identity pairs and already-reported orientations *before*
    scoring, so each unordered pair is examined at most once there, while
    the unblocked baseline scores both orientations; up to 2x of a reported
    reduction therefore comes from orientation pruning rather than blocking
    proper.  ``probes_skipped`` counts tuples never probed at all because
    their block left no admissible partner (singleton blocks, or blocks
    whose other members were already probed from the smaller-id side).
    """

    probes: int = 0
    probes_skipped: int = 0
    pairs_examined: int = 0
    pairs_emitted: int = 0


class ApproximateJoiner:
    """Approximate (similarity) join between two relations of strings.

    Parameters
    ----------
    base:
        The relation that is indexed (the "build" side).
    predicate:
        A predicate instance or registry name; the paper's accuracy findings
        for selections carry over directly since the join is a sequence of
        selections.
    threshold:
        Default similarity threshold for emitted pairs.
    blocker:
        Optional :class:`repro.blocking.Blocker` for candidate pruning.  It is
        attached to the predicate (pruning every probe) and additionally
        drives the blocked :meth:`self_join`, which only probes within blocks
        and skips singleton blocks entirely.

    Example
    -------
    >>> joiner = ApproximateJoiner(["AT&T Inc.", "IBM Corp."], predicate="jaccard")
    >>> [match.right_id for match in joiner.join(["AT&T Incorporated"], threshold=0.3)]
    [0]
    """

    def __init__(
        self,
        base: Sequence[str],
        predicate: Union[Predicate, str] = "bm25",
        threshold: float = 0.5,
        blocker: Optional["Blocker"] = None,
        **predicate_kwargs,
    ):
        if not 0.0 <= threshold:
            raise ValueError("threshold must be non-negative")
        self._base = list(base)
        if isinstance(predicate, str):
            predicate = make_predicate(predicate, **predicate_kwargs)
        elif predicate_kwargs:
            raise ValueError("predicate_kwargs are only valid with a predicate name")
        self.predicate = predicate
        self.threshold = threshold
        if blocker is not None:
            self.predicate.set_blocker(blocker)
        #: Statistics of the most recent :meth:`self_join` run.
        self.last_self_join_stats: Optional[SelfJoinStats] = None
        # Predicates already fitted on this very relation (e.g. handed over by
        # the engine's fitted-state cache) are reused without re-preprocessing.
        already_fitted = (
            getattr(predicate, "is_fitted", False)
            or getattr(predicate, "is_preprocessed", False)
        ) and getattr(predicate, "base_strings", None) == self._base
        if not already_fitted:
            self.predicate.fit(self._base)

    @property
    def blocker(self) -> Optional["Blocker"]:
        """The blocker attached to the underlying predicate (``None`` = off)."""
        return self.predicate.blocker

    # -- joins -------------------------------------------------------------------

    def matches_for(
        self, probe_id: int, probe_text: str, threshold: Optional[float] = None
    ) -> List[JoinMatch]:
        """All base tuples matching one probe string."""
        limit = self.threshold if threshold is None else threshold
        results = []
        for scored in self.predicate.select(probe_text, limit):
            results.append(
                JoinMatch(
                    left_id=probe_id,
                    right_id=scored.tid,
                    left_text=probe_text,
                    right_text=self._base[scored.tid],
                    score=scored.score,
                )
            )
        return results

    def join(
        self,
        probe: Iterable[str],
        threshold: Optional[float] = None,
        top_k: Optional[int] = None,
    ) -> List[JoinMatch]:
        """Join a probe relation against the indexed base relation.

        ``top_k`` optionally restricts each probe tuple to its best ``k``
        matches (after thresholding), which is the common record-linkage
        configuration ("best match per record").  Probes then go through the
        predicate's heap-based (max-score pruned where supported)
        :meth:`~repro.core.predicates.base.Predicate.top_k` instead of a full
        thresholded selection: the k best of the thresholded matches equal
        the thresholded k best overall, so results are identical while each
        probe pays for ``k`` results instead of a full candidate sort.
        """
        if top_k is not None and top_k < 0:
            raise ValueError("top_k must be non-negative")
        limit = self.threshold if threshold is None else threshold
        # Only monotone-sum predicates route through top_k: their ranking cost
        # per probe is the pruned accumulation, while e.g. EditDistance is
        # faster through its own filtered select().
        use_fast_top_k = top_k is not None and getattr(
            self.predicate, "supports_maxscore", False
        )
        if use_fast_top_k:
            # select() would refuse sub-blocker thresholds; so do we (once --
            # the threshold and blocker are invariant across probes).
            self.predicate._check_blocker_threshold(limit)
        output: List[JoinMatch] = []
        for probe_id, probe_text in enumerate(probe):
            if use_fast_top_k:
                matches = [
                    JoinMatch(
                        left_id=probe_id,
                        right_id=scored.tid,
                        left_text=probe_text,
                        right_text=self._base[scored.tid],
                        score=scored.score,
                    )
                    for scored in self.predicate.top_k(probe_text, top_k)
                    if scored.score >= limit
                ]
            else:
                matches = self.matches_for(probe_id, probe_text, threshold)
                if top_k is not None:
                    # Guarantee the k *highest-scoring* matches survive even if
                    # a custom predicate returns its selection unsorted.
                    matches = heapq.nlargest(
                        top_k, matches, key=lambda match: (match.score, -match.right_id)
                    )
            output.extend(matches)
        return output

    def iter_join(
        self, probe: Iterable[str], threshold: Optional[float] = None
    ) -> Iterator[JoinMatch]:
        """Streaming variant of :meth:`join` (one probe tuple at a time)."""
        for probe_id, probe_text in enumerate(probe):
            yield from self.matches_for(probe_id, probe_text, threshold)

    def self_join(
        self, threshold: Optional[float] = None, include_identity: bool = False
    ) -> List[JoinMatch]:
        """Similarity self-join of the base relation.

        Each unordered pair is reported once (``left_id < right_id``); the
        trivial identity pairs are excluded unless ``include_identity``.

        With a blocker attached, each tuple is only probed against its block
        partners with ids above its own (identity pairs and already-reported
        orientations are excluded *before* scoring), and tuples whose block
        leaves no admissible partner -- singleton blocks included -- are
        never probed at all.  Work counters are recorded in
        :attr:`last_self_join_stats`.

        Each probe is a :meth:`~repro.core.predicates.base.Predicate.select`,
        which filters candidates by the threshold *before* sorting, so blocked
        self-joins no longer pay a full candidate sort per probe.
        """
        limit = self.threshold if threshold is None else threshold
        blocker = self.blocker
        # Check once up front: probes skipped via singleton blocks would
        # otherwise bypass the predicate-level guard entirely.
        if blocker is not None and not blocker.supports_threshold(limit):
            raise ValueError(
                f"self-join threshold {limit} is below the threshold the "
                f"attached {blocker.name!r} blocker was built for; "
                "rebuild the blocker with the lower threshold"
            )
        stats = SelfJoinStats()
        self.last_self_join_stats = stats
        output: List[JoinMatch] = []
        for tid, text in enumerate(self._base):
            allowed: Optional[Set[int]] = None
            if blocker is not None:
                partners = blocker.partners(tid)
                if partners is not None:
                    allowed = {other for other in partners if other > tid}
                    if include_identity:
                        allowed.add(tid)
                    if not allowed:
                        stats.probes_skipped += 1
                        continue
            stats.probes += 1
            if allowed is not None:
                with self.predicate.restrict_candidates(allowed):
                    scored = self.predicate.select(text, limit)
            else:
                scored = self.predicate.select(text, limit)
            stats.pairs_examined += self.predicate.last_num_candidates or 0
            for result in scored:
                if result.tid == tid:
                    if include_identity:
                        output.append(JoinMatch(tid, tid, text, text, result.score))
                    continue
                if result.tid < tid:
                    continue  # reported when probing the smaller tid
                output.append(
                    JoinMatch(tid, result.tid, text, self._base[result.tid], result.score)
                )
        stats.pairs_emitted = len(output)
        return output

    @property
    def base(self) -> List[str]:
        return list(self._base)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ApproximateJoiner(n={len(self._base)}, predicate={self.predicate.name}, "
            f"threshold={self.threshold})"
        )
