"""Approximate join: the generalization of approximate selection.

The paper studies approximate *selections* and notes (chapter 1) that they
are special cases of the approximate *join* (record linkage / similarity
join) operation.  This module provides that generalization on top of the same
predicate classes:

* :class:`ApproximateJoiner` joins two relations of strings: every tuple of
  the probe relation is used as a query against an indexed base relation and
  pairs scoring at or above a threshold are emitted.
* ``self_join`` performs the similarity self-join used by duplicate
  detection (each string matched against the rest of its own relation).

The join reuses the predicates' candidate generation, so its cost per probe
tuple is the same as one approximate selection -- exactly the "index the base
relation once, stream the probe relation" strategy of the declarative
framework.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from repro.core.predicates.base import Predicate
from repro.core.predicates.registry import make_predicate

__all__ = ["JoinMatch", "ApproximateJoiner"]


@dataclass(frozen=True)
class JoinMatch:
    """One matched pair produced by an approximate join."""

    left_id: int
    right_id: int
    left_text: str
    right_text: str
    score: float


class ApproximateJoiner:
    """Approximate (similarity) join between two relations of strings.

    Parameters
    ----------
    base:
        The relation that is indexed (the "build" side).
    predicate:
        A predicate instance or registry name; the paper's accuracy findings
        for selections carry over directly since the join is a sequence of
        selections.
    threshold:
        Default similarity threshold for emitted pairs.

    Example
    -------
    >>> joiner = ApproximateJoiner(["AT&T Inc.", "IBM Corp."], predicate="jaccard")
    >>> [match.right_id for match in joiner.join(["AT&T Incorporated"], threshold=0.3)]
    [0]
    """

    def __init__(
        self,
        base: Sequence[str],
        predicate: Union[Predicate, str] = "bm25",
        threshold: float = 0.5,
        **predicate_kwargs,
    ):
        if not 0.0 <= threshold:
            raise ValueError("threshold must be non-negative")
        self._base = list(base)
        if isinstance(predicate, str):
            predicate = make_predicate(predicate, **predicate_kwargs)
        elif predicate_kwargs:
            raise ValueError("predicate_kwargs are only valid with a predicate name")
        self.predicate = predicate
        self.threshold = threshold
        self.predicate.fit(self._base)

    # -- joins -------------------------------------------------------------------

    def matches_for(
        self, probe_id: int, probe_text: str, threshold: Optional[float] = None
    ) -> List[JoinMatch]:
        """All base tuples matching one probe string."""
        limit = self.threshold if threshold is None else threshold
        results = []
        for scored in self.predicate.select(probe_text, limit):
            results.append(
                JoinMatch(
                    left_id=probe_id,
                    right_id=scored.tid,
                    left_text=probe_text,
                    right_text=self._base[scored.tid],
                    score=scored.score,
                )
            )
        return results

    def join(
        self,
        probe: Iterable[str],
        threshold: Optional[float] = None,
        top_k: Optional[int] = None,
    ) -> List[JoinMatch]:
        """Join a probe relation against the indexed base relation.

        ``top_k`` optionally restricts each probe tuple to its best ``k``
        matches (after thresholding), which is the common record-linkage
        configuration ("best match per record").
        """
        output: List[JoinMatch] = []
        for probe_id, probe_text in enumerate(probe):
            matches = self.matches_for(probe_id, probe_text, threshold)
            if top_k is not None:
                matches = matches[:top_k]
            output.extend(matches)
        return output

    def iter_join(
        self, probe: Iterable[str], threshold: Optional[float] = None
    ) -> Iterator[JoinMatch]:
        """Streaming variant of :meth:`join` (one probe tuple at a time)."""
        for probe_id, probe_text in enumerate(probe):
            yield from self.matches_for(probe_id, probe_text, threshold)

    def self_join(
        self, threshold: Optional[float] = None, include_identity: bool = False
    ) -> List[JoinMatch]:
        """Similarity self-join of the base relation.

        Each unordered pair is reported once (``left_id < right_id``); the
        trivial identity pairs are excluded unless ``include_identity``.
        """
        output: List[JoinMatch] = []
        for tid, text in enumerate(self._base):
            for match in self.matches_for(tid, text, threshold):
                if match.right_id == tid and not include_identity:
                    continue
                if match.right_id < tid:
                    continue  # reported when probing the smaller tid
                output.append(match)
        return output

    @property
    def base(self) -> List[str]:
        return list(self._base)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ApproximateJoiner(n={len(self._base)}, predicate={self.predicate.name}, "
            f"threshold={self.threshold})"
        )
