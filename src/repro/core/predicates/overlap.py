"""Overlap predicates (paper section 3.1).

* :class:`IntersectSize` -- ``|Q ∩ D|`` over distinct tokens.
* :class:`Jaccard` -- ``|Q ∩ D| / |Q ∪ D|``.
* :class:`WeightedMatch` -- total weight of the common tokens.
* :class:`WeightedJaccard` -- weight of the common tokens divided by the
  weight of the union.

The weighted variants take a weighting scheme; the paper finds that the
Robertson-Sparck Jones (RS) weights are more accurate than idf (section
5.3.1), so RS is the default.

The weighted variants fold their weight table into a
:class:`~repro.core.index.WeightedPostingIndex` at fit time and iterate query
tokens in sorted order everywhere, so accumulation is deterministic and the
``top_k`` fast path of :class:`WeightedMatch` (a monotone sum, eligible for
max-score pruning) reproduces the unpruned scores bit for bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence, Set, Tuple

from repro.core import kernels
from repro.core.index import InvertedIndex, WeightedPostingIndex
from repro.core.predicates.base import Predicate
from repro.core.topk import Term
from repro.text.tokenize import QgramTokenizer, Tokenizer
from repro.text.weights import CollectionStatistics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.blocking.base import Blocker

__all__ = ["IntersectSize", "Jaccard", "WeightedMatch", "WeightedJaccard"]


class _OverlapBase(Predicate):
    """Shared tokenization/indexing machinery for the overlap predicates."""

    family = "overlap"
    #: Blocking happens inside :meth:`_scores` (before any scoring work).
    _prunes_before_scoring = True

    def __init__(self, tokenizer: Tokenizer | None = None):
        super().__init__()
        self.tokenizer = tokenizer or QgramTokenizer(q=2)
        self._token_lists: list[list[str]] = []
        self._token_sets: list[set[str]] = []
        self._index: InvertedIndex | None = None

    def tokenize_phase(self) -> None:
        self._token_lists = self._relation_token_lists()
        self._token_sets = [set(tokens) for tokens in self._token_lists]
        self._index = InvertedIndex(self._token_lists)

    def weight_phase(self) -> None:
        """Unweighted predicates need no second phase."""

    def _query_tokens(self, query: str) -> set[str]:
        return set(self.tokenizer.tokenize(query))

    # -- blocking -------------------------------------------------------------

    def _blocker_corpus(self, blocker: "Blocker") -> list[list[str]]:
        """Blockers share the predicate's own token lists (same tokenizer)."""
        return self._token_lists

    def _blocker_query_tokens(self, query: str, blocker: "Blocker") -> Set[str]:
        return self._query_tokens(query)

    def _candidate_ids(self, query_tokens: Set[str]) -> Optional[Set[int]]:
        """Allowed candidates from the blocker hook and/or an active restriction.

        ``None`` means unrestricted (take the index's full candidate set).
        This runs *before* any scoring, which is where blocking pays off.
        """
        blocker, restriction = self._blocker, self._restriction
        if blocker is None and restriction is None:
            return None
        allowed: Optional[Set[int]] = None
        if blocker is not None:
            assert self._index is not None
            allowed = self._index.candidates(query_tokens, blocker=blocker)
        if restriction is not None:
            allowed = set(restriction) if allowed is None else allowed & restriction
        return allowed

    def _in_range(self, tid: int) -> bool:
        return 0 <= tid < len(self._token_sets)


class IntersectSize(_OverlapBase):
    """Number of common distinct tokens between the query and the tuple."""

    name = "IntersectSize"

    def _scores(self, query: str) -> Dict[int, float]:
        assert self._index is not None
        query_tokens = self._query_tokens(query)
        allowed = self._candidate_ids(query_tokens)
        if allowed is None:
            return {
                tid: float(count)
                for tid, count in self._index.candidate_overlap(query_tokens).items()
            }
        scores: Dict[int, float] = {}
        for tid in allowed:
            common = len(query_tokens & self._token_sets[tid])
            if common:
                scores[tid] = float(common)
        return scores

    def _score_one(self, query: str, tid: int) -> Optional[float]:
        if not self._in_range(tid):
            return 0.0
        return float(len(self._query_tokens(query) & self._token_sets[tid]))


class Jaccard(_OverlapBase):
    """Jaccard coefficient of the query and tuple token sets."""

    name = "Jaccard"
    #: The length/prefix blockers' exactness guarantee is stated for exactly
    #: this score: an overlap fraction bounded by min/max set size.
    similarity_kind = "jaccard"

    def _scores(self, query: str) -> Dict[int, float]:
        assert self._index is not None
        query_tokens = self._query_tokens(query)
        query_size = len(query_tokens)
        allowed = self._candidate_ids(query_tokens)
        scores: Dict[int, float] = {}
        if allowed is None:
            for tid, common in self._index.candidate_overlap(query_tokens).items():
                union = query_size + len(self._token_sets[tid]) - common
                scores[tid] = common / union if union else 0.0
            return scores
        for tid in allowed:
            token_set = self._token_sets[tid]
            common = len(query_tokens & token_set)
            if not common:
                continue
            union = query_size + len(token_set) - common
            scores[tid] = common / union if union else 0.0
        return scores

    def _score_one(self, query: str, tid: int) -> Optional[float]:
        if not self._in_range(tid):
            return 0.0
        query_tokens = self._query_tokens(query)
        token_set = self._token_sets[tid]
        common = len(query_tokens & token_set)
        if not common:
            return 0.0
        union = len(query_tokens) + len(token_set) - common
        return common / union if union else 0.0


class _WeightedOverlapBase(_OverlapBase):
    """Weighted overlap predicates share the RS/idf weight table."""

    #: Monotone-sum accumulation: scoring routes through repro.core.kernels.
    uses_kernels = True

    def __init__(self, tokenizer: Tokenizer | None = None, weighting: str = "rs"):
        super().__init__(tokenizer)
        if weighting not in ("rs", "idf"):
            raise ValueError("weighting must be 'rs' or 'idf'")
        self.weighting = weighting
        self._weights: Dict[str, float] = {}
        self._stats: CollectionStatistics | None = None
        #: token -> [(tid, weight)] postings with per-token bounds
        self._weighted_index: WeightedPostingIndex | None = None

    def weight_phase(self) -> None:
        self._stats = self._collection_statistics(self._token_lists)
        if self.weighting == "rs":
            self._weights = self._stats.rs_table()
        else:
            self._weights = self._stats.idf_table()
        assert self._index is not None
        self._weighted_index = WeightedPostingIndex.from_token_weights(
            self._index, self._weights
        )

    def _weight(self, token: str) -> float:
        return self._weights.get(token, 0.0)

    def _common_weight(self, query_tokens: Set[str]) -> Dict[int, float]:
        """Weight of the common tokens per candidate, postings-driven.

        Tokens are visited in sorted order so per-tuple summation order is
        canonical (and matches :meth:`_tuple_common_weight`); the kernel
        reproduces that order bit for bit on both backends.
        """
        assert self._weighted_index is not None
        return kernels.accumulate(
            self._weighted_index,
            [(token, 1.0) for token in sorted(query_tokens)],
            len(self._token_sets),
        )

    def _tuple_common_weight(
        self, sorted_tokens: Sequence[str], tid: int
    ) -> Tuple[float, bool]:
        """``(common weight, matched)`` of one tuple in the canonical order.

        ``sorted_tokens`` must be the query tokens in sorted order (the
        caller sorts once per query), so summation matches the
        postings-driven path bit for bit.
        """
        token_set = self._token_sets[tid]
        total = 0.0
        matched = False
        for token in sorted_tokens:
            if token not in token_set:
                continue
            weight = self._weight(token)
            if weight == 0.0:
                continue
            total += weight
            matched = True
        return total, matched

    def _restricted_common_weight(
        self, query_tokens: Set[str], allowed: Set[int]
    ) -> Dict[int, float]:
        """Weight of the common tokens per allowed candidate.

        Candidates sharing only zero-weight tokens are omitted, matching the
        postings-driven accumulation of the unrestricted path.
        """
        sorted_tokens = sorted(query_tokens)
        common_weight: Dict[int, float] = {}
        for tid in allowed:
            total, matched = self._tuple_common_weight(sorted_tokens, tid)
            if matched:
                common_weight[tid] = total
        return common_weight


class WeightedMatch(_WeightedOverlapBase):
    """Sum of weights of the common tokens (RS weights by default)."""

    name = "WeightedMatch"
    supports_maxscore = True

    def _scores(self, query: str) -> Dict[int, float]:
        query_tokens = self._query_tokens(query)
        allowed = self._candidate_ids(query_tokens)
        if allowed is not None:
            return self._restricted_common_weight(query_tokens, allowed)
        return self._common_weight(query_tokens)

    def _maxscore_plan(self, query: str):
        assert self._weighted_index is not None
        weighted = self._weighted_index
        query_tokens = self._query_tokens(query)
        # Blocking happens before scoring in this family, so the pruned path
        # honors it directly through the allowed set.
        allowed = self._candidate_ids(query_tokens)
        sorted_tokens = sorted(query_tokens)
        terms = [
            Term(
                token=token,
                query_weight=1.0,
                postings=weighted.postings(token),
                max_contribution=weighted.max_contribution(token),
                min_contribution=weighted.min_contribution(token),
                arrays=weighted.arrays(token),
            )
            for token in sorted_tokens
            if token in weighted
        ]

        def rescore(tids: Iterable[int]) -> Dict[int, float]:
            return {
                tid: self._tuple_common_weight(sorted_tokens, tid)[0] for tid in tids
            }

        return terms, allowed, rescore

    def _score_one(self, query: str, tid: int) -> Optional[float]:
        if not self._in_range(tid):
            return 0.0
        return self._tuple_common_weight(sorted(self._query_tokens(query)), tid)[0]


class WeightedJaccard(_WeightedOverlapBase):
    """Weight of the common tokens over the weight of the union."""

    name = "WeightedJaccard"

    def __init__(self, tokenizer: Tokenizer | None = None, weighting: str = "rs"):
        super().__init__(tokenizer, weighting)
        self._tuple_weight_sums: list[float] = []

    def weight_phase(self) -> None:
        super().weight_phase()
        self._tuple_weight_sums = [
            sum(self._weight(token) for token in sorted(token_set))
            for token_set in self._token_sets
        ]

    def _query_weight_sum(self, query_tokens: Set[str]) -> float:
        return sum(self._weight(token) for token in sorted(query_tokens))

    def _scores(self, query: str) -> Dict[int, float]:
        query_tokens = self._query_tokens(query)
        query_weight_sum = self._query_weight_sum(query_tokens)
        allowed = self._candidate_ids(query_tokens)
        if allowed is not None:
            common_weight = self._restricted_common_weight(query_tokens, allowed)
        else:
            common_weight = self._common_weight(query_tokens)
        scores: Dict[int, float] = {}
        for tid, common in common_weight.items():
            union = query_weight_sum + self._tuple_weight_sums[tid] - common
            scores[tid] = common / union if union > 0 else 0.0
        return scores

    def _score_one(self, query: str, tid: int) -> Optional[float]:
        if not self._in_range(tid):
            return 0.0
        query_tokens = self._query_tokens(query)
        common, matched = self._tuple_common_weight(sorted(query_tokens), tid)
        if not matched:
            return 0.0
        union = (
            self._query_weight_sum(query_tokens) + self._tuple_weight_sums[tid] - common
        )
        return common / union if union > 0 else 0.0
