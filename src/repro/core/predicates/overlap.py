"""Overlap predicates (paper section 3.1).

* :class:`IntersectSize` -- ``|Q ∩ D|`` over distinct tokens.
* :class:`Jaccard` -- ``|Q ∩ D| / |Q ∪ D|``.
* :class:`WeightedMatch` -- total weight of the common tokens.
* :class:`WeightedJaccard` -- weight of the common tokens divided by the
  weight of the union.

The weighted variants take a weighting scheme; the paper finds that the
Robertson-Sparck Jones (RS) weights are more accurate than idf (section
5.3.1), so RS is the default.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.index import InvertedIndex
from repro.core.predicates.base import Predicate
from repro.text.tokenize import QgramTokenizer, Tokenizer
from repro.text.weights import CollectionStatistics

__all__ = ["IntersectSize", "Jaccard", "WeightedMatch", "WeightedJaccard"]


class _OverlapBase(Predicate):
    """Shared tokenization/indexing machinery for the overlap predicates."""

    family = "overlap"

    def __init__(self, tokenizer: Tokenizer | None = None):
        super().__init__()
        self.tokenizer = tokenizer or QgramTokenizer(q=2)
        self._token_lists: list[list[str]] = []
        self._token_sets: list[set[str]] = []
        self._index: InvertedIndex | None = None

    def tokenize_phase(self) -> None:
        self._token_lists = [self.tokenizer.tokenize(text) for text in self._strings]
        self._token_sets = [set(tokens) for tokens in self._token_lists]
        self._index = InvertedIndex(self._token_lists)

    def weight_phase(self) -> None:
        """Unweighted predicates need no second phase."""

    def _query_tokens(self, query: str) -> set[str]:
        return set(self.tokenizer.tokenize(query))


class IntersectSize(_OverlapBase):
    """Number of common distinct tokens between the query and the tuple."""

    name = "IntersectSize"

    def _scores(self, query: str) -> Dict[int, float]:
        assert self._index is not None
        query_tokens = self._query_tokens(query)
        return {
            tid: float(count)
            for tid, count in self._index.candidate_overlap(query_tokens).items()
        }


class Jaccard(_OverlapBase):
    """Jaccard coefficient of the query and tuple token sets."""

    name = "Jaccard"

    def _scores(self, query: str) -> Dict[int, float]:
        assert self._index is not None
        query_tokens = self._query_tokens(query)
        query_size = len(query_tokens)
        scores: Dict[int, float] = {}
        for tid, common in self._index.candidate_overlap(query_tokens).items():
            union = query_size + len(self._token_sets[tid]) - common
            scores[tid] = common / union if union else 0.0
        return scores


class _WeightedOverlapBase(_OverlapBase):
    """Weighted overlap predicates share the RS/idf weight table."""

    def __init__(self, tokenizer: Tokenizer | None = None, weighting: str = "rs"):
        super().__init__(tokenizer)
        if weighting not in ("rs", "idf"):
            raise ValueError("weighting must be 'rs' or 'idf'")
        self.weighting = weighting
        self._weights: Dict[str, float] = {}
        self._stats: CollectionStatistics | None = None

    def weight_phase(self) -> None:
        self._stats = CollectionStatistics(self._token_lists)
        if self.weighting == "rs":
            self._weights = self._stats.rs_table()
        else:
            self._weights = self._stats.idf_table()

    def _weight(self, token: str) -> float:
        return self._weights.get(token, 0.0)


class WeightedMatch(_WeightedOverlapBase):
    """Sum of weights of the common tokens (RS weights by default)."""

    name = "WeightedMatch"

    def _scores(self, query: str) -> Dict[int, float]:
        assert self._index is not None
        query_tokens = self._query_tokens(query)
        scores: Dict[int, float] = {}
        for token in query_tokens:
            weight = self._weight(token)
            if weight == 0.0:
                continue
            for tid, _ in self._index.postings(token):
                scores[tid] = scores.get(tid, 0.0) + weight
        return scores


class WeightedJaccard(_WeightedOverlapBase):
    """Weight of the common tokens over the weight of the union."""

    name = "WeightedJaccard"

    def __init__(self, tokenizer: Tokenizer | None = None, weighting: str = "rs"):
        super().__init__(tokenizer, weighting)
        self._tuple_weight_sums: list[float] = []

    def weight_phase(self) -> None:
        super().weight_phase()
        self._tuple_weight_sums = [
            sum(self._weight(token) for token in token_set)
            for token_set in self._token_sets
        ]

    def _scores(self, query: str) -> Dict[int, float]:
        assert self._index is not None
        query_tokens = self._query_tokens(query)
        query_weight_sum = sum(self._weight(token) for token in query_tokens)
        common_weight: Dict[int, float] = {}
        for token in query_tokens:
            weight = self._weight(token)
            if weight == 0.0:
                continue
            for tid, _ in self._index.postings(token):
                common_weight[tid] = common_weight.get(tid, 0.0) + weight
        scores: Dict[int, float] = {}
        for tid, common in common_weight.items():
            union = query_weight_sum + self._tuple_weight_sums[tid] - common
            scores[tid] = common / union if union > 0 else 0.0
        return scores
