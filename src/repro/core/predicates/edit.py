"""Edit-based predicate (paper sections 3.4 and 4.4).

The similarity is the normalized edit similarity of equation 3.13::

    sim_edit(Q, D) = 1 - ed(Q, D) / max(|Q|, |D|)

Following Gravano et al., the declarative realization first generates a
*candidate set* using properties of the strings' q-grams (no false
negatives for a given threshold) and then verifies candidates with the exact
edit distance.  The same structure is used here:

* :meth:`EditDistance.rank` (used by the accuracy experiments, which do not
  prune by threshold) scores every tuple that shares at least one q-gram with
  the query.
* :meth:`EditDistance.select` applies the q-gram count filter and the length
  filter for the requested threshold before running a banded edit-distance
  verification, which is how the paper keeps this predicate fast.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from repro.core.index import InvertedIndex
from repro.core.predicates.base import Predicate, ScoredTuple
from repro.text.strings import edit_similarity, levenshtein_within
from repro.text.tokenize import QgramTokenizer, normalize_string

__all__ = ["EditDistance"]


class EditDistance(Predicate):
    """Normalized Levenshtein edit similarity with q-gram filtering."""

    name = "EditDistance"
    family = "edit-based"

    def __init__(self, q: int = 2):
        super().__init__()
        self.tokenizer = QgramTokenizer(q=q)
        self.q = q
        self._normalized: List[str] = []
        self._token_lists: List[List[str]] = []
        self._index: InvertedIndex | None = None

    def tokenize_phase(self) -> None:
        self._normalized = [normalize_string(text) for text in self._strings]
        self._token_lists = self._relation_token_lists()
        self._index = InvertedIndex(self._token_lists)

    def weight_phase(self) -> None:
        """Edit distance needs no weights."""

    def _blocker_corpus(self, blocker) -> List[List[str]]:
        """Blockers reuse the predicate's q-gram token lists."""
        return self._token_lists

    def _blocker_query_tokens(self, query: str, blocker):
        return set(self.tokenizer.tokenize(query))

    # -- scoring ---------------------------------------------------------------

    #: Candidates are pruned before the (expensive) edit-distance DP below.
    _prunes_before_scoring = True

    def _scores(self, query: str) -> Dict[int, float]:
        assert self._index is not None
        normalized_query = normalize_string(query)
        query_tokens = self.tokenizer.tokenize(query)
        candidates = self._index.candidates(query_tokens, blocker=self.blocker)
        if self._restriction is not None:
            candidates &= self._restriction
        scores: Dict[int, float] = {}
        for tid in candidates:
            scores[tid] = edit_similarity(normalized_query, self._normalized[tid])
        return scores

    def _score_one(self, query: str, tid: int) -> Optional[float]:
        if not 0 <= tid < len(self._normalized):
            return 0.0
        # Candidate semantics: a tuple sharing no q-gram with the query is
        # never scored by the whole-corpus path, however similar its text.
        query_tokens = set(self.tokenizer.tokenize(query))
        if query_tokens.isdisjoint(self._token_lists[tid]):
            return 0.0
        return edit_similarity(normalize_string(query), self._normalized[tid])

    def select(self, query: str, threshold: float) -> List[ScoredTuple]:
        """Thresholded selection with q-gram count and length filtering.

        For ``sim_edit >= threshold`` the edit distance can be at most
        ``(1 - threshold) * max(|Q|, |D|)``; two strings within edit distance
        ``k`` differ in at most ``k * q`` q-grams, giving the classic count
        filter ``|G_Q ∩ G_D| >= max(|G_Q|, |G_D|) - k * q``.
        """
        self._require_fitted()
        assert self._index is not None
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be within [0, 1]")
        self._check_blocker_threshold(threshold)
        normalized_query = normalize_string(query)
        query_tokens = self.tokenizer.tokenize(query)
        query_counts = Counter(query_tokens)

        # Count shared q-grams (multiset semantics) per candidate.
        shared: Dict[int, int] = {}
        for token, query_tf in query_counts.items():
            for tid, base_tf in self._index.postings(token):
                shared[tid] = shared.get(tid, 0) + min(query_tf, base_tf)

        # Honor an active blocker / self-join restriction (this select()
        # bypasses rank(), so the generic filtering there does not apply).
        # Candidate generation must consult the blocker's probe tokens --
        # exactly like ``_scores`` and the sharded merge layer -- so blocked
        # selections agree bit for bit whether sharded or not: a tuple
        # sharing only non-probe q-grams with the query is not a candidate.
        allowed: Optional[set] = None
        if self._blocker is not None:
            allowed = self._index.candidates(query_tokens, blocker=self._blocker)
            if self._restriction is not None:
                allowed &= self._restriction
        elif self._restriction is not None:
            allowed = self._restriction
        if allowed is not None:
            shared = {tid: common for tid, common in shared.items() if tid in allowed}
        self.last_num_candidates = len(shared)

        results: List[ScoredTuple] = []
        for tid, common in shared.items():
            candidate = self._normalized[tid]
            longest = max(len(normalized_query), len(candidate))
            if longest == 0:
                results.append(ScoredTuple(tid, 1.0))
                continue
            max_distance = int((1.0 - threshold) * longest)
            if abs(len(normalized_query) - len(candidate)) > max_distance:
                continue
            required = max(len(query_tokens), len(self._token_lists[tid])) - max_distance * self.q
            if common < required:
                continue
            distance = levenshtein_within(normalized_query, candidate, max_distance)
            if distance is None:
                continue
            similarity = 1.0 - distance / longest
            if similarity >= threshold:
                results.append(ScoredTuple(tid, similarity))
        results.sort(key=lambda st: (-st.score, st.tid))
        return results
