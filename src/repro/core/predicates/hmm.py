"""Hidden Markov Model predicate (paper sections 3.3.2 and 4.3.2).

A two-state HMM generates the query: state "String" emits tokens from the
tuple ``D`` (with probability ``P(q|D)``, the within-tuple maximum likelihood
estimate) and state "General English" emits tokens according to their overall
collection frequency ``P(q|GE)``.  The similarity is the probability of
generating the query, which after dropping query-constant factors
(equation 4.6) becomes::

    sim(Q, D) = Π_{q ∈ Q ∩ D} (1 + a1 * P(q|D) / (a0 * P(q|GE)))

The per-(tuple, token) factor is precomputed during preprocessing, exactly
like the ``BASE_WEIGHTS`` table of the declarative realization; query
evaluation is then a single index lookup per query token.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional

from repro.core import kernels
from repro.core.index import InvertedIndex, WeightedPostingIndex
from repro.core.predicates.base import Predicate
from repro.text.tokenize import QgramTokenizer, Tokenizer

__all__ = ["HMM"]


class HMM(Predicate):
    """Two-state Hidden Markov Model similarity."""

    name = "HMM"
    family = "language-modeling"
    #: Monotone-sum log-space accumulation routes through repro.core.kernels
    #: (final exponentiation stays math.exp, like the LM predicate).
    uses_kernels = True

    def __init__(self, tokenizer: Tokenizer | None = None, a0: float = 0.2):
        super().__init__()
        if not 0.0 < a0 < 1.0:
            raise ValueError("a0 must be strictly between 0 and 1")
        self.tokenizer = tokenizer or QgramTokenizer(q=2)
        self.a0 = a0
        self.a1 = 1.0 - a0
        self._token_lists: List[List[str]] = []
        self._index: InvertedIndex | None = None
        #: per-tuple token -> log(1 + a1 P(q|D) / (a0 P(q|GE)))
        self._log_weights: List[Dict[str, float]] = []
        #: token -> [(tid, log weight)]: the same factors folded into posting
        #: lists so query-time accumulation is one kernel call.
        self._weighted_index: WeightedPostingIndex | None = None

    def tokenize_phase(self) -> None:
        self._token_lists = self._relation_token_lists()
        self._index = InvertedIndex(self._token_lists)

    def weight_phase(self) -> None:
        stats = self._collection_statistics(self._token_lists)
        collection_size = stats.collection_size or 1
        general_english = {
            token: stats.collection_frequency(token) / collection_size
            for token in stats.vocabulary
        }
        self._log_weights = []
        for tid in range(len(self._token_lists)):
            length = stats.length(tid) or 1
            weights: Dict[str, float] = {}
            for token, tf in stats.term_frequencies(tid).items():
                p_string = tf / length
                p_general = general_english[token]
                factor = 1.0 + (self.a1 * p_string) / (self.a0 * p_general)
                weights[token] = math.log(factor)
            self._log_weights.append(weights)
        # Every posting has a (strictly positive) log factor: fold them into
        # weighted posting lists for the vectorized accumulation kernels.
        assert self._index is not None
        contributions: Dict[str, List] = {}
        for token in self._index.tokens():
            contributions[token] = [
                (tid, self._log_weights[tid][token])
                for tid, _ in self._index.postings(token)
            ]
        self._weighted_index = WeightedPostingIndex(contributions)

    def _scores(self, query: str) -> Dict[int, float]:
        assert self._weighted_index is not None
        query_counts = Counter(self.tokenizer.tokenize(query))
        # Query first-occurrence token order (not sorted): the canonical
        # order _score_one replicates, preserved through the kernel.
        log_scores = kernels.accumulate(
            self._weighted_index,
            [(token, float(count)) for token, count in query_counts.items()],
            len(self._token_lists),
        )
        pair = kernels.dense_pair(log_scores)
        if pair is not None:
            tids, values = pair
            # Scalar math.exp over the exact accumulated log scores (np.exp
            # is not guaranteed ULP-identical to libm).
            exp = math.exp
            return kernels.dense_from_lists(
                tids, [exp(value) for value in values.tolist()]
            )
        return {tid: math.exp(value) for tid, value in log_scores.items()}

    def _score_one(self, query: str, tid: int) -> Optional[float]:
        if not 0 <= tid < len(self._log_weights):
            return 0.0
        # Same token order as _scores (query first-occurrence), so the log
        # sum is float-identical to the whole-corpus path.
        weights = self._log_weights[tid]
        log_score = 0.0
        matched = False
        for token, multiplicity in Counter(self.tokenizer.tokenize(query)).items():
            if token in weights:
                # repro-analysis: disable=RPL001 reason=query first-occurrence order IS the canonical order; _scores and the vectorized kernels accumulate in the same Counter order, so sorting would break bit-identity with them
                log_score += multiplicity * weights[token]
                matched = True
        return math.exp(log_score) if matched else 0.0
