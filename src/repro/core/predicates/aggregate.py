"""Aggregate weighted predicates (paper section 3.2).

Both predicates score ``sim(Q, D) = Σ_{t ∈ Q∩D} wq(t, Q) * wd(t, D)``:

* :class:`CosineTfIdf` -- normalized tf-idf weights on both sides, so the sum
  is the cosine of the two tf-idf vectors.
* :class:`BM25` -- Okapi BM25 weights with the Robertson-Sparck Jones idf on
  the document side and the ``(k3+1)tf/(k3+tf)`` saturation on the query
  side.  Parameter defaults follow section 5.3.2 (k1=1.5, k3=8, b=0.675).

Query execution is postings-driven: the document-side weights are folded
into a :class:`~repro.core.index.WeightedPostingIndex` at fit time, so
accumulation is one flat loop over precomputed floats, and -- the score being
a monotone sum -- ``top_k`` runs with max-score early termination
(:mod:`repro.core.topk`).  All accumulation iterates query tokens in sorted
order so summation is deterministic and the pruned/unpruned paths agree bit
for bit.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core import kernels
from repro.core.index import InvertedIndex, WeightedPostingIndex
from repro.core.predicates.base import Predicate
from repro.core.topk import Term
from repro.text.tokenize import QgramTokenizer, Tokenizer
from repro.text.weights import (
    BM25Parameters,
    CollectionStatistics,
    bm25_document_weights,
    bm25_query_weights,
    tfidf_weights,
)

__all__ = ["CosineTfIdf", "BM25"]


class _AggregateBase(Predicate):
    family = "aggregate-weighted"
    supports_maxscore = True
    #: Monotone-sum accumulation: scoring routes through repro.core.kernels.
    uses_kernels = True

    def __init__(self, tokenizer: Tokenizer | None = None):
        super().__init__()
        self.tokenizer = tokenizer or QgramTokenizer(q=2)
        self._token_lists: List[List[str]] = []
        self._index: InvertedIndex | None = None
        self._stats: CollectionStatistics | None = None
        #: per-tuple token -> document-side weight
        self._doc_weights: List[Dict[str, float]] = []
        #: token -> [(tid, document-side weight)] with per-token max/min bounds
        self._weighted_index: WeightedPostingIndex | None = None

    def tokenize_phase(self) -> None:
        self._token_lists = self._relation_token_lists()
        self._index = InvertedIndex(self._token_lists)

    def _build_weighted_index(self) -> None:
        assert self._index is not None
        self._weighted_index = WeightedPostingIndex.from_doc_weights(
            self._index, self._doc_weights
        )

    def _query_weights(self, query: str) -> Dict[str, float]:
        """Query-side weights ``wq(t, Q)`` (subclass-specific)."""
        raise NotImplementedError

    def _accumulate(self, query_weights: Dict[str, float]) -> Dict[int, float]:
        """Dot product of query weights against every candidate's doc weights.

        One kernel call over the precomputed weighted postings; tokens are
        visited in sorted order so per-tuple summation order is canonical
        (the kernels reproduce that order bit for bit on both backends).
        """
        assert self._weighted_index is not None
        return kernels.accumulate(
            self._weighted_index,
            self._sorted_items(query_weights),
            len(self._token_lists),
        )

    def _scores(self, query: str) -> Dict[int, float]:
        return self._accumulate(self._query_weights(query))

    @staticmethod
    def _sorted_items(query_weights: Dict[str, float]) -> List[Tuple[str, float]]:
        return [
            (token, query_weights[token])
            for token in sorted(query_weights)
            if query_weights[token] != 0.0
        ]

    def _rescore_items(
        self, items: List[Tuple[str, float]], tids: Iterable[int]
    ) -> Dict[int, float]:
        """Exact per-tuple rescoring in the same order :meth:`_accumulate` uses."""
        scores: Dict[int, float] = {}
        for tid in tids:
            doc_weights = self._doc_weights[tid]
            total = 0.0
            for token, query_weight in items:
                contribution = doc_weights.get(token, 0.0)
                if contribution:
                    total += query_weight * contribution
            scores[tid] = total
        return scores

    def _rescore(
        self, query_weights: Dict[str, float], tids: Iterable[int]
    ) -> Dict[int, float]:
        return self._rescore_items(self._sorted_items(query_weights), tids)

    def _maxscore_plan(
        self, query: str
    ) -> Optional[Tuple[List[Term], Optional[set], object]]:
        if self._blocker is not None:
            # The aggregate family applies blockers *post*-scoring (the
            # blocker prunes the scored candidate set), which needs the full
            # candidate set -- incompatible with skipping posting lists.
            return None
        assert self._weighted_index is not None
        weighted = self._weighted_index
        query_weights = self._query_weights(query)
        terms = [
            Term(
                token=token,
                query_weight=query_weights[token],
                postings=weighted.postings(token),
                max_contribution=weighted.max_contribution(token),
                min_contribution=weighted.min_contribution(token),
                arrays=weighted.arrays(token),
            )
            for token in sorted(query_weights)
            if query_weights[token] != 0.0 and token in weighted
        ]
        allowed = None if self._restriction is None else set(self._restriction)
        items = self._sorted_items(query_weights)
        return terms, allowed, lambda tids: self._rescore_items(items, tids)

    def _score_one(self, query: str, tid: int) -> Optional[float]:
        if not 0 <= tid < len(self._doc_weights):
            return 0.0
        return self._rescore(self._query_weights(query), [tid])[tid]


class CosineTfIdf(_AggregateBase):
    """tf-idf cosine similarity (Cohen's WHIRL / Gravano et al. text joins)."""

    name = "Cosine"

    def weight_phase(self) -> None:
        self._stats = self._collection_statistics(self._token_lists)
        idf = self._stats.idf_table()
        self._idf = idf
        self._doc_weights = [
            tfidf_weights(self._stats.term_frequencies(tid), idf)
            for tid in range(len(self._token_lists))
        ]
        self._build_weighted_index()

    def _query_weights(self, query: str) -> Dict[str, float]:
        # Query tokens absent from the base relation are dropped (idf 0),
        # matching the inner join with BASE_IDF in the declarative realization;
        # they cannot contribute to any candidate's score anyway.
        query_tf = Counter(self.tokenizer.tokenize(query))
        return tfidf_weights(query_tf, self._idf, default_idf=0.0)


class BM25(_AggregateBase):
    """Okapi BM25 adapted to approximate selection."""

    name = "BM25"

    def __init__(
        self,
        tokenizer: Tokenizer | None = None,
        params: BM25Parameters | None = None,
    ):
        super().__init__(tokenizer)
        self.params = params or BM25Parameters()

    def weight_phase(self) -> None:
        self._stats = self._collection_statistics(self._token_lists)
        self._doc_weights = [
            bm25_document_weights(self._stats, tid, self.params)
            for tid in range(len(self._token_lists))
        ]
        self._build_weighted_index()

    def _query_weights(self, query: str) -> Dict[str, float]:
        query_tf = Counter(self.tokenizer.tokenize(query))
        return bm25_query_weights(query_tf, self.params)
