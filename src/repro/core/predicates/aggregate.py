"""Aggregate weighted predicates (paper section 3.2).

Both predicates score ``sim(Q, D) = Σ_{t ∈ Q∩D} wq(t, Q) * wd(t, D)``:

* :class:`CosineTfIdf` -- normalized tf-idf weights on both sides, so the sum
  is the cosine of the two tf-idf vectors.
* :class:`BM25` -- Okapi BM25 weights with the Robertson-Sparck Jones idf on
  the document side and the ``(k3+1)tf/(k3+tf)`` saturation on the query
  side.  Parameter defaults follow section 5.3.2 (k1=1.5, k3=8, b=0.675).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

from repro.core.index import InvertedIndex
from repro.core.predicates.base import Predicate
from repro.text.tokenize import QgramTokenizer, Tokenizer
from repro.text.weights import (
    BM25Parameters,
    CollectionStatistics,
    bm25_document_weights,
    bm25_query_weights,
    tfidf_weights,
)

__all__ = ["CosineTfIdf", "BM25"]


class _AggregateBase(Predicate):
    family = "aggregate-weighted"

    def __init__(self, tokenizer: Tokenizer | None = None):
        super().__init__()
        self.tokenizer = tokenizer or QgramTokenizer(q=2)
        self._token_lists: List[List[str]] = []
        self._index: InvertedIndex | None = None
        self._stats: CollectionStatistics | None = None
        #: per-tuple token -> document-side weight
        self._doc_weights: List[Dict[str, float]] = []

    def tokenize_phase(self) -> None:
        self._token_lists = [self.tokenizer.tokenize(text) for text in self._strings]
        self._index = InvertedIndex(self._token_lists)

    def _accumulate(self, query_weights: Dict[str, float]) -> Dict[int, float]:
        """Dot product of query weights against every candidate's doc weights."""
        assert self._index is not None
        scores: Dict[int, float] = {}
        for token, query_weight in query_weights.items():
            if query_weight == 0.0:
                continue
            for tid, _ in self._index.postings(token):
                doc_weight = self._doc_weights[tid].get(token, 0.0)
                if doc_weight:
                    scores[tid] = scores.get(tid, 0.0) + query_weight * doc_weight
        return scores


class CosineTfIdf(_AggregateBase):
    """tf-idf cosine similarity (Cohen's WHIRL / Gravano et al. text joins)."""

    name = "Cosine"

    def weight_phase(self) -> None:
        self._stats = CollectionStatistics(self._token_lists)
        idf = self._stats.idf_table()
        self._idf = idf
        self._doc_weights = [
            tfidf_weights(self._stats.term_frequencies(tid), idf)
            for tid in range(len(self._token_lists))
        ]

    def _scores(self, query: str) -> Dict[int, float]:
        # Query tokens absent from the base relation are dropped (idf 0),
        # matching the inner join with BASE_IDF in the declarative realization;
        # they cannot contribute to any candidate's score anyway.
        query_tf = Counter(self.tokenizer.tokenize(query))
        query_weights = tfidf_weights(query_tf, self._idf, default_idf=0.0)
        return self._accumulate(query_weights)


class BM25(_AggregateBase):
    """Okapi BM25 adapted to approximate selection."""

    name = "BM25"

    def __init__(
        self,
        tokenizer: Tokenizer | None = None,
        params: BM25Parameters | None = None,
    ):
        super().__init__(tokenizer)
        self.params = params or BM25Parameters()

    def weight_phase(self) -> None:
        self._stats = CollectionStatistics(self._token_lists)
        self._doc_weights = [
            bm25_document_weights(self._stats, tid, self.params)
            for tid in range(len(self._token_lists))
        ]

    def _scores(self, query: str) -> Dict[int, float]:
        query_tf = Counter(self.tokenizer.tokenize(query))
        query_weights = bm25_query_weights(query_tf, self.params)
        return self._accumulate(query_weights)
