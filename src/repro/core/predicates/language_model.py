"""Language modeling predicate (paper sections 3.3.1 and 4.3.1).

The predicate follows Ponte & Croft's language model: each tuple induces a
model ``M_D``; the similarity of a query to a tuple is the (rank-equivalent
transformation of the) probability of generating the query from ``M_D``.

We implement the rank-preserving rewrite the paper uses for its declarative
realization (equation 4.4): terms that are constant for a given query are
dropped and only tokens in ``Q ∩ D`` plus a per-tuple precomputed term
``Σ_{t ∈ D} log(1 - p̂(t|M_D))`` are needed at query time.  Scores are
computed in log space and exponentiated at the end, exactly like the SQL in
Figure 4.4.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core import kernels
from repro.core.index import InvertedIndex, WeightedPostingIndex
from repro.core.predicates.base import Predicate
from repro.text.tokenize import QgramTokenizer, Tokenizer
from repro.text.weights import CollectionStatistics

__all__ = ["LanguageModeling"]

# Probabilities are clamped away from 1.0 so log(1 - p) stays finite; this
# mirrors the behaviour of the SQL realization where such degenerate tuples
# (a single repeated token) simply saturate the score.
_MAX_PROBABILITY = 1.0 - 1e-12


class LanguageModeling(Predicate):
    """Ponte-Croft language modeling similarity."""

    name = "LM"
    family = "language-modeling"
    #: Monotone-sum log-space accumulation routes through repro.core.kernels
    #: (the final exponentiation stays math.exp -- np.exp is not guaranteed
    #: ULP-identical to libm).
    uses_kernels = True

    def __init__(self, tokenizer: Tokenizer | None = None):
        super().__init__()
        self.tokenizer = tokenizer or QgramTokenizer(q=2)
        self._token_lists: List[List[str]] = []
        self._index: InvertedIndex | None = None
        self._stats: CollectionStatistics | None = None
        #: per-tuple token -> p̂(t | M_D) (only for tokens present in the tuple)
        self._pm: List[Dict[str, float]] = []
        #: per-tuple Σ_{t ∈ D} log(1 - p̂(t|M_D))
        self._sum_complement: List[float] = []
        #: the same values as a float64 array (None without numpy)
        self._sum_complement_array = None
        #: token -> cf_t / cs
        self._cfcs: Dict[str, float] = {}
        #: token -> [(tid, log(pm) - log(1-pm) - log(cf/cs))]: the whole
        #: per-posting contribution of equation 4.4 precomputed at fit time,
        #: so query-time accumulation does no log() calls at all.
        self._weighted_index: WeightedPostingIndex | None = None

    # -- preprocessing --------------------------------------------------------

    def tokenize_phase(self) -> None:
        self._token_lists = self._relation_token_lists()
        self._index = InvertedIndex(self._token_lists)

    def weight_phase(self) -> None:
        stats = self._collection_statistics(self._token_lists)
        self._stats = stats
        collection_size = stats.collection_size or 1

        # p̂_avg(t): mean maximum-likelihood probability over tuples containing
        # t -- a collection-level statistic, so it comes from the statistics
        # object (globally computed under sharded execution).
        pavg = stats.pavg_table()
        self._cfcs = {
            token: stats.collection_frequency(token) / collection_size
            for token in stats.vocabulary
        }

        self._pm = []
        self._sum_complement = []
        for tid in range(len(self._token_lists)):
            length = stats.length(tid) or 1
            tuple_pm: Dict[str, float] = {}
            log_complement_sum = 0.0
            # Sorted token order keeps log_complement_sum bit-identical no
            # matter how the term-frequency dict was built (RPL001).
            for token, tf in sorted(stats.term_frequencies(tid).items()):
                pml = tf / length
                expected = pavg[token] * length  # f̄_{t,D}
                risk = (1.0 / (1.0 + expected)) * (expected / (1.0 + expected)) ** tf
                pm = (pml ** (1.0 - risk)) * (pavg[token] ** risk)
                pm = min(pm, _MAX_PROBABILITY)
                tuple_pm[token] = pm
                log_complement_sum += math.log(1.0 - pm)
            self._pm.append(tuple_pm)
            self._sum_complement.append(log_complement_sum)

        # Fold the full per-posting contribution into weighted postings.
        # Zero contributions are kept: a tuple sharing only such tokens is
        # still a candidate (it scores exp(sum_complement)).
        assert self._index is not None
        contributions: Dict[str, List[tuple]] = {}
        for token in self._index.tokens():
            cfcs = self._cfcs.get(token, 0.0)
            log_cfcs = math.log(cfcs) if cfcs > 0 else 0.0
            plist = []
            for tid, _ in self._index.postings(token):
                pm = self._pm[tid][token]
                plist.append((tid, math.log(pm) - math.log(1.0 - pm) - log_cfcs))
            contributions[token] = plist
        self._weighted_index = WeightedPostingIndex(contributions)
        # Array mirror for the vectorized finalize gather (built regardless
        # of backend forcing, like the posting arrays).
        if kernels.np is not None:
            self._sum_complement_array = kernels.np.array(
                self._sum_complement, dtype=kernels.np.float64
            )

    # -- query time -----------------------------------------------------------

    def _contribution(self, token: str, tid: int) -> float:
        """One posting's contribution, recomputed bit-identically to fit time."""
        cfcs = self._cfcs.get(token, 0.0)
        log_cfcs = math.log(cfcs) if cfcs > 0 else 0.0
        pm = self._pm[tid][token]
        return math.log(pm) - math.log(1.0 - pm) - log_cfcs

    @staticmethod
    def _finalize(log_score: float) -> float:
        # Exponentiation can underflow for long tuples; underflow to 0.0 is
        # harmless for ranking because exp is monotone.
        try:
            return math.exp(log_score)
        except OverflowError:  # pragma: no cover - defensive
            return float("inf")

    def _scores(self, query: str) -> Dict[int, float]:
        assert self._weighted_index is not None
        query_tokens = set(self.tokenizer.tokenize(query))
        accumulators = kernels.accumulate(
            self._weighted_index,
            [(token, 1.0) for token in sorted(query_tokens)],
            len(self._token_lists),
        )
        pair = kernels.dense_pair(accumulators)
        if pair is not None and self._sum_complement_array is not None:
            tids, accumulated = pair
            # One float64 add per candidate -- the identical IEEE operation
            # the scalar comprehension performs -- then scalar math.exp
            # (np.exp is not guaranteed ULP-identical to libm).
            log_scores = (accumulated + self._sum_complement_array[tids]).tolist()
            exp = math.exp
            try:
                finalized = [exp(log_score) for log_score in log_scores]
            except OverflowError:  # pragma: no cover - defensive
                finalized = [self._finalize(log_score) for log_score in log_scores]
            return kernels.dense_from_lists(tids, finalized)
        return {
            tid: self._finalize(accumulated + self._sum_complement[tid])
            for tid, accumulated in accumulators.items()
        }

    def _score_one(self, query: str, tid: int) -> Optional[float]:
        if not 0 <= tid < len(self._pm):
            return 0.0
        tuple_pm = self._pm[tid]
        accumulated = 0.0
        matched = False
        for token in sorted(set(self.tokenizer.tokenize(query))):
            if token in tuple_pm:
                accumulated += self._contribution(token, tid)
                matched = True
        if not matched:
            return 0.0
        return self._finalize(accumulated + self._sum_complement[tid])
