"""Combination predicates (paper sections 3.5 and 4.5).

These predicates combine word-level weighting with a character-level
similarity between individual words:

* :class:`GES` -- generalized edit similarity: a weighted edit distance over
  the *sequence* of word tokens where replacing word ``t1`` by ``t2`` costs
  ``(1 - sim_edit(t1, t2)) * w(t1)``, inserting word ``t`` costs
  ``c_ins * w(t)`` and deleting word ``t`` costs ``w(t)`` (equation 3.14).
* :class:`GESJaccard` -- GES with a filtering step that over-estimates the
  score using the q-gram Jaccard similarity between words (equation 4.7);
  only candidates whose filter score reaches the threshold are verified with
  exact GES.
* :class:`GESApx` -- like GESJaccard but the word-level Jaccard is replaced
  by a min-hash estimate (equation 4.8), trading accuracy for speed.
* :class:`SoftTFIDF` -- Cohen et al.'s soft tf-idf where word tokens match
  softly through a secondary similarity (Jaro-Winkler here, the paper's best
  choice) above a threshold θ (equation 3.15).

All four predicates perform two-level tokenization (words, then q-grams of
each word) during preprocessing and keep an inverted index over word q-grams
for candidate generation.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Sequence, Set

from repro.core.predicates.base import Predicate
from repro.text.minhash import MinHasher, MinHashSignature, minhash_similarity
from repro.text.strings import edit_similarity, jaro_winkler
from repro.text.tokenize import TwoLevelTokenizer
from repro.text.weights import CollectionStatistics, tfidf_weights

__all__ = ["GES", "GESJaccard", "GESApx", "SoftTFIDF"]


class _CombinationBase(Predicate):
    """Shared two-level tokenization and word-qgram candidate index."""

    family = "combination"

    def __init__(self, q: int = 2):
        super().__init__()
        self.tokenizer = TwoLevelTokenizer(q=q)
        self.q = q
        #: word tokens per tuple (order preserved)
        self._word_lists: List[List[str]] = []
        #: q-gram set per distinct word (computed lazily, shared across tuples)
        self._word_qgrams: Dict[str, Set[str]] = {}
        #: inverted index word-qgram -> set of tids
        self._qgram_to_tids: Dict[str, Set[int]] = {}
        self._stats: CollectionStatistics | None = None
        self._idf: Dict[str, float] = {}
        self._average_idf: float = 0.0

    def tokenize_phase(self) -> None:
        self._word_lists = self._relation_token_lists()
        self._word_qgrams = {}
        qgram_to_tids: Dict[str, Set[int]] = defaultdict(set)
        for tid, words in enumerate(self._word_lists):
            for word in words:
                grams = self._grams(word)
                for gram in grams:
                    qgram_to_tids[gram].add(tid)
        self._qgram_to_tids = dict(qgram_to_tids)

    def weight_phase(self) -> None:
        self._stats = self._collection_statistics(self._word_lists)
        self._idf = self._stats.idf_table()
        self._average_idf = self._stats.average_idf()

    # -- helpers ----------------------------------------------------------------

    def _grams(self, word: str) -> Set[str]:
        grams = self._word_qgrams.get(word)
        if grams is None:
            grams = set(self.tokenizer.word_qgrams(word))
            self._word_qgrams[word] = grams
        return grams

    def _weight(self, word: str) -> float:
        return self._idf.get(word, self._average_idf)

    def _candidates(self, query_words: Sequence[str]) -> Set[int]:
        """Tuples sharing at least one word q-gram with the query."""
        tids: Set[int] = set()
        for word in set(query_words):
            for gram in self._grams(word):
                tids.update(self._qgram_to_tids.get(gram, ()))
        return tids

    def _is_candidate(self, query_words: Sequence[str], tid: int) -> bool:
        """Whether one tuple shares a word q-gram with the query (O(1) per gram)."""
        return any(
            tid in self._qgram_to_tids.get(gram, ())
            for word in set(query_words)
            for gram in self._grams(word)
        )

    def _query_words(self, query: str) -> List[str]:
        return self.tokenizer.tokenize(query)


class GES(_CombinationBase):
    """Generalized edit similarity with exact transformation cost."""

    name = "GES"

    def __init__(self, q: int = 2, cins: float = 0.5):
        super().__init__(q=q)
        if not 0.0 <= cins <= 1.0:
            raise ValueError("cins must be within [0, 1]")
        self.cins = cins

    def ges_score(self, query_words: Sequence[str], tuple_words: Sequence[str]) -> float:
        """Exact GES between two word sequences (equation 3.14)."""
        total_weight = sum(self._weight(word) for word in query_words)
        if total_weight == 0.0:
            return 1.0 if not tuple_words else 0.0
        cost = self._transformation_cost(query_words, tuple_words)
        return 1.0 - min(cost / total_weight, 1.0)

    def _transformation_cost(
        self, query_words: Sequence[str], tuple_words: Sequence[str]
    ) -> float:
        """Minimum-cost transformation of the query word sequence into the tuple's."""
        n, m = len(query_words), len(tuple_words)
        query_weights = [self._weight(word) for word in query_words]
        tuple_weights = [self._weight(word) for word in tuple_words]
        previous = [0.0] * (m + 1)
        for j in range(1, m + 1):
            previous[j] = previous[j - 1] + self.cins * tuple_weights[j - 1]
        for i in range(1, n + 1):
            current = [previous[0] + query_weights[i - 1]] + [0.0] * m
            for j in range(1, m + 1):
                replace = (
                    previous[j - 1]
                    + (1.0 - edit_similarity(query_words[i - 1], tuple_words[j - 1]))
                    * query_weights[i - 1]
                )
                delete = previous[j] + query_weights[i - 1]
                insert = current[j - 1] + self.cins * tuple_weights[j - 1]
                current[j] = min(replace, delete, insert)
            previous = current
        return previous[m]

    def _scores(self, query: str) -> Dict[int, float]:
        query_words = self._query_words(query)
        scores: Dict[int, float] = {}
        for tid in self._candidates(query_words):
            scores[tid] = self.ges_score(query_words, self._word_lists[tid])
        return scores

    def _score_one(self, query: str, tid: int) -> Optional[float]:
        if not 0 <= tid < len(self._word_lists):
            return 0.0
        query_words = self._query_words(query)
        if not self._is_candidate(query_words, tid):
            return 0.0
        return self.ges_score(query_words, self._word_lists[tid])


class GESJaccard(GES):
    """GES with the q-gram Jaccard filter of equation 4.7."""

    name = "GESJaccard"

    def __init__(self, q: int = 2, cins: float = 0.5, threshold: float = 0.8):
        super().__init__(q=q, cins=cins)
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be within [0, 1]")
        self.threshold = threshold

    def _word_similarity(self, query_word: str, tuple_word: str) -> float:
        left, right = self._grams(query_word), self._grams(tuple_word)
        if not left or not right:
            return 0.0
        common = len(left & right)
        union = len(left | right)
        return common / union if union else 0.0

    def filter_score(self, query_words: Sequence[str], tuple_words: Sequence[str]) -> float:
        """Over-estimating filter score (equation 4.7).

        Both sums run over the query words in *sorted* order so the float
        value only depends on the word multiset, never on word order.  The
        min-hash variant (:class:`GESApx`) quantizes per-word similarities to
        a ``1/num_hashes`` lattice, so with near-equal weights the exact
        score lands on lattice points like 0.525; summation-order jitter of
        one ulp around such a point would otherwise flip candidates at
        thresholds placed exactly on the lattice.
        """
        ordered = sorted(query_words)
        total_weight = sum(self._weight(word) for word in ordered)
        if total_weight == 0.0:
            return 0.0
        adjustment = 1.0 - 1.0 / self.q
        score = 0.0
        for word in ordered:
            best = max(
                (self._word_similarity(word, other) for other in tuple_words),
                default=0.0,
            )
            score += self._weight(word) * ((2.0 / self.q) * best + adjustment)
        return score / total_weight

    def _scores(self, query: str) -> Dict[int, float]:
        query_words = self._query_words(query)
        scores: Dict[int, float] = {}
        for tid in self._candidates(query_words):
            tuple_words = self._word_lists[tid]
            if self.filter_score(query_words, tuple_words) < self.threshold:
                continue
            scores[tid] = self.ges_score(query_words, tuple_words)
        return scores

    def _score_one(self, query: str, tid: int) -> Optional[float]:
        if not 0 <= tid < len(self._word_lists):
            return 0.0
        query_words = self._query_words(query)
        if not self._is_candidate(query_words, tid):
            return 0.0
        tuple_words = self._word_lists[tid]
        if self.filter_score(query_words, tuple_words) < self.threshold:
            return 0.0
        return self.ges_score(query_words, tuple_words)


class GESApx(GESJaccard):
    """GES with a min-hash approximation of the Jaccard filter (equation 4.8)."""

    name = "GESapx"

    def __init__(
        self,
        q: int = 2,
        cins: float = 0.5,
        threshold: float = 0.8,
        num_hashes: int = 5,
        seed: int = 20070411,
    ):
        super().__init__(q=q, cins=cins, threshold=threshold)
        self.hasher = MinHasher(num_hashes=num_hashes, seed=seed)
        self._signatures: Dict[str, MinHashSignature] = {}

    def weight_phase(self) -> None:
        super().weight_phase()
        # Precompute signatures for every distinct word in the base relation,
        # mirroring the stored BASE_MINHASHSIGNATURE table.
        self._signatures = {}
        for words in self._word_lists:
            for word in words:
                if word not in self._signatures:
                    self._signatures[word] = self.hasher.signature(self._grams(word))

    def _signature(self, word: str) -> MinHashSignature:
        signature = self._signatures.get(word)
        if signature is None:
            signature = self.hasher.signature(self._grams(word))
            self._signatures[word] = signature
        return signature

    def _word_similarity(self, query_word: str, tuple_word: str) -> float:
        return minhash_similarity(self._signature(query_word), self._signature(tuple_word))


class SoftTFIDF(_CombinationBase):
    """Soft tf-idf with Jaro-Winkler word matching (Cohen et al.)."""

    name = "SoftTFIDF"

    def __init__(self, q: int = 2, theta: float = 0.8):
        super().__init__(q=q)
        if not 0.0 <= theta <= 1.0:
            raise ValueError("theta must be within [0, 1]")
        self.theta = theta
        self._doc_weights: List[Dict[str, float]] = []

    def weight_phase(self) -> None:
        super().weight_phase()
        assert self._stats is not None
        self._doc_weights = [
            tfidf_weights(self._stats.term_frequencies(tid), self._idf)
            for tid in range(len(self._word_lists))
        ]

    def _soft_score(self, query_weights: Dict[str, float], tid: int) -> float:
        """Soft tf-idf of one tuple against precomputed query weights."""
        tuple_words = self._word_lists[tid]
        if not tuple_words:
            return 0.0
        score = 0.0
        # Sorted word order: the per-word contributions are floats, so the
        # sum must run in canonical order to stay bit-identical across dict
        # construction paths (RPL001).
        for word, query_weight in sorted(query_weights.items()):
            best_similarity = 0.0
            best_word = None
            for other in tuple_words:
                similarity = jaro_winkler(word, other)
                if similarity > best_similarity:
                    best_similarity = similarity
                    best_word = other
            if best_word is None or best_similarity <= self.theta:
                continue
            score += (
                query_weight
                * self._doc_weights[tid].get(best_word, 0.0)
                * best_similarity
            )
        return score

    def _scores(self, query: str) -> Dict[int, float]:
        query_words = self._query_words(query)
        if not query_words:
            return {}
        query_weights = tfidf_weights(
            Counter(query_words), self._idf, default_idf=self._average_idf
        )
        scores: Dict[int, float] = {}
        for tid in self._candidates(query_words):
            score = self._soft_score(query_weights, tid)
            if score > 0.0:
                scores[tid] = score
        return scores

    def _score_one(self, query: str, tid: int) -> Optional[float]:
        if not 0 <= tid < len(self._word_lists):
            return 0.0
        query_words = self._query_words(query)
        if not query_words or not self._is_candidate(query_words, tid):
            return 0.0
        query_weights = tfidf_weights(
            Counter(query_words), self._idf, default_idf=self._average_idf
        )
        score = self._soft_score(query_weights, tid)
        return score if score > 0.0 else 0.0
