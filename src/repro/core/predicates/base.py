"""Base class and shared types for similarity predicates.

Every predicate follows the same life cycle that the paper's declarative
framework imposes:

1. *Preprocessing* -- :meth:`Predicate.fit` tokenizes the base relation and
   computes whatever weights/statistics the predicate needs.  The two phases
   (:meth:`tokenize_phase` and :meth:`weight_phase`) are exposed separately so
   the timing harness can reproduce Figure 5.2, which reports them
   individually.
2. *Query time* -- :meth:`Predicate.rank` returns every candidate tuple with
   a positive similarity to the query, ordered by decreasing score (this is
   the unpruned ranking the accuracy metrics are computed over);
   :meth:`Predicate.select` applies a similarity threshold, which is the
   approximate selection operation proper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.blocking.base import Blocker

__all__ = ["Match", "ScoredTuple", "Predicate"]


@dataclass(frozen=True)
class Match:
    """One result of an approximate selection, join probe or engine query.

    The single result type shared by every realization: ``tid`` is the
    position of the matched tuple in the base relation, ``score`` its
    similarity to the query and ``string`` the matched text itself.
    Predicates score tuples without materializing their text, so results
    produced below the engine/selector layer carry ``string=None``; the
    engine fills it in before handing results to callers.

    Backward compatibility with the two result types this class replaced:

    * ``ScoredTuple(tid, score)`` -- ``ScoredTuple`` is an alias of this
      class (the field order keeps ``string`` last and optional), and
      ``tid, score = match`` unpacking still works;
    * ``SelectionResult(tid, text, score)`` -- ``SelectionResult`` (in
      :mod:`repro.core.selection`) is also an alias; the old ``.text``
      attribute is kept as a read-only property of :attr:`string`.
    """

    tid: int
    score: float
    string: Optional[str] = None

    def __post_init__(self):
        # The retired SelectionResult took (tid, text, score) positionally;
        # Match keeps ScoredTuple's (tid, score[, string]) order instead.
        # Fail loudly on the old pattern rather than silently swapping fields.
        if isinstance(self.score, str):
            raise TypeError(
                "Match fields are (tid, score, string); construct with "
                "keywords when porting SelectionResult(tid, text, score) calls"
            )

    @property
    def text(self) -> Optional[str]:
        """Alias of :attr:`string` (the old ``SelectionResult`` field name)."""
        return self.string

    def __iter__(self):
        """Allow ``tid, score = match`` unpacking (the ``ScoredTuple`` contract)."""
        yield self.tid
        yield self.score

    def with_string(self, string: str) -> "Match":
        """A copy of this match carrying the matched text."""
        return Match(self.tid, self.score, string)


#: Backward-compatible alias: the realization-internal scored pair is now the
#: same class as the public result type.
ScoredTuple = Match


class Predicate(ABC):
    """Abstract base class of all similarity predicates."""

    #: Human-readable predicate name used in reports and benchmarks.
    name: str = "predicate"
    #: The paper's class for this predicate (overlap / aggregate-weighted /
    #: language-modeling / edit-based / combination).
    family: str = "unspecified"
    #: Subclasses that apply the blocker *before* scoring (inside
    #: :meth:`_scores`) set this to ``True`` so :meth:`rank` does not filter
    #: (and count) the candidates a second time.
    _prunes_before_scoring: bool = False
    #: Score semantics relevant to exact blocking: ``"jaccard"`` for scores
    #: bounded by the Jaccard overlap fraction (length/prefix filters stay
    #: exact), ``"score"`` otherwise (those filters become heuristics).
    similarity_kind: str = "score"

    def __init__(self) -> None:
        self._strings: List[str] = []
        self._fitted = False
        self._blocker: Optional["Blocker"] = None
        self._restriction: Optional[Set[int]] = None
        #: Number of candidates scored by the most recent :meth:`rank` /
        #: :meth:`select` call (after blocking); joins aggregate this into
        #: their candidate-pair statistics.
        self.last_num_candidates: Optional[int] = None

    # -- preprocessing --------------------------------------------------------

    def fit(self, strings: Sequence[str]) -> "Predicate":
        """Preprocess the base relation (tokenization + weights).

        Returns ``self`` so that ``predicate = BM25().fit(strings)`` reads
        naturally.
        """
        self._strings = list(strings)
        self.tokenize_phase()
        self.weight_phase()
        self._fitted = True
        if self._blocker is not None:
            self._fit_blocker(self._blocker)
        return self

    @abstractmethod
    def tokenize_phase(self) -> None:
        """Phase 1 of preprocessing: tokenize the base relation."""

    @abstractmethod
    def weight_phase(self) -> None:
        """Phase 2 of preprocessing: compute weights / statistics."""

    # -- blocking -------------------------------------------------------------

    @property
    def blocker(self) -> Optional["Blocker"]:
        """The candidate blocker attached to this predicate (``None`` = off)."""
        return self._blocker

    def set_blocker(self, blocker: Optional["Blocker"]) -> "Predicate":
        """Attach a :class:`repro.blocking.Blocker` for candidate pruning.

        The blocker is (re)fitted on this predicate's base relation -- with
        the predicate's own token lists where available -- so that blocker
        and predicate agree on tokenization.  Pass ``None`` to detach.

        Attaching a Jaccard-derived exact filter (length/prefix) to a
        predicate with different score semantics (e.g. BM25) demotes it to a
        heuristic: candidates whose *score* clears the threshold may still be
        pruned.  A :class:`UserWarning` is emitted in that case.

        A blocker narrows *every* subsequent query: :meth:`select` stays
        exact at (or above) the blocker's threshold and refuses lower ones,
        while :meth:`rank` / :meth:`score` only see candidates that survive
        blocking -- ranked retrieval under a threshold-derived blocker is
        deliberately restricted to threshold-reachable candidates.  Detach
        the blocker for full unpruned rankings.
        """
        if (
            blocker is not None
            and getattr(blocker, "semantics", "any") == "jaccard"
            and self.similarity_kind != "jaccard"
        ):
            import warnings

            warnings.warn(
                f"{type(blocker).__name__} derives its bounds from Jaccard "
                f"semantics; with the {self.name} predicate it is a heuristic "
                "and may drop candidates whose score reaches the threshold",
                UserWarning,
                stacklevel=2,
            )
        self._blocker = blocker
        if blocker is not None and self._fitted:
            self._fit_blocker(blocker)
        return self

    def _fit_blocker(self, blocker: "Blocker") -> None:
        blocker.fit(self._blocker_corpus(blocker))

    def _blocker_corpus(self, blocker: "Blocker") -> List[List[str]]:
        """Token lists the blocker is fitted on.

        Token-based predicates override this to share their own token lists;
        the default tokenizes the base strings with the blocker's tokenizer.
        """
        return blocker.tokenizer.tokenize_many(self._strings)

    def _blocker_query_tokens(self, query: str, blocker: "Blocker") -> Set[str]:
        """Query-side tokens handed to the blocker (same source as the corpus)."""
        return set(blocker.tokenizer.tokenize(query))

    @contextmanager
    def restrict_candidates(self, allowed: Optional[Set[int]]) -> Iterator[None]:
        """Scope queries to the given tuple ids (used by blocked self-joins)."""
        previous = self._restriction
        self._restriction = allowed
        try:
            yield
        finally:
            self._restriction = previous

    def _generic_allowed(self, query: str, scores: Dict[int, float]) -> Optional[Set[int]]:
        """Post-scoring candidate allowance for predicates without index pruning."""
        blocker, restriction = self._blocker, self._restriction
        if blocker is None and restriction is None:
            return None
        allowed = set(scores)
        if restriction is not None:
            allowed &= restriction
        if blocker is not None:
            allowed = blocker.prune(self._blocker_query_tokens(query, blocker), allowed)
        return allowed

    # -- query time -----------------------------------------------------------

    @abstractmethod
    def _scores(self, query: str) -> Dict[int, float]:
        """Similarity score for every candidate tuple (tuples sharing tokens)."""

    def rank(self, query: str, limit: Optional[int] = None) -> List[ScoredTuple]:
        """Tuples ranked by decreasing similarity to ``query``.

        Only candidate tuples (those with a non-trivial score) are returned;
        ties are broken by tuple id so rankings are deterministic.  With a
        blocker attached (see :meth:`set_blocker`), only candidates that
        survive blocking are ranked.
        """
        self._require_fitted()
        scores = self._scores(query)
        if not self._prunes_before_scoring:
            allowed = self._generic_allowed(query, scores)
            if allowed is not None:
                scores = {tid: score for tid, score in scores.items() if tid in allowed}
        self.last_num_candidates = len(scores)
        ranked = sorted(
            (ScoredTuple(tid, score) for tid, score in scores.items()),
            key=lambda st: (-st.score, st.tid),
        )
        if limit is not None:
            ranked = ranked[:limit]
        return ranked

    def select(self, query: str, threshold: float) -> List[ScoredTuple]:
        """The approximate selection: tuples with ``sim(query, t) >= threshold``."""
        self._require_fitted()
        self._check_blocker_threshold(threshold)
        return [scored for scored in self.rank(query) if scored.score >= threshold]

    def _check_blocker_threshold(self, threshold: float) -> None:
        """Refuse selections below the threshold an exact blocker was built for.

        An exact blocker prunes everything that cannot reach *its* configured
        threshold; selecting at a lower one would silently lose true matches.
        """
        if self._blocker is not None and not self._blocker.supports_threshold(threshold):
            raise ValueError(
                f"selection threshold {threshold} is below the threshold the "
                f"attached {self._blocker.name!r} blocker was built for; "
                "rebuild the blocker with the lower threshold"
            )

    def score(self, query: str, tid: int) -> float:
        """Similarity between ``query`` and tuple ``tid`` (0.0 if not a candidate)."""
        self._require_fitted()
        return self._scores(query).get(tid, 0.0)

    # -- introspection --------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    @property
    def base_strings(self) -> List[str]:
        return list(self._strings)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(
                f"{type(self).__name__} must be fit() on a base relation before querying"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "fitted" if self._fitted else "unfitted"
        return f"{type(self).__name__}({status}, n={len(self._strings)})"
