"""Base class and shared types for similarity predicates.

Every predicate follows the same life cycle that the paper's declarative
framework imposes:

1. *Preprocessing* -- :meth:`Predicate.fit` tokenizes the base relation and
   computes whatever weights/statistics the predicate needs.  The two phases
   (:meth:`tokenize_phase` and :meth:`weight_phase`) are exposed separately so
   the timing harness can reproduce Figure 5.2, which reports them
   individually.
2. *Query time* -- :meth:`Predicate.rank` returns every candidate tuple with
   a positive similarity to the query, ordered by decreasing score (this is
   the unpruned ranking the accuracy metrics are computed over);
   :meth:`Predicate.select` applies a similarity threshold, which is the
   approximate selection operation proper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Set

from repro.core import kernels
from repro.core.topk import PruningStats, maxscore_top_k
from repro.text.weights import CollectionStatistics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.blocking.base import Blocker

__all__ = ["Match", "ScoredTuple", "Predicate"]


@dataclass(frozen=True)
class Match:
    """One result of an approximate selection, join probe or engine query.

    The single result type shared by every realization: ``tid`` is the
    position of the matched tuple in the base relation, ``score`` its
    similarity to the query and ``string`` the matched text itself.
    Predicates score tuples without materializing their text, so results
    produced below the engine/selector layer carry ``string=None``; the
    engine fills it in before handing results to callers.

    Backward compatibility with the two result types this class replaced:

    * ``ScoredTuple(tid, score)`` -- ``ScoredTuple`` is an alias of this
      class (the field order keeps ``string`` last and optional), and
      ``tid, score = match`` unpacking still works;
    * ``SelectionResult(tid, text, score)`` -- ``SelectionResult`` (in
      :mod:`repro.core.selection`) is also an alias; the old ``.text``
      attribute is kept as a read-only property of :attr:`string`.
    """

    tid: int
    score: float
    string: Optional[str] = None

    def __post_init__(self):
        # The retired SelectionResult took (tid, text, score) positionally;
        # Match keeps ScoredTuple's (tid, score[, string]) order instead.
        # Fail loudly on the old pattern rather than silently swapping fields.
        if isinstance(self.score, str):
            raise TypeError(
                "Match fields are (tid, score, string); construct with "
                "keywords when porting SelectionResult(tid, text, score) calls"
            )

    @property
    def text(self) -> Optional[str]:
        """Alias of :attr:`string` (the old ``SelectionResult`` field name)."""
        return self.string

    def __iter__(self):
        """Allow ``tid, score = match`` unpacking (the ``ScoredTuple`` contract)."""
        yield self.tid
        yield self.score

    def with_string(self, string: str) -> "Match":
        """A copy of this match carrying the matched text."""
        return Match(self.tid, self.score, string)


#: Backward-compatible alias: the realization-internal scored pair is now the
#: same class as the public result type.
ScoredTuple = Match


class Predicate(ABC):
    """Abstract base class of all similarity predicates."""

    #: Human-readable predicate name used in reports and benchmarks.
    name: str = "predicate"
    #: The paper's class for this predicate (overlap / aggregate-weighted /
    #: language-modeling / edit-based / combination).
    family: str = "unspecified"
    #: Subclasses that apply the blocker *before* scoring (inside
    #: :meth:`_scores`) set this to ``True`` so :meth:`rank` does not filter
    #: (and count) the candidates a second time.
    _prunes_before_scoring: bool = False
    #: Score semantics relevant to exact blocking: ``"jaccard"`` for scores
    #: bounded by the Jaccard overlap fraction (length/prefix filters stay
    #: exact), ``"score"`` otherwise (those filters become heuristics).
    similarity_kind: str = "score"
    #: Predicates whose score is a monotone sum of per-token contributions
    #: (WeightedMatch, Cosine, BM25) set this to ``True`` and implement
    #: :meth:`_maxscore_plan`, enabling max-score pruned :meth:`top_k`.
    supports_maxscore: bool = False

    def __init__(self) -> None:
        self._strings: List[str] = []
        self._fitted = False
        #: Pre-tokenized relation handed to the current :meth:`fit` call (the
        #: single-tokenization seam); ``None`` outside of such a fit.
        self._fit_token_lists: Optional[List[List[str]]] = None
        self._blocker: Optional["Blocker"] = None
        self._restriction: Optional[Set[int]] = None
        #: Optional collection-statistics factory (the sharded-execution
        #: seam): when set, :meth:`_collection_statistics` builds statistics
        #: through it instead of computing them from the fitted token lists.
        #: Sharded execution injects a factory returning a view that keeps
        #: per-tuple statistics shard-local but answers collection-level
        #: questions (N, df, cf, avgdl, idf/RS weights) from a global pass,
        #: so shard-local fits score tuples bit-identically to an unsharded
        #: fit.  ``None`` (the default) keeps the classic behaviour.
        self._stats_factory = None
        #: Number of candidates scored by the most recent :meth:`rank` /
        #: :meth:`select` call (after blocking); joins aggregate this into
        #: their candidate-pair statistics.
        self.last_num_candidates: Optional[int] = None
        #: Work counters of the most recent :meth:`top_k` call when the
        #: max-score fast path ran (``None`` otherwise); surfaced by
        #: ``engine.explain()``.
        self.pruning_stats: Optional[PruningStats] = None

    # -- preprocessing --------------------------------------------------------

    def fit(
        self,
        strings: Sequence[str],
        token_lists: Optional[Sequence[Sequence[str]]] = None,
    ) -> "Predicate":
        """Preprocess the base relation (tokenization + weights).

        ``token_lists`` is the preprocessing seam sharded execution uses to
        tokenize a relation exactly once: when given, it must be the result
        of tokenizing ``strings`` with this predicate's own tokenizer, and
        :meth:`_relation_token_lists` hands it to :meth:`tokenize_phase`
        instead of re-tokenizing.  Callers own that contract -- the lists are
        trusted, not verified.

        Returns ``self`` so that ``predicate = BM25().fit(strings)`` reads
        naturally.
        """
        self._strings = list(strings)
        self._fit_token_lists = (
            [list(tokens) for tokens in token_lists]
            if token_lists is not None
            else None
        )
        try:
            self.tokenize_phase()
            self.weight_phase()
        finally:
            # The seam is per-fit input, not fitted state: drop it so refits
            # without token_lists re-tokenize instead of replaying stale lists.
            self._fit_token_lists = None
        self._fitted = True
        if self._blocker is not None:
            self._fit_blocker(self._blocker)
        return self

    def _relation_token_lists(self) -> List[List[str]]:
        """Token lists of the base relation for :meth:`tokenize_phase`.

        Returns the pre-tokenized lists passed to :meth:`fit` when available
        (the sharded single-tokenization seam), otherwise tokenizes the
        fitted strings with the predicate's tokenizer.
        """
        pretokenized = getattr(self, "_fit_token_lists", None)
        if pretokenized is not None:
            return pretokenized
        return [self.tokenizer.tokenize(text) for text in self._strings]

    @abstractmethod
    def tokenize_phase(self) -> None:
        """Phase 1 of preprocessing: tokenize the base relation."""

    @abstractmethod
    def weight_phase(self) -> None:
        """Phase 2 of preprocessing: compute weights / statistics."""

    def _collection_statistics(
        self, token_lists: Sequence[Sequence[str]]
    ) -> CollectionStatistics:
        """Collection statistics over the fitted token lists.

        Every weighting scheme obtains its statistics through this hook so a
        stats provider can be injected (see :attr:`_stats_factory`); the
        default computes them from the token lists alone.
        """
        if self._stats_factory is not None:
            return self._stats_factory(token_lists)
        return CollectionStatistics(token_lists)

    # -- blocking -------------------------------------------------------------

    @property
    def blocker(self) -> Optional["Blocker"]:
        """The candidate blocker attached to this predicate (``None`` = off)."""
        return self._blocker

    def set_blocker(self, blocker: Optional["Blocker"]) -> "Predicate":
        """Attach a :class:`repro.blocking.Blocker` for candidate pruning.

        The blocker is (re)fitted on this predicate's base relation -- with
        the predicate's own token lists where available -- so that blocker
        and predicate agree on tokenization.  Pass ``None`` to detach.

        Attaching a Jaccard-derived exact filter (length/prefix) to a
        predicate with different score semantics (e.g. BM25) demotes it to a
        heuristic: candidates whose *score* clears the threshold may still be
        pruned.  A :class:`UserWarning` is emitted in that case.

        A blocker narrows *every* subsequent query: :meth:`select` stays
        exact at (or above) the blocker's threshold and refuses lower ones,
        while :meth:`rank` / :meth:`score` only see candidates that survive
        blocking -- ranked retrieval under a threshold-derived blocker is
        deliberately restricted to threshold-reachable candidates.  Detach
        the blocker for full unpruned rankings.
        """
        if (
            blocker is not None
            and getattr(blocker, "semantics", "any") == "jaccard"
            and self.similarity_kind != "jaccard"
        ):
            import warnings

            warnings.warn(
                f"{type(blocker).__name__} derives its bounds from Jaccard "
                f"semantics; with the {self.name} predicate it is a heuristic "
                "and may drop candidates whose score reaches the threshold",
                UserWarning,
                stacklevel=2,
            )
        self._blocker = blocker
        if blocker is not None and self._fitted:
            self._fit_blocker(blocker)
        return self

    def _fit_blocker(self, blocker: "Blocker") -> None:
        blocker.fit(self._blocker_corpus(blocker))

    def _blocker_corpus(self, blocker: "Blocker") -> List[List[str]]:
        """Token lists the blocker is fitted on.

        Token-based predicates override this to share their own token lists;
        the default tokenizes the base strings with the blocker's tokenizer.
        """
        return blocker.tokenizer.tokenize_many(self._strings)

    def _blocker_query_tokens(self, query: str, blocker: "Blocker") -> Set[str]:
        """Query-side tokens handed to the blocker (same source as the corpus)."""
        return set(blocker.tokenizer.tokenize(query))

    @contextmanager
    def restrict_candidates(self, allowed: Optional[Set[int]]) -> Iterator[None]:
        """Scope queries to the given tuple ids (used by blocked self-joins)."""
        previous = self._restriction
        self._restriction = allowed
        try:
            yield
        finally:
            self._restriction = previous

    def _generic_allowed(self, query: str, scores: Dict[int, float]) -> Optional[Set[int]]:
        """Post-scoring candidate allowance for predicates without index pruning."""
        blocker, restriction = self._blocker, self._restriction
        if blocker is None and restriction is None:
            return None
        allowed = set(scores)
        if restriction is not None:
            allowed &= restriction
        if blocker is not None:
            allowed = blocker.prune(self._blocker_query_tokens(query, blocker), allowed)
        return allowed

    # -- query time -----------------------------------------------------------

    @abstractmethod
    def _scores(self, query: str) -> Dict[int, float]:
        """Similarity score for every candidate tuple (tuples sharing tokens)."""

    def _candidate_scores(self, query: str) -> Dict[int, float]:
        """Post-blocking candidate scores; records ``last_num_candidates``."""
        scores = self._scores(query)
        if not self._prunes_before_scoring:
            allowed = self._generic_allowed(query, scores)
            if allowed is not None:
                scores = {tid: score for tid, score in scores.items() if tid in allowed}
        self.last_num_candidates = len(scores)
        return scores

    def rank(self, query: str, limit: Optional[int] = None) -> List[ScoredTuple]:
        """Tuples ranked by decreasing similarity to ``query``.

        Only candidate tuples (those with a non-trivial score) are returned;
        ties are broken by tuple id so rankings are deterministic.  With a
        blocker attached (see :meth:`set_blocker`), only candidates that
        survive blocking are ranked.  With ``limit``, a top-``limit``
        selection replaces the full sort (``O(n log k)`` instead of
        ``O(n log n)`` scalar; a vectorized partition under the numpy
        kernel backend) -- both orderings are exact.
        """
        self._require_fitted()
        scores = self._candidate_scores(query)
        if limit is not None:
            top = kernels.top_items(scores, limit)
        else:
            top = kernels.sorted_items(scores)
        return [ScoredTuple(tid, score) for tid, score in top]

    def top_k(self, query: str, k: int) -> List[ScoredTuple]:
        """The ``k`` most similar tuples -- exactly ``rank(query, limit=k)``.

        Monotone-sum predicates (:attr:`supports_maxscore`) answer through
        max-score early termination: posting lists are opened in decreasing
        upper-bound order and the scan stops once the unopened lists cannot
        lift a new candidate into the top-k; survivors are rescored in the
        canonical token order, so results are identical to the unpruned path
        bit for bit.  Work counters land in :attr:`pruning_stats` (``None``
        when the fast path did not run).
        """
        self._require_fitted()
        if k < 0:
            raise ValueError("k must be non-negative")
        self.pruning_stats = None
        plan = self._maxscore_plan(query)
        if plan is None:
            return self.rank(query, limit=k)
        terms, allowed, rescore = plan
        top, stats = maxscore_top_k(k, terms, rescore, allowed=allowed)
        self.pruning_stats = stats
        self.last_num_candidates = stats.candidates_scored
        return [ScoredTuple(tid, score) for tid, score in top]

    def _maxscore_plan(self, query: str):
        """``(terms, allowed, rescore)`` for max-score pruning, or ``None``.

        ``None`` (the default) routes :meth:`top_k` through the heap-based
        :meth:`rank` path.  Monotone-sum predicates return the query's
        :class:`repro.core.topk.Term` list, the candidate restriction to
        honor (``None`` = unrestricted) and the exact-rescore callback.
        """
        return None

    def select(self, query: str, threshold: float) -> List[ScoredTuple]:
        """The approximate selection: tuples with ``sim(query, t) >= threshold``.

        Candidates are filtered *before* sorting, so the sort pays for the
        survivors only -- on selective thresholds that is a handful of tuples
        out of thousands of candidates.
        """
        self._require_fitted()
        self._check_blocker_threshold(threshold)
        scores = self._candidate_scores(query)
        return [
            ScoredTuple(tid, score)
            for tid, score in kernels.select_items(scores, threshold)
        ]

    def _check_blocker_threshold(self, threshold: float) -> None:
        """Refuse selections below the threshold an exact blocker was built for.

        An exact blocker prunes everything that cannot reach *its* configured
        threshold; selecting at a lower one would silently lose true matches.
        """
        if self._blocker is not None and not self._blocker.supports_threshold(threshold):
            raise ValueError(
                f"selection threshold {threshold} is below the threshold the "
                f"attached {self._blocker.name!r} blocker was built for; "
                "rebuild the blocker with the lower threshold"
            )

    def score(self, query: str, tid: int) -> float:
        """Similarity between ``query`` and tuple ``tid`` (0.0 if not a candidate).

        Predicates implementing :meth:`_score_one` answer from the single
        tuple's stored state instead of scoring the whole candidate set; the
        fallback (and any blocked/restricted call, whose candidate semantics
        the full path defines) scores every candidate.
        """
        self._require_fitted()
        if self._blocker is None and self._restriction is None:
            single = self._score_one(query, tid)
            if single is not None:
                return single
        return self._scores(query).get(tid, 0.0)

    def _score_one(self, query: str, tid: int) -> Optional[float]:
        """Single-tuple score fast path; ``None`` = fall back to :meth:`_scores`.

        Implementations must reproduce ``_scores(query).get(tid, 0.0)``
        exactly, including candidate-membership semantics (a tuple sharing no
        token with the query scores 0.0 even if a direct string comparison
        would not).
        """
        return None

    # -- introspection --------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    @property
    def base_strings(self) -> List[str]:
        return list(self._strings)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(
                f"{type(self).__name__} must be fit() on a base relation before querying"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "fitted" if self._fitted else "unfitted"
        return f"{type(self).__name__}({status}, n={len(self._strings)})"
