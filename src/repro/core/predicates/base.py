"""Base class and shared types for similarity predicates.

Every predicate follows the same life cycle that the paper's declarative
framework imposes:

1. *Preprocessing* -- :meth:`Predicate.fit` tokenizes the base relation and
   computes whatever weights/statistics the predicate needs.  The two phases
   (:meth:`tokenize_phase` and :meth:`weight_phase`) are exposed separately so
   the timing harness can reproduce Figure 5.2, which reports them
   individually.
2. *Query time* -- :meth:`Predicate.rank` returns every candidate tuple with
   a positive similarity to the query, ordered by decreasing score (this is
   the unpruned ranking the accuracy metrics are computed over);
   :meth:`Predicate.select` applies a similarity threshold, which is the
   approximate selection operation proper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

__all__ = ["ScoredTuple", "Predicate"]


@dataclass(frozen=True)
class ScoredTuple:
    """One result of an approximate selection: a tuple id and its score."""

    tid: int
    score: float

    def __iter__(self):
        """Allow ``tid, score = scored`` unpacking."""
        yield self.tid
        yield self.score


class Predicate(ABC):
    """Abstract base class of all similarity predicates."""

    #: Human-readable predicate name used in reports and benchmarks.
    name: str = "predicate"
    #: The paper's class for this predicate (overlap / aggregate-weighted /
    #: language-modeling / edit-based / combination).
    family: str = "unspecified"

    def __init__(self) -> None:
        self._strings: List[str] = []
        self._fitted = False

    # -- preprocessing --------------------------------------------------------

    def fit(self, strings: Sequence[str]) -> "Predicate":
        """Preprocess the base relation (tokenization + weights).

        Returns ``self`` so that ``predicate = BM25().fit(strings)`` reads
        naturally.
        """
        self._strings = list(strings)
        self.tokenize_phase()
        self.weight_phase()
        self._fitted = True
        return self

    @abstractmethod
    def tokenize_phase(self) -> None:
        """Phase 1 of preprocessing: tokenize the base relation."""

    @abstractmethod
    def weight_phase(self) -> None:
        """Phase 2 of preprocessing: compute weights / statistics."""

    # -- query time -----------------------------------------------------------

    @abstractmethod
    def _scores(self, query: str) -> Dict[int, float]:
        """Similarity score for every candidate tuple (tuples sharing tokens)."""

    def rank(self, query: str, limit: Optional[int] = None) -> List[ScoredTuple]:
        """Tuples ranked by decreasing similarity to ``query``.

        Only candidate tuples (those with a non-trivial score) are returned;
        ties are broken by tuple id so rankings are deterministic.
        """
        self._require_fitted()
        scores = self._scores(query)
        ranked = sorted(
            (ScoredTuple(tid, score) for tid, score in scores.items()),
            key=lambda st: (-st.score, st.tid),
        )
        if limit is not None:
            ranked = ranked[:limit]
        return ranked

    def select(self, query: str, threshold: float) -> List[ScoredTuple]:
        """The approximate selection: tuples with ``sim(query, t) >= threshold``."""
        self._require_fitted()
        return [scored for scored in self.rank(query) if scored.score >= threshold]

    def score(self, query: str, tid: int) -> float:
        """Similarity between ``query`` and tuple ``tid`` (0.0 if not a candidate)."""
        self._require_fitted()
        return self._scores(query).get(tid, 0.0)

    # -- introspection --------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    @property
    def base_strings(self) -> List[str]:
        return list(self._strings)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(
                f"{type(self).__name__} must be fit() on a base relation before querying"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "fitted" if self._fitted else "unfitted"
        return f"{type(self).__name__}({status}, n={len(self._strings)})"
