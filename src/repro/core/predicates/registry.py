"""Predicate registry: construct any predicate by name with paper defaults."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.core.predicates.aggregate import BM25, CosineTfIdf
from repro.core.predicates.base import Predicate
from repro.core.predicates.combination import GES, GESApx, GESJaccard, SoftTFIDF
from repro.core.predicates.edit import EditDistance
from repro.core.predicates.hmm import HMM
from repro.core.predicates.language_model import LanguageModeling
from repro.core.predicates.overlap import (
    IntersectSize,
    Jaccard,
    WeightedJaccard,
    WeightedMatch,
)

__all__ = ["PREDICATE_CLASSES", "make_predicate", "available_predicates"]

PREDICATE_CLASSES: Dict[str, Type[Predicate]] = {
    "intersect": IntersectSize,
    "jaccard": Jaccard,
    "weighted_match": WeightedMatch,
    "weighted_jaccard": WeightedJaccard,
    "cosine": CosineTfIdf,
    "bm25": BM25,
    "lm": LanguageModeling,
    "hmm": HMM,
    "edit_distance": EditDistance,
    "ges": GES,
    "ges_jaccard": GESJaccard,
    "ges_apx": GESApx,
    "soft_tfidf": SoftTFIDF,
}

#: Aliases accepted by :func:`make_predicate` (case-insensitive).
_ALIASES: Dict[str, str] = {
    "intersectsize": "intersect",
    "xect": "intersect",
    "jac": "jaccard",
    "wm": "weighted_match",
    "weightedmatch": "weighted_match",
    "wj": "weighted_jaccard",
    "weightedjaccard": "weighted_jaccard",
    "tfidf": "cosine",
    "tf-idf": "cosine",
    "cosine_tfidf": "cosine",
    "okapi": "bm25",
    "language_modeling": "lm",
    "languagemodel": "lm",
    "ed": "edit_distance",
    "edit": "edit_distance",
    "editdistance": "edit_distance",
    "gesjaccard": "ges_jaccard",
    "gesapx": "ges_apx",
    "softtfidf": "soft_tfidf",
    "stfidf": "soft_tfidf",
}


def available_predicates() -> List[str]:
    """Canonical names of every registered predicate."""
    return sorted(PREDICATE_CLASSES)


def make_predicate(name: str, **kwargs) -> Predicate:
    """Construct a predicate by (case-insensitive) name or alias.

    Keyword arguments are forwarded to the predicate constructor, e.g.
    ``make_predicate("bm25")`` or ``make_predicate("ges_jaccard", threshold=0.7)``.
    """
    key = name.strip().lower().replace(" ", "_")
    key = _ALIASES.get(key, key)
    try:
        cls = PREDICATE_CLASSES[key]
    except KeyError as exc:
        raise ValueError(
            f"unknown predicate {name!r}; available: {available_predicates()}"
        ) from exc
    return cls(**kwargs)
