"""Direct-predicate registry (delegates name resolution to the engine).

The class table below is the data source for the *direct* (in-memory Python)
realizations; name/alias resolution lives in the merged
:mod:`repro.engine.registry`, which both this module and
:mod:`repro.declarative.registry` delegate to, so every entry point accepts
exactly the same names.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.core.predicates.aggregate import BM25, CosineTfIdf
from repro.core.predicates.base import Predicate
from repro.core.predicates.combination import GES, GESApx, GESJaccard, SoftTFIDF
from repro.core.predicates.edit import EditDistance
from repro.core.predicates.hmm import HMM
from repro.core.predicates.language_model import LanguageModeling
from repro.core.predicates.overlap import (
    IntersectSize,
    Jaccard,
    WeightedJaccard,
    WeightedMatch,
)

__all__ = ["PREDICATE_CLASSES", "make_predicate", "available_predicates"]

PREDICATE_CLASSES: Dict[str, Type[Predicate]] = {
    "intersect": IntersectSize,
    "jaccard": Jaccard,
    "weighted_match": WeightedMatch,
    "weighted_jaccard": WeightedJaccard,
    "cosine": CosineTfIdf,
    "bm25": BM25,
    "lm": LanguageModeling,
    "hmm": HMM,
    "edit_distance": EditDistance,
    "ges": GES,
    "ges_jaccard": GESJaccard,
    "ges_apx": GESApx,
    "soft_tfidf": SoftTFIDF,
}


def available_predicates() -> List[str]:
    """Canonical names of every registered predicate."""
    return sorted(PREDICATE_CLASSES)


def make_predicate(name: str, **kwargs) -> Predicate:
    """Construct a direct predicate by (case-insensitive) name or alias.

    Keyword arguments are forwarded to the predicate constructor, e.g.
    ``make_predicate("bm25")`` or ``make_predicate("ges_jaccard", threshold=0.7)``.
    Name resolution is shared with the declarative factory through
    :func:`repro.engine.registry.make`.
    """
    from repro.engine.registry import make

    return make(name, realization="direct", **kwargs)
