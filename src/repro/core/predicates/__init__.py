"""Similarity predicates for approximate selection.

The predicates are grouped into the paper's five classes:

* overlap predicates (:mod:`repro.core.predicates.overlap`):
  ``IntersectSize``, ``Jaccard``, ``WeightedMatch``, ``WeightedJaccard``;
* aggregate weighted predicates (:mod:`repro.core.predicates.aggregate`):
  ``CosineTfIdf``, ``BM25``;
* language modeling predicates (:mod:`repro.core.predicates.language_model`
  and :mod:`repro.core.predicates.hmm`): ``LanguageModeling``, ``HMM``;
* edit-based predicates (:mod:`repro.core.predicates.edit`): ``EditDistance``;
* combination predicates (:mod:`repro.core.predicates.combination`):
  ``GES``, ``GESJaccard``, ``GESApx``, ``SoftTFIDF``.

Use :func:`make_predicate` to construct a predicate by name with the paper's
default parameters, or instantiate the classes directly.
"""

from repro.core.predicates.base import Match, Predicate, ScoredTuple
from repro.core.predicates.overlap import (
    IntersectSize,
    Jaccard,
    WeightedJaccard,
    WeightedMatch,
)
from repro.core.predicates.aggregate import BM25, CosineTfIdf
from repro.core.predicates.language_model import LanguageModeling
from repro.core.predicates.hmm import HMM
from repro.core.predicates.edit import EditDistance
from repro.core.predicates.combination import GES, GESApx, GESJaccard, SoftTFIDF
from repro.core.predicates.registry import (
    PREDICATE_CLASSES,
    available_predicates,
    make_predicate,
)

__all__ = [
    "Predicate",
    "Match",
    "ScoredTuple",
    "IntersectSize",
    "Jaccard",
    "WeightedMatch",
    "WeightedJaccard",
    "CosineTfIdf",
    "BM25",
    "LanguageModeling",
    "HMM",
    "EditDistance",
    "GES",
    "GESJaccard",
    "GESApx",
    "SoftTFIDF",
    "make_predicate",
    "available_predicates",
    "PREDICATE_CLASSES",
]
