"""Duplicate detection on top of approximate selections.

The paper's benchmark measures how well each predicate *ranks* the duplicates
of a query record; a data cleaning pipeline additionally needs to turn
pairwise matches into duplicate *clusters* (the merge/purge step of the
related work).  :class:`Deduplicator` provides that step:

1. run a similarity self-join of the relation under a chosen predicate and
   threshold,
2. treat every matching pair as an edge and compute connected components with
   a union-find structure,
3. report the resulting clusters, optionally with a canonical representative
   (the longest string, a simple and common heuristic).

The quality of the clustering can be scored against a ground-truth clustering
(e.g. from :class:`repro.datagen.GeneratedDataset`) with pairwise precision /
recall / F1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.join import ApproximateJoiner
from repro.core.predicates.base import Predicate

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.blocking.base import Blocker

__all__ = ["UnionFind", "DuplicateCluster", "ClusteringQuality", "Deduplicator"]


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self, size: int):
        if size < 0:
            raise ValueError("size must be non-negative")
        self._parent = list(range(size))
        self._size = [1] * size

    def find(self, item: int) -> int:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left: int, right: int) -> bool:
        """Merge the sets of ``left`` and ``right``; returns True if merged."""
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return False
        if self._size[left_root] < self._size[right_root]:
            left_root, right_root = right_root, left_root
        self._parent[right_root] = left_root
        self._size[left_root] += self._size[right_root]
        return True

    def groups(self) -> Dict[int, List[int]]:
        """Mapping from root to sorted member list."""
        output: Dict[int, List[int]] = {}
        for item in range(len(self._parent)):
            output.setdefault(self.find(item), []).append(item)
        return output


@dataclass(frozen=True)
class DuplicateCluster:
    """One detected duplicate cluster."""

    members: Tuple[int, ...]
    representative: str

    def __len__(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class ClusteringQuality:
    """Pairwise precision / recall / F1 of a clustering vs. the ground truth."""

    precision: float
    recall: float
    f1: float
    num_predicted_pairs: int
    num_true_pairs: int


class Deduplicator:
    """Detect duplicate clusters in a relation of strings.

    ``blocker`` (a :class:`repro.blocking.Blocker`) makes the underlying
    similarity self-join probe only within candidate blocks -- essential for
    large relations.  The length/prefix filters are exact for Jaccard-style
    predicates (use ``predicate="jaccard"`` with them; on score-based
    predicates such as the default BM25 they are heuristics and warn);
    MinHash-LSH is approximate (bounded recall loss) for any predicate.
    """

    def __init__(
        self,
        strings: Sequence[str],
        predicate: Union[Predicate, str] = "bm25",
        threshold: float = 0.5,
        blocker: Optional["Blocker"] = None,
        **predicate_kwargs,
    ):
        self._strings = list(strings)
        self._joiner = ApproximateJoiner(
            self._strings,
            predicate=predicate,
            threshold=threshold,
            blocker=blocker,
            **predicate_kwargs,
        )

    @property
    def joiner(self) -> ApproximateJoiner:
        return self._joiner

    @property
    def blocker(self) -> Optional["Blocker"]:
        return self._joiner.blocker

    def clusters(self, threshold: Optional[float] = None) -> List[DuplicateCluster]:
        """Duplicate clusters (connected components of the match graph).

        Singleton clusters (records with no duplicate) are included so the
        output is a full partition of the relation.
        """
        union_find = UnionFind(len(self._strings))
        for match in self._joiner.self_join(threshold):
            union_find.union(match.left_id, match.right_id)
        clusters = []
        for members in union_find.groups().values():
            representative = max((self._strings[tid] for tid in members), key=len)
            clusters.append(
                DuplicateCluster(members=tuple(sorted(members)), representative=representative)
            )
        clusters.sort(key=lambda cluster: cluster.members[0])
        return clusters

    def assignments(self, threshold: Optional[float] = None) -> List[int]:
        """Cluster label per record (labels are arbitrary but consistent)."""
        labels = [0] * len(self._strings)
        for label, cluster in enumerate(self.clusters(threshold)):
            for tid in cluster.members:
                labels[tid] = label
        return labels

    def quality(
        self,
        true_cluster_ids: Sequence[int],
        threshold: Optional[float] = None,
    ) -> ClusteringQuality:
        """Pairwise precision/recall/F1 against a ground-truth clustering."""
        if len(true_cluster_ids) != len(self._strings):
            raise ValueError("true_cluster_ids must have one label per record")
        predicted_pairs = _pairs_from_labels(self.assignments(threshold))
        true_pairs = _pairs_from_labels(list(true_cluster_ids))
        if predicted_pairs:
            precision = len(predicted_pairs & true_pairs) / len(predicted_pairs)
        else:
            precision = 1.0 if not true_pairs else 0.0
        recall = (
            len(predicted_pairs & true_pairs) / len(true_pairs) if true_pairs else 1.0
        )
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        return ClusteringQuality(
            precision=precision,
            recall=recall,
            f1=f1,
            num_predicted_pairs=len(predicted_pairs),
            num_true_pairs=len(true_pairs),
        )


def _pairs_from_labels(labels: Sequence[int]) -> set:
    by_label: Dict[int, List[int]] = {}
    for index, label in enumerate(labels):
        by_label.setdefault(label, []).append(index)
    pairs = set()
    for members in by_label.values():
        for position, left in enumerate(members):
            for right in members[position + 1 :]:
                pairs.add((left, right))
    return pairs
