"""Vectorized scoring kernels with a pure-Python fallback.

Every monotone-sum predicate (WeightedMatch, WeightedJaccard, Cosine, BM25,
LM, HMM) spends its query time in the same inner loop: accumulate
``score[tid] += query_weight * contribution`` over precomputed weighted
posting lists.  In pure Python that loop is interpreter-bound and holds the
GIL, so ``executor="thread"`` buys nothing.  This module provides the
C-speed replacement: per-token postings are materialized once at fit time as
contiguous ``int64`` tid / ``float64`` contribution arrays
(:func:`build_arrays`, stored by
:class:`~repro.core.index.WeightedPostingIndex`), and accumulation happens
with ``np.add.at`` -- numpy's *unbuffered, in-element-order* scatter-add.

Bit-identity guarantee
----------------------

The scalar path accumulates ``scores.get(tid, 0.0) + qw * contribution``
visiting tokens in a canonical order (sorted query tokens, or query
first-occurrence order for HMM) and each posting list in increasing tid
order.  The vectorized path concatenates the per-token ``qw * contribution``
arrays in exactly that order and applies them with ``np.add.at``, which is
documented to perform the additions element by element (unbuffered).  Each
per-tid addition chain is therefore the same float64 operations in the same
order as the scalar path, so results are **bit-identical** -- the exactness
guarantee the whole test suite pins.  (``qw * c`` is skipped when
``qw == 1.0``; IEEE-754 guarantees ``1.0 * c == c`` bitwise.)

Backend dispatch
----------------

numpy is an optional dependency (the ``fast`` extra).  When it is missing --
or disabled via ``REPRO_KERNEL=python`` in the environment -- every entry
point falls back to the scalar loops, which *are* the pre-kernel code paths
verbatim.  :func:`use_backend` forces a backend for a scope (used by the
equivalence tests and benchmarks to compare both paths in one process), and
:func:`ops_snapshot` exposes per-backend invocation counters so the engine
can attribute kernel work in its metrics registry.
"""

from __future__ import annotations

import heapq
import os
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "np",
    "numpy_available",
    "active_backend",
    "use_backend",
    "ops_snapshot",
    "build_arrays",
    "accumulate",
    "make_topk_accumulator",
    "DenseScores",
    "dense_pair",
    "dense_from_lists",
    "top_items",
    "sorted_items",
    "select_items",
]

#: Environment switch: ``REPRO_KERNEL=python`` (or ``off``) disables numpy
#: entirely -- imports, fit-time array building, and dispatch -- which is how
#: CI proves the pure-Python fallback on machines that do have numpy.
_ENV_DISABLED = os.environ.get("REPRO_KERNEL", "").strip().lower() in (
    "python",
    "off",
    "scalar",
)

if _ENV_DISABLED:  # pragma: no cover - exercised via subprocess in CI
    np = None
else:
    try:
        import numpy as np  # type: ignore[no-redef]
    except ImportError:  # pragma: no cover - exercised on the no-numpy CI leg
        np = None

#: Backend forced by :func:`use_backend`; ``None`` means auto (numpy when
#: importable).  Process-global on purpose: shard worker threads must see the
#: same forcing as the thread that entered the context.
_forced: Optional[str] = None

_ops_lock = threading.Lock()
#: ``python_fallback`` counts numpy kernel *failures* healed by re-running
#: the scalar path (the engine publishes it as ``kernel_ops.python_fallback``).
_ops: Dict[str, int] = {"numpy": 0, "python": 0, "python_fallback": 0}  # guarded-by: _ops_lock


def numpy_available() -> bool:
    """Whether the numpy backend can be selected at all."""
    return np is not None


def active_backend() -> str:
    """The backend the next kernel call will use: ``"numpy"`` or ``"python"``."""
    if _forced is not None:
        return _forced
    return "numpy" if np is not None else "python"


@contextmanager
def use_backend(name: str):
    """Force kernel dispatch to ``name`` for the duration of the context.

    The forcing is process-global (nested contexts restore the previous
    value), so worker threads spawned inside the context -- the shard
    layer's thread executor -- dispatch consistently with their parent.
    """
    global _forced
    if name not in ("numpy", "python"):
        raise ValueError("backend must be 'numpy' or 'python'")
    if name == "numpy" and np is None:
        raise RuntimeError("numpy backend requested but numpy is unavailable")
    previous = _forced
    _forced = name
    try:
        yield
    finally:
        _forced = previous


def _count_op(backend: str) -> None:
    with _ops_lock:
        _ops[backend] += 1


def ops_snapshot() -> Dict[str, int]:
    """Per-backend kernel invocation counts since process start.

    The engine snapshots this around each execution and publishes the delta
    as ``kernel_ops.<backend>`` counters, so traces and metrics attribute
    which backend actually did the scoring work.
    """
    with _ops_lock:
        return dict(_ops)


# -- fit-time array building --------------------------------------------------


def build_arrays(
    postings: Dict[str, List[Tuple[int, float]]],
) -> Optional[Dict[str, Tuple["np.ndarray", "np.ndarray"]]]:
    """Materialize posting lists as ``(int64 tids, float64 contributions)``.

    Returns ``None`` when numpy is unavailable (callers store ``None`` and
    every kernel entry point falls back to the list-of-tuples postings).
    Arrays are built even while :func:`use_backend` forces the python
    backend -- forcing affects compute dispatch only, so a fit performed
    under one backend serves queries under the other.
    """
    if np is None:
        return None
    arrays: Dict[str, Tuple["np.ndarray", "np.ndarray"]] = {}
    for token, plist in postings.items():
        arrays[token] = _arrays_from_postings(plist)
    return arrays


def _arrays_from_postings(
    plist: Sequence[Tuple[int, float]],
) -> Tuple["np.ndarray", "np.ndarray"]:
    count = len(plist)
    tids = np.fromiter((tid for tid, _ in plist), dtype=np.int64, count=count)
    contributions = np.fromiter(
        (contribution for _, contribution in plist),
        dtype=np.float64,
        count=count,
    )
    return tids, contributions


# -- batch accumulation (rank / select / score paths) -------------------------


def accumulate(
    index,
    items: Sequence[Tuple[str, float]],
    size: int,
) -> Dict[int, float]:
    """``{tid: Σ qw * contribution}`` over the given ``(token, qw)`` items.

    ``items`` must already be in the predicate's canonical token order and
    free of zero query weights; ``index`` is a
    :class:`~repro.core.index.WeightedPostingIndex` (duck-typed: ``postings``
    and ``arrays`` accessors).  ``size`` is the relation size, bounding tids.

    Candidate membership matches the scalar loops exactly: every tid touched
    by an opened posting appears in the result, *including* tids whose
    contributions cancel to exactly ``0.0`` (possible under negative RS
    weights) and tids with stored zero contributions (the language model
    keeps them on purpose).
    """
    backend = active_backend()
    _count_op(backend)
    if backend == "numpy":
        try:
            return _accumulate_numpy(index, items, size)
        except Exception:
            # Fallback ladder: the scalar loops compute the same float64
            # chains, so healing a numpy failure (corrupt arrays, allocation
            # pressure) here is bit-identical and invisible to the caller.
            _count_op("python_fallback")
    return _accumulate_python(index, items)


def _accumulate_python(index, items: Sequence[Tuple[str, float]]) -> Dict[int, float]:
    scores: Dict[int, float] = {}
    for token, query_weight in items:
        if query_weight == 1.0:
            for tid, contribution in index.postings(token):
                scores[tid] = scores.get(tid, 0.0) + contribution
        else:
            for tid, contribution in index.postings(token):
                scores[tid] = scores.get(tid, 0.0) + query_weight * contribution
    return scores


class DenseScores(dict):
    """Score dict backed by ``(tids, values)`` arrays, materialized lazily.

    The numpy accumulate produces its candidate set as an int64 tid array
    plus the matching float64 scores; building a 10k-entry Python dict out
    of them costs more than the accumulation itself, and the hot paths
    (``rank``/``select``/``top_k`` selection) only ever need the arrays.  So
    the dict starts empty and fills itself from the arrays on the first
    dict-API access -- every Python-level read (``len``, iteration, ``get``,
    ``items``, ``==`` ...) behaves exactly like the plain dict the scalar
    path returns, with identical keys and bit-identical float values.

    ``tids`` is tid-ascending; ``values[i]`` is the score of ``tids[i]``.
    Mutation is supported (materializes first) and marks the arrays stale so
    the selection kernels fall back to the dict.  Caveat: C-level fast paths
    that read dict storage directly without calling the overridden methods
    (``dict(d)``, ``{**d}``, ``other.update(d)``) see the unmaterialized
    dict -- call ``.materialize()`` first if you need those.
    """

    __slots__ = ("tids", "vals", "_filled", "_stale")

    def __init__(self, tids, values):
        super().__init__()
        self.tids = tids
        self.vals = values
        self._filled = False
        self._stale = False

    def materialize(self) -> "DenseScores":
        """Fill the underlying dict from the arrays (idempotent)."""
        if not self._filled:
            self._filled = True
            super().update(zip(self.tids.tolist(), self.vals.tolist()))
        return self

    def _arrays(self):
        """``(tids, values)`` while they still reflect the content, else None."""
        if self._stale:
            return None
        return self.tids, self.vals

    def _touch(self) -> "DenseScores":
        self.materialize()
        self._stale = True
        return self

    # -- reads (materialize, then plain dict behavior) ------------------------

    def __len__(self):
        return super().__len__() if self._filled else int(self.tids.size)

    def __iter__(self):
        return super(DenseScores, self.materialize()).__iter__()

    def __reversed__(self):
        return super(DenseScores, self.materialize()).__reversed__()

    def __contains__(self, key):
        return super(DenseScores, self.materialize()).__contains__(key)

    def __getitem__(self, key):
        return super(DenseScores, self.materialize()).__getitem__(key)

    def get(self, key, default=None):
        return super(DenseScores, self.materialize()).get(key, default)

    def keys(self):
        return super(DenseScores, self.materialize()).keys()

    def values(self):  # noqa: A003 - dict API
        return super(DenseScores, self.materialize()).values()

    def items(self):
        return super(DenseScores, self.materialize()).items()

    def __eq__(self, other):
        return super(DenseScores, self.materialize()).__eq__(other)

    def __ne__(self, other):
        return super(DenseScores, self.materialize()).__ne__(other)

    __hash__ = None  # dicts are unhashable

    def __repr__(self):
        return super(DenseScores, self.materialize()).__repr__()

    def copy(self):
        return dict(self.materialize())

    def __or__(self, other):
        return dict(self.materialize()) | other

    def __ror__(self, other):
        return other | dict(self.materialize())

    def __reduce__(self):
        # Pickles as the plain dict it represents.
        return (dict, (dict(self.materialize()),))

    # -- mutation (materialize, mark arrays stale) ----------------------------

    def __setitem__(self, key, value):
        super(DenseScores, self._touch()).__setitem__(key, value)

    def __delitem__(self, key):
        super(DenseScores, self._touch()).__delitem__(key)

    def setdefault(self, key, default=None):
        return super(DenseScores, self._touch()).setdefault(key, default)

    def pop(self, *args):
        return super(DenseScores, self._touch()).pop(*args)

    def popitem(self):
        return super(DenseScores, self._touch()).popitem()

    def clear(self):
        super(DenseScores, self._touch()).clear()

    def update(self, *args, **kwargs):
        super(DenseScores, self._touch()).update(*args, **kwargs)

    def __ior__(self, other):
        self._touch().update(other)
        return self


def dense_pair(scores) -> Optional[Tuple["np.ndarray", "np.ndarray"]]:
    """``(tids, values)`` of an unmutated :class:`DenseScores`, else ``None``.

    The backend gate makes forced-python scopes take the scalar paths even
    when handed a numpy-produced dict.
    """
    if active_backend() != "numpy" or not isinstance(scores, DenseScores):
        return None
    return scores._arrays()


def dense_from_lists(tids, values: List[float]) -> "DenseScores":
    """Re-wrap transformed scores over the same candidate tid array.

    ``values`` is a list of Python floats aligned with ``tids``;
    ``np.array`` round-trips them exactly (float64 either way).
    """
    return DenseScores(tids, np.array(values, dtype=np.float64))


def _accumulate_numpy(
    index, items: Sequence[Tuple[str, float]], size: int
) -> Dict[int, float]:
    tid_parts: List["np.ndarray"] = []
    value_parts: List["np.ndarray"] = []
    for token, query_weight in items:
        pair = index.arrays(token)
        if pair is None:
            plist = index.postings(token)
            if not plist:
                continue
            pair = _arrays_from_postings(plist)
        tids, contributions = pair
        tid_parts.append(tids)
        value_parts.append(
            contributions if query_weight == 1.0 else query_weight * contributions
        )
    if not tid_parts:
        return {}
    all_tids = tid_parts[0] if len(tid_parts) == 1 else np.concatenate(tid_parts)
    all_values = (
        value_parts[0] if len(value_parts) == 1 else np.concatenate(value_parts)
    )
    accumulator = np.zeros(size, dtype=np.float64)
    # Unbuffered scatter-add: additions apply in element order, reproducing
    # the scalar per-tid accumulation chains bit for bit.
    np.add.at(accumulator, all_tids, all_values)
    touched = np.zeros(size, dtype=bool)
    touched[all_tids] = True
    candidates = np.flatnonzero(touched)
    # Lazily-materialized dict: .tolist() round-trips to exact Python
    # ints/floats on first dict access; dict order is tid-ascending (the
    # scalar dict is first-touch order) -- no consumer depends on dict
    # order, only on content.
    return DenseScores(candidates, accumulator[candidates])


# -- selection (ordering of scored candidates for rank / select) --------------
#
# Selection involves no float arithmetic -- only comparisons on the exact
# score values -- so the vectorized variants are bit-identical to the scalar
# ones by construction.  The ordering key is always (score desc, tid asc),
# which is unique per item, so any correct implementation yields one answer.

#: Below this many candidates the scalar paths win (array conversion and
#: numpy call overhead dominate); the cutover only affects speed, never
#: results.
_SELECTION_MIN = 64


def _selection_arrays(scores: Dict[int, float]):
    """``(tids, values)`` arrays for a score dict, or ``None`` to fall back.

    Reuses the arrays a :class:`DenseScores` carries when they still match
    the dict (defensive length check); other dicts -- post-processed scores
    from WeightedJaccard/LM/HMM, blocker-filtered dicts -- are converted via
    ``np.fromiter``.
    """
    if active_backend() != "numpy" or len(scores) < _SELECTION_MIN:
        return None
    pair = dense_pair(scores)
    if pair is not None:
        return pair
    count = len(scores)
    tids = np.fromiter(scores.keys(), dtype=np.int64, count=count)
    values = np.fromiter(scores.values(), dtype=np.float64, count=count)
    return tids, values


def _ordered_pairs(tids, values) -> List[Tuple[int, float]]:
    """``(tid, score)`` pairs sorted by (score desc, tid asc), exactly."""
    order = np.lexsort((tids, -values))
    return list(zip(tids[order].tolist(), values[order].tolist()))


def top_items(scores: Dict[int, float], limit: int) -> List[Tuple[int, float]]:
    """The ``limit`` largest ``(tid, score)`` items, score desc / tid asc.

    Equals ``heapq.nlargest(limit, scores.items(), key=(score, -tid))``
    bit for bit: the vectorized path partitions on the exact values, keeps
    everything strictly above the kth value, fills the remaining slots with
    the smallest tids among the boundary ties, and orders the winners with
    one lexsort.
    """
    if limit <= 0 or not scores:
        return []
    pair = _selection_arrays(scores)
    if pair is None:
        return heapq.nlargest(limit, scores.items(), key=lambda item: (item[1], -item[0]))
    tids, values = pair
    if limit >= values.size:
        return _ordered_pairs(tids, values)
    keep = np.argpartition(-values, limit - 1)[:limit]
    kth = values[keep].min()
    above = np.flatnonzero(values > kth)
    ties = np.flatnonzero(values == kth)
    fill = np.argsort(tids[ties], kind="stable")[: limit - above.size]
    chosen = np.concatenate([above, ties[fill]])
    return _ordered_pairs(tids[chosen], values[chosen])


def sorted_items(scores: Dict[int, float]) -> List[Tuple[int, float]]:
    """All ``(tid, score)`` items sorted by score desc, tid asc."""
    pair = _selection_arrays(scores)
    if pair is None:
        return sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return _ordered_pairs(*pair)


def select_items(
    scores: Dict[int, float], threshold: float
) -> List[Tuple[int, float]]:
    """``(tid, score)`` items with ``score >= threshold``, score desc / tid asc."""
    pair = _selection_arrays(scores)
    if pair is None:
        survivors = [item for item in scores.items() if item[1] >= threshold]
        survivors.sort(key=lambda item: (-item[1], item[0]))
        return survivors
    tids, values = pair
    keep = values >= threshold
    return _ordered_pairs(tids[keep], values[keep])


# -- top-k accumulators (max-score path in core/topk.py) ----------------------


class _PythonTopKAccumulator:
    """The pre-kernel max-score accumulation state, verbatim.

    A dict of partial sums plus the running best; `iter_by_partial` is the
    lazily-popped max-heap of the original implementation, so only the
    candidates actually rescored pay for ordering.
    """

    def __init__(self, allowed: Optional[Set[int]]):
        self._allowed = allowed
        self._partials: Dict[int, float] = {}
        self.best_partial = float("-inf")

    @property
    def count(self) -> int:
        return len(self._partials)

    def add_term(self, term) -> None:
        partials = self._partials
        best = self.best_partial
        query_weight = term.query_weight
        allowed = self._allowed
        if allowed is None:
            for tid, contribution in term.postings:
                value = partials.get(tid, 0.0) + query_weight * contribution
                partials[tid] = value
                if value > best:
                    best = value
        else:
            for tid, contribution in term.postings:
                if tid in allowed:
                    value = partials.get(tid, 0.0) + query_weight * contribution
                    partials[tid] = value
                    if value > best:
                        best = value
        self.best_partial = best

    def kth_largest(self, k: int) -> float:
        return heapq.nlargest(k, self._partials.values())[-1]

    def iter_by_partial(self) -> Iterator[Tuple[float, int]]:
        by_partial = [(-partial, tid) for tid, partial in self._partials.items()]
        heapq.heapify(by_partial)
        while by_partial:
            negated_partial, tid = heapq.heappop(by_partial)
            yield -negated_partial, tid


class _NumpyTopKAccumulator:
    """Dense-array max-score accumulation: one ``np.add.at`` per opened term.

    Bit-identity with the scalar accumulator holds term by term: within a
    term the tids are unique (one posting per tuple), so the scatter-add
    updates each touched slot with the same single float64 addition the
    scalar loop performs, and ``best_partial`` -- the max over the term's
    post-update values -- sees exactly the values the scalar running max
    saw at the same point.
    """

    def __init__(self, size: int, allowed: Optional[Set[int]]):
        self._acc = np.zeros(size, dtype=np.float64)
        self._touched = np.zeros(size, dtype=bool)
        if allowed is None:
            self._allowed_mask = None
        else:
            mask = np.zeros(size, dtype=bool)
            if allowed:
                indices = np.fromiter(allowed, dtype=np.int64, count=len(allowed))
                indices = indices[(indices >= 0) & (indices < size)]
                mask[indices] = True
            self._allowed_mask = mask
        self.count = 0
        self.best_partial = float("-inf")

    def add_term(self, term) -> None:
        pair = term.arrays
        if pair is None:
            pair = _arrays_from_postings(term.postings)
        tids, contributions = pair
        if self._allowed_mask is not None:
            keep = self._allowed_mask[tids]
            tids = tids[keep]
            contributions = contributions[keep]
            if not tids.size:
                return
        query_weight = term.query_weight
        values = (
            contributions if query_weight == 1.0 else query_weight * contributions
        )
        np.add.at(self._acc, tids, values)
        newly = tids[~self._touched[tids]]
        if newly.size:
            self.count += int(newly.size)
            self._touched[newly] = True
        term_best = float(self._acc[tids].max())
        if term_best > self.best_partial:
            self.best_partial = term_best

    def kth_largest(self, k: int) -> float:
        values = self._acc[self._touched]
        return float(np.partition(values, values.size - k)[values.size - k])

    def iter_by_partial(self) -> Iterator[Tuple[float, int]]:
        candidates = np.flatnonzero(self._touched)
        partials = self._acc[candidates]
        # (partial desc, tid asc) -- the scalar heap's pop order.  Negation
        # is exact, and -0.0 ties with 0.0 fall through to the tid key in
        # both implementations.
        order = np.lexsort((candidates, -partials))
        candidate_list = candidates.tolist()
        partial_list = partials.tolist()
        for position in order.tolist():
            yield partial_list[position], candidate_list[position]


def make_topk_accumulator(live_terms: Sequence, allowed: Optional[Set[int]]):
    """Backend-appropriate accumulator for :func:`repro.core.topk.maxscore_top_k`.

    ``live_terms`` must have non-empty postings (the caller filters); their
    lists are in increasing tid order, so the last entry bounds the dense
    array size the numpy accumulator needs.
    """
    backend = active_backend()
    _count_op(backend)
    if backend == "numpy":
        try:
            size = 0
            for term in live_terms:
                pair = term.arrays
                last_tid = int(pair[0][-1]) if pair is not None else term.postings[-1][0]
                if last_tid >= size:
                    size = last_tid + 1
            return _NumpyTopKAccumulator(size, allowed)
        except Exception:
            # Same fallback ladder as accumulate(): the scalar accumulator
            # is the bit-identical pre-kernel path.
            _count_op("python_fallback")
    return _PythonTopKAccumulator(allowed)
