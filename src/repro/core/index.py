"""Inverted index over tokenized tuples.

Every token-based predicate restricts score computation to tuples that share
at least one token with the query (this is exactly what the SQL join between
``BASE_TOKENS`` and ``QUERY_TOKENS`` does in the declarative realization).
The :class:`InvertedIndex` provides that candidate generation step and also
doubles as the per-tuple term-frequency store.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core import kernels

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (blocking uses text only)
    from repro.blocking.base import Blocker

__all__ = ["InvertedIndex", "WeightedPostingIndex"]


class InvertedIndex:
    """Maps tokens to the tuples containing them (postings with tf)."""

    def __init__(self, token_lists: Sequence[Sequence[str]]):
        self._postings: Dict[str, List[Tuple[int, int]]] = defaultdict(list)
        self._term_frequencies: List[Counter] = []
        for tid, tokens in enumerate(token_lists):
            counts = Counter(tokens)
            self._term_frequencies.append(counts)
            for token, tf in counts.items():
                self._postings[token].append((tid, tf))
        self._postings = dict(self._postings)

    @property
    def num_tuples(self) -> int:
        return len(self._term_frequencies)

    def postings(self, token: str) -> List[Tuple[int, int]]:
        """``(tid, tf)`` pairs for every tuple containing ``token``."""
        return self._postings.get(token, [])

    def document_frequency(self, token: str) -> int:
        return len(self._postings.get(token, ()))

    def term_frequencies(self, tid: int) -> Counter:
        return self._term_frequencies[tid]

    def candidates(
        self, tokens: Iterable[str], blocker: Optional["Blocker"] = None
    ) -> Set[int]:
        """All tuple ids sharing at least one token with ``tokens``.

        With a :class:`~repro.blocking.base.Blocker`, only the blocker's probe
        tokens are looked up (prefix filtering touches just the rare postings)
        and the resulting set is pruned of candidates that cannot reach the
        blocker's threshold.
        """
        query_tokens = set(tokens)
        probe = query_tokens if blocker is None else blocker.probe_tokens(query_tokens)
        result: Set[int] = set()
        for token in probe:
            for tid, _ in self._postings.get(token, ()):
                result.add(tid)
        if blocker is not None:
            result = blocker.prune(query_tokens, result)
        return result

    def candidate_overlap(self, tokens: Iterable[str]) -> Dict[int, int]:
        """Number of *distinct* shared tokens per candidate tuple."""
        overlap: Dict[int, int] = defaultdict(int)
        for token in set(tokens):
            for tid, _ in self._postings.get(token, ()):
                overlap[tid] += 1
        return dict(overlap)

    def vocabulary_size(self) -> int:
        return len(self._postings)

    def tokens(self) -> Iterable[str]:
        return self._postings.keys()

    def slice(self, start: int, stop: int) -> "InvertedIndex":
        """The sub-index over tuples ``start <= tid < stop``, tids rebased to 0.

        Posting lists are stored in increasing tid order, so slicing them by
        the contiguous range yields exactly the index that would have been
        built from ``token_lists[start:stop]`` -- the invariant sharded
        execution relies on (a shard-local fit equals a slice of the global
        fit).
        """
        sliced = InvertedIndex.__new__(InvertedIndex)
        sliced._term_frequencies = self._term_frequencies[start:stop]
        sliced._postings = {}
        for token, plist in self._postings.items():
            local = [
                (tid - start, tf) for tid, tf in plist if start <= tid < stop
            ]
            if local:
                sliced._postings[token] = local
        return sliced


_EMPTY_POSTINGS: List[Tuple[int, float]] = []


class WeightedPostingIndex:
    """Per-token posting lists carrying precomputed score contributions.

    Weighted predicates score ``sim(Q, D) = Σ wq(t, Q) * c(t, D)`` where the
    document-side factor ``c(t, D)`` (normalized tf-idf product, BM25 term
    partial, RS weight, ...) depends only on the base relation.  Recomputing
    it per candidate per query is the direct realization's hot-path tax; this
    index stores it *in the posting itself* at fit time, so query-time
    accumulation is one flat loop over precomputed floats.

    Each token also records its maximum and minimum stored contribution,
    which is exactly what max-score pruning (:mod:`repro.core.topk`) needs to
    bound unopened posting lists.

    When numpy is available (the ``fast`` extra), each posting list is also
    materialized once as a contiguous ``(int64 tids, float64 contributions)``
    array pair so the vectorized kernels (:mod:`repro.core.kernels`) can
    accumulate at C speed; without numpy ``arrays()`` returns ``None`` and
    every scoring path falls back to the list-of-tuples postings.
    """

    def __init__(self, postings: Dict[str, List[Tuple[int, float]]]):
        self._postings = postings
        self._max: Dict[str, float] = {}
        self._min: Dict[str, float] = {}
        for token, plist in postings.items():
            contributions = [contribution for _, contribution in plist]
            self._max[token] = max(contributions)
            self._min[token] = min(contributions)
        self._arrays = kernels.build_arrays(postings)

    @classmethod
    def from_doc_weights(
        cls,
        index: InvertedIndex,
        doc_weights: Sequence[Dict[str, float]],
    ) -> "WeightedPostingIndex":
        """Build from per-tuple ``token -> weight`` maps (aggregate family).

        Zero contributions are omitted, matching the accumulation loops that
        skip ``doc_weight == 0`` candidates.  Predicates whose candidate
        membership must include zero-contribution postings (the language
        model keeps them: such tuples still score ``exp(sum_complement)``)
        build their posting dict themselves and use the constructor.
        """
        postings: Dict[str, List[Tuple[int, float]]] = {}
        for token in index.tokens():
            plist = []
            for tid, _ in index.postings(token):
                contribution = doc_weights[tid].get(token, 0.0)
                if contribution == 0.0:
                    continue
                plist.append((tid, contribution))
            if plist:
                postings[token] = plist
        return cls(postings)

    @classmethod
    def from_token_weights(
        cls, index: InvertedIndex, weights: Dict[str, float]
    ) -> "WeightedPostingIndex":
        """Build from a global ``token -> weight`` table (overlap family).

        Every posting of a token carries the same contribution (the token's
        weight); zero-weight tokens are dropped entirely, matching the
        accumulation loops that skip them.
        """
        postings: Dict[str, List[Tuple[int, float]]] = {}
        for token in index.tokens():
            weight = weights.get(token, 0.0)
            if weight == 0.0:
                continue
            postings[token] = [(tid, weight) for tid, _ in index.postings(token)]
        return cls(postings)

    def postings(self, token: str) -> List[Tuple[int, float]]:
        """``(tid, contribution)`` pairs for every tuple ``token`` scores on."""
        return self._postings.get(token, _EMPTY_POSTINGS)

    def arrays(self, token: str):
        """``(int64 tids, float64 contributions)`` arrays, or ``None``.

        ``None`` either because numpy is unavailable or because the token has
        no postings; callers fall back to :meth:`postings` in both cases.
        """
        if self._arrays is None:
            return None
        return self._arrays.get(token)

    def slice(self, start: int, stop: int) -> "WeightedPostingIndex":
        """The sub-index over tuples ``start <= tid < stop``, tids rebased to 0.

        Contributions are carried over unchanged (they were computed against
        collection-level statistics, which do not change with the slice), and
        the per-token max/min bounds are recomputed over the surviving
        postings -- tightening them to the slice is what makes per-shard
        max-score bounds useful for short-circuiting whole shards.  Going
        through the constructor also rebuilds the kernel array backing, so a
        sliced index carries exactly the arrays a shard-local fit would have
        built (the shard==slice invariant extends to the vectorized path).
        """
        postings: Dict[str, List[Tuple[int, float]]] = {}
        for token, plist in self._postings.items():
            local = [
                (tid - start, contribution)
                for tid, contribution in plist
                if start <= tid < stop
            ]
            if local:
                postings[token] = local
        return WeightedPostingIndex(postings)

    def max_contribution(self, token: str) -> float:
        return self._max.get(token, 0.0)

    def min_contribution(self, token: str) -> float:
        return self._min.get(token, 0.0)

    def __contains__(self, token: str) -> bool:
        return token in self._postings

    def __len__(self) -> int:
        return len(self._postings)
