"""Inverted index over tokenized tuples.

Every token-based predicate restricts score computation to tuples that share
at least one token with the query (this is exactly what the SQL join between
``BASE_TOKENS`` and ``QUERY_TOKENS`` does in the declarative realization).
The :class:`InvertedIndex` provides that candidate generation step and also
doubles as the per-tuple term-frequency store.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (blocking uses text only)
    from repro.blocking.base import Blocker

__all__ = ["InvertedIndex"]


class InvertedIndex:
    """Maps tokens to the tuples containing them (postings with tf)."""

    def __init__(self, token_lists: Sequence[Sequence[str]]):
        self._postings: Dict[str, List[Tuple[int, int]]] = defaultdict(list)
        self._term_frequencies: List[Counter] = []
        for tid, tokens in enumerate(token_lists):
            counts = Counter(tokens)
            self._term_frequencies.append(counts)
            for token, tf in counts.items():
                self._postings[token].append((tid, tf))
        self._postings = dict(self._postings)

    @property
    def num_tuples(self) -> int:
        return len(self._term_frequencies)

    def postings(self, token: str) -> List[Tuple[int, int]]:
        """``(tid, tf)`` pairs for every tuple containing ``token``."""
        return self._postings.get(token, [])

    def document_frequency(self, token: str) -> int:
        return len(self._postings.get(token, ()))

    def term_frequencies(self, tid: int) -> Counter:
        return self._term_frequencies[tid]

    def candidates(
        self, tokens: Iterable[str], blocker: Optional["Blocker"] = None
    ) -> Set[int]:
        """All tuple ids sharing at least one token with ``tokens``.

        With a :class:`~repro.blocking.base.Blocker`, only the blocker's probe
        tokens are looked up (prefix filtering touches just the rare postings)
        and the resulting set is pruned of candidates that cannot reach the
        blocker's threshold.
        """
        query_tokens = set(tokens)
        probe = query_tokens if blocker is None else blocker.probe_tokens(query_tokens)
        result: Set[int] = set()
        for token in probe:
            for tid, _ in self._postings.get(token, ()):
                result.add(tid)
        if blocker is not None:
            result = blocker.prune(query_tokens, result)
        return result

    def candidate_overlap(self, tokens: Iterable[str]) -> Dict[int, int]:
        """Number of *distinct* shared tokens per candidate tuple."""
        overlap: Dict[int, int] = defaultdict(int)
        for token in set(tokens):
            for tid, _ in self._postings.get(token, ()):
                overlap[tid] += 1
        return dict(overlap)

    def vocabulary_size(self) -> int:
        return len(self._postings)

    def tokens(self) -> Iterable[str]:
        return self._postings.keys()
