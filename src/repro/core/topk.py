"""Exact top-k execution with max-score early termination.

The paper's query-time benchmarks are all about answering selections at
interactive speed; for ranked retrieval (``top_k``) the dominant cost of the
direct realization is opening *every* posting list a query token touches and
scoring thousands of candidates for a handful of results.  For predicates
whose score is a monotone sum of per-token contributions::

    sim(Q, D) = Σ_{t ∈ Q ∩ D} wq(t, Q) * c(t, D)

a classic max-score argument applies: if each token's maximum posting
contribution is known (precomputed at fit time by
:class:`repro.core.index.WeightedPostingIndex`), posting lists can be opened
in decreasing upper-bound order and the scan stopped once the combined upper
bound of the unopened lists cannot lift a *new* candidate into the current
top-k.  The tuples accumulated so far are then rescored exactly -- in the
same canonical token order the unpruned path uses, so scores are
float-identical -- and the best ``k`` returned.

Exactness guarantee
-------------------

:func:`maxscore_top_k` returns exactly the same ``(tid, score)`` list as the
unpruned ``rank(limit=k)`` path.  With ``P`` the combined positive upper
bound and ``N`` the combined negative lower bound of the *unopened* terms
(contributions can be negative: RS weights of very frequent tokens), every
tuple's final score lies within ``[partial + N, partial + P]`` of its
accumulated partial sum (0 for untouched tuples):

* At least ``k`` accumulated candidates score ``>= kth_partial + N``, so the
  final k-th score does too; the scan stops once ``P`` (the most an
  untouched tuple can reach) falls strictly below that, with a relative
  float-safety margin.  Untouched tuples then sit strictly below the final
  k-th score and cannot enter the result even on a tie.
* Candidates are then rescored in decreasing partial-sum order while an
  exact top-k heap fills; once a candidate's upper bound ``partial + P``
  falls strictly below the heap's exact k-th score, no later candidate can
  enter the result and the rescoring stops -- typically after the top-k plus
  a handful of ties, not the whole accumulator.
* Rescoring goes through the caller-supplied ``rescore`` callback, which
  replicates the unpruned accumulation order bit for bit, so the returned
  scores are float-identical to the naive path's.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core import kernels

__all__ = ["PruningStats", "Term", "maxscore_top_k"]

#: Relative float-safety margin of the cutoff test.  Accumulated partial sums
#: and the precomputed suffix bounds are float64; their relative error over a
#: realistic query (tens of tokens) is ~1e-14, so 1e-9 is a vast safety factor
#: that costs essentially no pruning opportunity.
_CUTOFF_MARGIN = 1e-9

#: Keep opening posting lists past the first legal cutoff until the remaining
#: bound P falls below this fraction of the floor.  At the first legal point
#: P sits just under the floor, leaving the rescore phase a near-useless stop
#: condition (almost every candidate still looks viable); a smaller P
#: collapses the rescore set at the cost of a few more opened lists.  0.65
#: sits on the empirical break-even plateau (0.6-0.75) of the three
#: monotone-sum predicates on the 10k-row benchmark relation.
_CONTINUE_FRACTION = 0.65


@dataclass
class PruningStats:
    """Work counters of one max-score :func:`maxscore_top_k` execution.

    ``postings_skipped`` is the number of postings never opened thanks to
    early termination -- the quantity the fast path exists to maximize.
    ``candidates_scored`` is the number of tuples accumulated, of which only
    ``candidates_rescored`` (the ones whose score interval can reach the
    top-k) are exactly rescored; the unpruned path scores every candidate
    instead.
    """

    tokens_total: int = 0
    tokens_opened: int = 0
    postings_total: int = 0
    postings_opened: int = 0
    postings_skipped: int = 0
    candidates_scored: int = 0
    candidates_rescored: int = 0
    pruned: bool = False

    def describe(self) -> str:
        return (
            f"{self.tokens_opened}/{self.tokens_total} posting lists opened, "
            f"{self.postings_opened} postings scored, "
            f"{self.postings_skipped} skipped, "
            f"{self.candidates_rescored}/{self.candidates_scored} "
            f"candidates rescored"
            + (" (early termination)" if self.pruned else "")
        )

    def publish(self, metrics) -> None:
        """Accumulate these counters into a :class:`~repro.obs.metrics.
        MetricsRegistry` (the long-lived view of per-call stats)."""
        metrics.inc("postings_opened", self.postings_opened)
        metrics.inc("postings_skipped", self.postings_skipped)
        metrics.inc("tokens_opened", self.tokens_opened)
        metrics.inc("candidates_scored", self.candidates_scored)
        metrics.inc("candidates_rescored", self.candidates_rescored)


@dataclass(frozen=True)
class Term:
    """One query token's posting list with its contribution bounds.

    ``postings`` carries ``(tid, contribution)`` pairs where ``contribution``
    is the precomputed document-side factor; a tuple's score gain from this
    term is ``query_weight * contribution``.
    """

    token: str
    query_weight: float
    postings: Sequence[Tuple[int, float]] = field(repr=False)
    max_contribution: float
    min_contribution: float
    #: Optional ``(int64 tids, float64 contributions)`` array backing from
    #: :meth:`repro.core.index.WeightedPostingIndex.arrays`; the numpy kernel
    #: accumulator uses it directly, and builds it on the fly when absent.
    arrays: Optional[Tuple] = field(default=None, repr=False, compare=False)

    @property
    def upper_bound(self) -> float:
        """Largest possible score gain of this term for any single tuple."""
        return max(
            self.query_weight * self.max_contribution,
            self.query_weight * self.min_contribution,
        )

    @property
    def lower_bound(self) -> float:
        """Smallest possible score gain (negative for e.g. RS weights)."""
        return min(
            self.query_weight * self.max_contribution,
            self.query_weight * self.min_contribution,
        )


def maxscore_top_k(
    k: int,
    terms: Sequence[Term],
    rescore: Callable[[Iterable[int]], Dict[int, float]],
    allowed: Optional[Set[int]] = None,
) -> Tuple[List[Tuple[int, float]], PruningStats]:
    """Exact top-k of a monotone-sum predicate with max-score pruning.

    Parameters
    ----------
    k:
        Number of results (``(tid, score)`` pairs, ordered by decreasing
        score with ties broken by tuple id).
    terms:
        One :class:`Term` per query token.  Zero-weight and empty-postings
        terms are ignored.
    rescore:
        Callback computing the *exact* final score of the given tuple ids in
        the predicate's canonical accumulation order; its values are what the
        result carries, so they match the unpruned path bit for bit.
    allowed:
        Optional candidate restriction (blocker / self-join scoping); tuples
        outside it are never accumulated.
    """
    stats = PruningStats()
    live = [t for t in terms if t.query_weight != 0.0 and t.postings]
    stats.tokens_total = len(live)
    stats.postings_total = sum(len(t.postings) for t in live)
    if k <= 0:
        stats.postings_skipped = stats.postings_total
        return [], stats

    # Decreasing positive upper bound: the terms that can lift an unseen
    # tuple the most go first, so the remaining-bound suffix collapses as
    # fast as possible.  Negative-upper-bound terms (pure penalties, i.e.
    # the *longest* posting lists under RS weighting) contribute nothing to
    # an unseen tuple's reachable score and sort last -- exactly the lists
    # early termination exists to skip.  Token tie-break keeps runs
    # deterministic.
    order = sorted(live, key=lambda t: (-max(0.0, t.upper_bound), t.token))

    # suffix_pos[i]: the most a tuple absent from every opened list could
    # still gain from terms i.. ; suffix_neg[i]: the most an accumulated
    # tuple could still *lose* to them.
    count = len(order)
    suffix_pos = [0.0] * (count + 1)
    suffix_neg = [0.0] * (count + 1)
    for i in range(count - 1, -1, -1):
        suffix_pos[i] = suffix_pos[i + 1] + max(0.0, order[i].upper_bound)
        suffix_neg[i] = suffix_neg[i + 1] + min(0.0, order[i].lower_bound)

    # The accumulator is backend-dispatched (repro.core.kernels): the python
    # variant is the original dict-of-partials loop, the numpy variant does
    # one unbuffered scatter-add per opened term.  Both maintain the same
    # observable state -- candidate count, running best partial (possibly a
    # stale overestimate under negative contributions, which only makes the
    # necessity gate below conservative), exact k-th partial selection, and
    # (partial desc, tid asc) iteration -- bit-identically.
    accumulated = kernels.make_topk_accumulator(order, allowed)
    cut = count
    for i, term in enumerate(order):
        if accumulated.count >= k and suffix_pos[i] < _CONTINUE_FRACTION * (
            # Cheap necessity gate: the k-th partial is at most the best one,
            # so until the remaining bound undercuts even that (scaled by
            # the continue fraction below), the O(n log k) k-th selection
            # cannot trigger a cut and is skipped.
            accumulated.best_partial + suffix_neg[i]
        ):
            # At least k candidates end with >= kth + suffix_neg[i]; a tuple
            # in no opened list ends with <= suffix_pos[i].
            kth = accumulated.kth_largest(k)
            floor = kth + suffix_neg[i]
            margin = _CUTOFF_MARGIN * (
                abs(kth) + suffix_pos[i] - suffix_neg[i]
            )
            # suffix_pos >= 0, so a passing test implies floor > 0 here.
            # Stopping at the first point where suffix_pos < floor would
            # already be exact; the extra _CONTINUE_FRACTION factor trades a
            # few more opened lists for a collapsed rescore set (see above).
            if (
                suffix_pos[i] < floor - margin
                and suffix_pos[i] <= _CONTINUE_FRACTION * floor
            ):
                cut = i
                stats.pruned = True
                break
        stats.tokens_opened += 1
        stats.postings_opened += len(term.postings)
        accumulated.add_term(term)
    for term in order[cut:]:
        stats.postings_skipped += len(term.postings)
    stats.candidates_scored = accumulated.count

    # Exact-rescore candidates in decreasing partial-sum order, keeping the
    # running exact top-k in a min-heap.  A candidate's final score is at
    # most partial + P; once that upper bound falls strictly below the
    # heap's exact k-th score, no remaining candidate (they have smaller
    # partials) can enter the result -- stop rescoring.  The accumulator
    # orders candidates lazily (heap) or via one lexsort, so the ordering
    # cost stays proportional to what is actually consumed.
    remaining_pos = suffix_pos[cut]
    heap: List[Tuple[float, int]] = []  # (score, -tid) min-heap of the top k
    for partial, tid in accumulated.iter_by_partial():
        if len(heap) == k:
            kth_exact = heap[0][0]
            margin = _CUTOFF_MARGIN * (
                abs(kth_exact) + abs(partial) + remaining_pos
            )
            if partial + remaining_pos < kth_exact - margin:
                break
        stats.candidates_rescored += 1
        exact = rescore([tid])[tid]
        entry = (exact, -tid)
        if len(heap) < k:
            heapq.heappush(heap, entry)
        elif entry > heap[0]:
            heapq.heapreplace(heap, entry)

    top = [(-negated_tid, score) for score, negated_tid in heap]
    top.sort(key=lambda item: (-item[1], item[0]))
    return top, stats
