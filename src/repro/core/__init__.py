"""Core library: the approximate selection operation and its predicates.

The public entry point is :class:`repro.core.selection.ApproximateSelector`,
which indexes a base relation of strings under one similarity predicate and
answers ranked or thresholded approximate selections.  The individual
predicates live in :mod:`repro.core.predicates` and can also be used
directly.
"""

from repro.core.predicates import (
    Predicate,
    available_predicates,
    make_predicate,
)
from repro.core.selection import ApproximateSelector, SelectionResult
from repro.core.join import ApproximateJoiner, JoinMatch, SelfJoinStats
from repro.core.dedup import Deduplicator, DuplicateCluster, ClusteringQuality

__all__ = [
    "ApproximateSelector",
    "SelectionResult",
    "ApproximateJoiner",
    "JoinMatch",
    "SelfJoinStats",
    "Deduplicator",
    "DuplicateCluster",
    "ClusteringQuality",
    "Predicate",
    "make_predicate",
    "available_predicates",
]
