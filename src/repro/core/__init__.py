"""Core library: the similarity predicates and the operations over them.

The preferred public entry point is :class:`repro.engine.SimilarityEngine`;
this package provides the direct (in-memory Python) predicate realizations
(:mod:`repro.core.predicates`), the approximate join and deduplication
operators and the deprecated :class:`ApproximateSelector` shim.
"""

from repro.core.predicates import (
    Match,
    Predicate,
    available_predicates,
    make_predicate,
)
from repro.core.selection import ApproximateSelector, SelectionResult
from repro.core.join import ApproximateJoiner, JoinMatch, SelfJoinStats
from repro.core.dedup import Deduplicator, DuplicateCluster, ClusteringQuality
from repro.core.topk import PruningStats

__all__ = [
    "ApproximateSelector",
    "PruningStats",
    "Match",
    "SelectionResult",
    "ApproximateJoiner",
    "JoinMatch",
    "SelfJoinStats",
    "Deduplicator",
    "DuplicateCluster",
    "ClusteringQuality",
    "Predicate",
    "make_predicate",
    "available_predicates",
]
