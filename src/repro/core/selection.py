"""The legacy approximate-selection entry point (thin shim over the engine).

.. deprecated::
    :class:`ApproximateSelector` predates :class:`repro.engine.SimilarityEngine`
    and is kept as a thin backward-compatible shim.  New code should use the
    engine's fluent query API, which exposes the same operations over *both*
    realizations (direct and declarative), both SQL backends and the blocking
    subsystem::

        from repro import SimilarityEngine

        query = SimilarityEngine().from_strings(strings).predicate("bm25")
        query.top_k("Morgn Stanley Inc", 1)

    Results are :class:`~repro.core.predicates.base.Match` objects;
    ``SelectionResult`` is a backward-compatible alias of :class:`Match`
    (the old ``.text`` attribute is kept as a property).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.core.predicates.base import Match, Predicate

__all__ = ["SelectionResult", "ApproximateSelector"]

#: Backward-compatible alias of the unified result type.
SelectionResult = Match


class ApproximateSelector:
    """Approximate (flexible) selection over a relation of strings.

    .. deprecated:: use :class:`repro.engine.SimilarityEngine` instead; this
       class now merely forwards to an engine query bound to ``strings``.

    Parameters
    ----------
    strings:
        The base relation ``R``; tuple ids are positions in this sequence.
    predicate:
        Either a :class:`~repro.core.predicates.base.Predicate` instance or a
        predicate name understood by the merged
        :mod:`repro.engine.registry`.
    **predicate_kwargs:
        Forwarded to the predicate constructor when ``predicate`` is a name.

    Example
    -------
    >>> selector = ApproximateSelector(
    ...     ["Morgan Stanley Group Inc.", "Goldman Sachs Group"], predicate="bm25")
    >>> selector.top_k("Morgn Stanley Inc", k=1)[0].tid
    0
    """

    def __init__(
        self,
        strings: Sequence[str],
        predicate: Union[Predicate, str] = "bm25",
        **predicate_kwargs,
    ):
        from repro.engine import SimilarityEngine

        if not isinstance(predicate, str) and predicate_kwargs:
            raise ValueError("predicate_kwargs are only valid with a predicate name")
        self._strings = list(strings)
        self._query = (
            SimilarityEngine()
            .from_strings(self._strings)
            .predicate(predicate, **predicate_kwargs)
        )
        # Preserve the historical fit-at-construction contract.
        self.predicate = self._query.fitted_predicate()

    # -- operations -----------------------------------------------------------

    def rank(self, query: str, limit: Optional[int] = None) -> List[Match]:
        """All candidate tuples ordered by decreasing similarity to ``query``."""
        return self._query.rank(query, limit=limit)

    def select(self, query: str, threshold: float) -> List[Match]:
        """The approximate selection ``{t | sim(query, t) >= threshold}``."""
        return self._query.select(query, threshold)

    def top_k(self, query: str, k: int) -> List[Match]:
        """The ``k`` most similar tuples."""
        return self._query.top_k(query, k)

    def score(self, query: str, tid: int) -> float:
        """Similarity between ``query`` and the tuple with id ``tid``."""
        return self._query.score(query, tid)

    # -- introspection ----------------------------------------------------------

    @property
    def strings(self) -> List[str]:
        return list(self._strings)

    def __len__(self) -> int:
        return len(self._strings)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ApproximateSelector(n={len(self._strings)}, "
            f"predicate={self.predicate.name})"
        )
