"""The approximate selection operation: the library's public entry point.

:class:`ApproximateSelector` wraps a base relation of strings and a
similarity predicate and exposes the operations the paper studies:

* ranked retrieval (:meth:`ApproximateSelector.rank`) -- every candidate
  tuple ordered by decreasing similarity;
* thresholded approximate selection (:meth:`ApproximateSelector.select`) --
  all tuples with ``sim(query, t) >= threshold``;
* top-k retrieval (:meth:`ApproximateSelector.top_k`).

Results are :class:`SelectionResult` objects carrying the tuple id, the
original string and the similarity score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.core.predicates.base import Predicate
from repro.core.predicates.registry import make_predicate

__all__ = ["SelectionResult", "ApproximateSelector"]


@dataclass(frozen=True)
class SelectionResult:
    """One tuple returned by an approximate selection."""

    tid: int
    text: str
    score: float


class ApproximateSelector:
    """Approximate (flexible) selection over a relation of strings.

    Parameters
    ----------
    strings:
        The base relation ``R``; tuple ids are positions in this sequence.
    predicate:
        Either a :class:`~repro.core.predicates.base.Predicate` instance or a
        predicate name understood by
        :func:`~repro.core.predicates.registry.make_predicate`.
    **predicate_kwargs:
        Forwarded to ``make_predicate`` when ``predicate`` is a name.

    Example
    -------
    >>> selector = ApproximateSelector(
    ...     ["Morgan Stanley Group Inc.", "Goldman Sachs Group"], predicate="bm25")
    >>> selector.top_k("Morgn Stanley Inc", k=1)[0].tid
    0
    """

    def __init__(
        self,
        strings: Sequence[str],
        predicate: Union[Predicate, str] = "bm25",
        **predicate_kwargs,
    ):
        self._strings = list(strings)
        if isinstance(predicate, str):
            predicate = make_predicate(predicate, **predicate_kwargs)
        elif predicate_kwargs:
            raise ValueError("predicate_kwargs are only valid with a predicate name")
        self.predicate = predicate
        self.predicate.fit(self._strings)

    # -- operations -----------------------------------------------------------

    def rank(self, query: str, limit: Optional[int] = None) -> List[SelectionResult]:
        """All candidate tuples ordered by decreasing similarity to ``query``."""
        return [
            SelectionResult(st.tid, self._strings[st.tid], st.score)
            for st in self.predicate.rank(query, limit=limit)
        ]

    def select(self, query: str, threshold: float) -> List[SelectionResult]:
        """The approximate selection ``{t | sim(query, t) >= threshold}``."""
        return [
            SelectionResult(st.tid, self._strings[st.tid], st.score)
            for st in self.predicate.select(query, threshold)
        ]

    def top_k(self, query: str, k: int) -> List[SelectionResult]:
        """The ``k`` most similar tuples."""
        if k < 0:
            raise ValueError("k must be non-negative")
        return self.rank(query, limit=k)

    def score(self, query: str, tid: int) -> float:
        """Similarity between ``query`` and the tuple with id ``tid``."""
        return self.predicate.score(query, tid)

    # -- introspection ----------------------------------------------------------

    @property
    def strings(self) -> List[str]:
        return list(self._strings)

    def __len__(self) -> int:
        return len(self._strings)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ApproximateSelector(n={len(self._strings)}, "
            f"predicate={self.predicate.name})"
        )
