"""Core of the invariant checker: findings, rules, suppressions, file runs.

The checker is a thin AST visitor harness.  Each rule is a class with a
``code`` (``RPLnnn``), a human-readable contract description and a
``check(ctx)`` generator producing :class:`Finding` objects.  Rules are
registered into :data:`RULES` at import time (see :mod:`repro.analysis.rules`)
and run per file through :func:`check_source` / :func:`check_file`.

Suppressions are inline comments of the form::

    total += weight  # repro-analysis: disable=RPL001 reason=integral sum

A ``reason=`` is mandatory: a disable comment without one is itself reported
as ``RPL000`` -- grandfathering a contract violation must say why.  A
standalone comment line suppresses the next source line, so long statements
can carry their exemption above them.

Everything here runs on the stdlib ``ast``/``tokenize`` machinery only.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "RULES",
    "register",
    "check_source",
    "check_file",
    "parse_suppressions",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a precise source location.

    ``scope`` (the dotted chain of enclosing class/function names) and
    ``snippet`` (the stripped source line) feed the baseline fingerprint, so
    grandfathered findings survive unrelated line-number drift but die when
    the offending code itself changes.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    scope: str = ""
    snippet: str = ""

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        return f"{self.location}: {self.rule} {self.message}"

    def fingerprint(self) -> str:
        payload = "::".join((self.path, self.rule, self.scope, self.snippet))
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


class FileContext:
    """Everything a rule needs to inspect one source file."""

    def __init__(self, path: str, source: str, config: Optional[dict] = None):
        #: Repo-relative posix path used in reports and path-scope matching.
        self.path = str(PurePosixPath(path))
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.config = config or {}
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # -- tree navigation ---------------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def scope_of(self, node: ast.AST) -> str:
        """Dotted enclosing class/function chain, e.g. ``Engine.clear_cache``."""
        names: List[str] = []
        for ancestor in self.ancestors(node):
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                names.append(ancestor.name)
        return ".".join(reversed(names))

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.FunctionDef | ast.AsyncFunctionDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    # -- rule-config helpers -----------------------------------------------------

    def rule_config(self, code: str, defaults: dict) -> dict:
        merged = dict(defaults)
        merged.update(self.config.get(code.lower(), {}))
        return merged

    def path_selected(self, prefixes: Sequence[str]) -> bool:
        """Whether this file lives under any of the configured path prefixes."""
        if not prefixes:
            return True
        candidate = self.path
        for prefix in prefixes:
            normalized = str(PurePosixPath(prefix))
            if candidate == normalized or candidate.startswith(normalized + "/"):
                return True
        return False

    def path_allowed(self, allow: Sequence[str]) -> bool:
        """Whether this file is on the rule's allow list (checked by suffix,
        so absolute and repo-relative invocations agree)."""
        return any(
            self.path == str(PurePosixPath(entry))
            or self.path.endswith("/" + str(PurePosixPath(entry)))
            for entry in allow
        )

    def finding(
        self, node: ast.AST, rule: str, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            path=self.path,
            line=line,
            col=col,
            rule=rule,
            message=message,
            scope=self.scope_of(node),
            snippet=self.line_text(line).strip(),
        )


class Rule:
    """Base class: subclasses set ``code``/``name``/``contract`` and yield
    findings from :meth:`check`."""

    code: str = "RPL000"
    name: str = "rule"
    #: One-line statement of the invariant the rule protects (shown by
    #: ``--list-rules`` and mirrored in docs/invariants.md).
    contract: str = ""
    defaults: dict = {}

    def check(self, ctx: FileContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def config(self, ctx: FileContext) -> dict:
        return ctx.rule_config(self.code, self.defaults)


#: Registry of rule instances keyed by code, populated via :func:`register`.
RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    RULES[cls.code] = cls()
    return cls


# -- suppressions ----------------------------------------------------------------

_SUPPRESS_RE = re.compile(
    r"#\s*repro-analysis:\s*disable=(?P<codes>[A-Za-z0-9,\s]+?)"
    r"(?:\s+reason=(?P<reason>.+?))?\s*$"
)


@dataclass
class Suppressions:
    """Per-line suppression map plus the invalid-suppression findings."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    invalid: List[Finding] = field(default_factory=list)

    def active(self, line: int, code: str) -> bool:
        codes = self.by_line.get(line)
        return bool(codes) and code in codes


def parse_suppressions(path: str, lines: Sequence[str]) -> Suppressions:
    """Collect ``# repro-analysis: disable=...`` comments.

    An inline comment suppresses its own line; a standalone comment line
    suppresses the next line as well.  A disable without a ``reason=`` is
    reported as RPL000 -- the reason is the audit trail that keeps
    grandfathered exemptions honest.
    """
    result = Suppressions()
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = {
            code.strip().upper()
            for code in match.group("codes").split(",")
            if code.strip()
        }
        reason = (match.group("reason") or "").strip()
        if not reason:
            result.invalid.append(
                Finding(
                    path=path,
                    line=number,
                    col=text.index("#") + 1,
                    rule="RPL000",
                    message=(
                        "suppression without a reason= -- every disable must "
                        "say why the contract does not apply here"
                    ),
                    snippet=text.strip(),
                )
            )
            continue
        result.by_line.setdefault(number, set()).update(codes)
        if text.lstrip().startswith("#"):
            # Standalone comment: the exemption belongs to the next line.
            result.by_line.setdefault(number + 1, set()).update(codes)
    return result


# -- file runs -------------------------------------------------------------------


def check_source(
    source: str,
    path: str,
    config: Optional[dict] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run the (selected) rules over one in-memory source file."""
    try:
        ctx = FileContext(path, source, config=config)
    except SyntaxError as exc:
        return [
            Finding(
                path=str(PurePosixPath(path)),
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule="RPL000",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    suppressions = parse_suppressions(ctx.path, ctx.lines)
    codes = sorted(select) if select else sorted(RULES)
    findings: List[Finding] = list(suppressions.invalid)
    for code in codes:
        rule = RULES.get(code)
        if rule is None:
            raise ValueError(f"unknown rule {code!r}; known: {sorted(RULES)}")
        for finding in rule.check(ctx):
            if not suppressions.active(finding.line, finding.rule):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def check_file(
    path: Path,
    config: Optional[dict] = None,
    select: Optional[Iterable[str]] = None,
    root: Optional[Path] = None,
) -> List[Finding]:
    """Run the (selected) rules over one file on disk."""
    try:
        rel = path.resolve().relative_to((root or Path.cwd()).resolve())
        rel_path = rel.as_posix()
    except ValueError:
        rel_path = path.as_posix()
    source = path.read_text(encoding="utf-8")
    return check_source(source, rel_path, config=config, select=select)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into the .py files the checker visits."""
    seen: Set[Path] = set()
    for entry in paths:
        if entry.is_dir():
            candidates: Iterable[Path] = sorted(entry.rglob("*.py"))
        else:
            candidates = [entry]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def check_paths(
    paths: Sequence[Path],
    config: Optional[dict] = None,
    select: Optional[Iterable[str]] = None,
    root: Optional[Path] = None,
) -> List[Finding]:
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(check_file(path, config=config, select=select, root=root))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def split_by_baseline(
    findings: Sequence[Finding], baseline: Dict[str, str]
) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Partition findings against a baseline.

    Returns ``(new, grandfathered, stale_fingerprints)``.  Baseline entries
    with no matching finding are *stale*: the violation was fixed, so the
    entry must be deleted (the baseline only ever shrinks).
    """
    matched: Set[str] = set()
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in findings:
        fp = finding.fingerprint()
        if fp in baseline:
            matched.add(fp)
            grandfathered.append(finding)
        else:
            new.append(finding)
    stale = [fp for fp in baseline if fp not in matched]
    return new, grandfathered, stale
