"""Command-line entry point: ``python -m repro.analysis [paths...]``.

Exit codes: ``0`` clean (new findings: none, stale baseline entries: none),
``1`` contract violations or a stale baseline, ``2`` usage errors.

Baseline workflow::

    python -m repro.analysis src                      # check (fails on new)
    python -m repro.analysis src --write-baseline     # initial adoption
    python -m repro.analysis src --update-baseline    # drop fixed entries

``--update-baseline`` refuses to run while new findings exist: the baseline
only ever shrinks, it never absorbs regressions.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis import rules  # noqa: F401  (registers the rules)
from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.config import load_config
from repro.analysis.framework import (
    RULES,
    check_paths,
    split_by_baseline,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Invariant-aware static analysis: exactness, clock, purity, "
            "lock and error-envelope contracts (rules RPL001-RPL005)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files/directories to check (default: the 'paths' key of "
            "[tool.repro-analysis] in pyproject.toml, else 'src')"
        ),
    )
    parser.add_argument(
        "--root",
        default=".",
        help="project root holding pyproject.toml (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline file of grandfathered findings (default: the "
            "'baseline' key of [tool.repro-analysis], else none)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record every current finding into the baseline (adoption only)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="remove stale entries from the baseline (fails on new findings)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (e.g. RPL001,RPL004)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and their contracts, then exit",
    )
    return parser


def _selected_codes(raw: Optional[List[str]]) -> Optional[List[str]]:
    if not raw:
        return None
    codes: List[str] = []
    for chunk in raw:
        codes.extend(
            code.strip().upper() for code in chunk.split(",") if code.strip()
        )
    return codes or None


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            rule = RULES[code]
            print(f"{code} {rule.name}: {rule.contract}")
        return 0

    root = Path(args.root)
    config = load_config(root)

    raw_paths = args.paths or config.paths or ["src"]
    paths = [root / p if not Path(p).is_absolute() else Path(p) for p in raw_paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    select = _selected_codes(args.select)
    try:
        findings = check_paths(paths, config=config.rules, select=select, root=root)
    except ValueError as exc:  # unknown --select code
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_name = args.baseline or config.baseline
    baseline_path = (
        (root / baseline_name if not Path(baseline_name).is_absolute() else Path(baseline_name))
        if baseline_name
        else None
    )

    if args.write_baseline:
        if baseline_path is None:
            print("error: --write-baseline needs --baseline", file=sys.stderr)
            return 2
        count = write_baseline(baseline_path, findings)
        print(f"wrote {count} finding(s) to {baseline_path}")
        return 0

    baseline = load_baseline(baseline_path) if baseline_path is not None else {}
    new, grandfathered, stale = split_by_baseline(findings, baseline)

    if args.update_baseline:
        if baseline_path is None:
            print("error: --update-baseline needs --baseline", file=sys.stderr)
            return 2
        if new:
            for finding in new:
                print(finding.render())
            print(
                f"error: {len(new)} new finding(s) -- the baseline only "
                "shrinks; fix them (or add an inline disable with a reason)",
                file=sys.stderr,
            )
            return 1
        count = write_baseline(baseline_path, grandfathered)
        print(
            f"baseline updated: {count} entr(y/ies) kept, "
            f"{len(stale)} stale entr(y/ies) removed"
        )
        return 0

    for finding in new:
        print(finding.render())
    if stale:
        for fingerprint in stale:
            print(f"stale baseline entry: {baseline[fingerprint]}")
        print(
            "error: baseline entries match no current finding -- the "
            "violations were fixed, so run --update-baseline to drop them",
            file=sys.stderr,
        )

    checked = "all rules" if select is None else ",".join(select)
    status = "FAILED" if (new or stale) else "OK"
    print(
        f"repro-analysis [{checked}]: {len(new)} new, "
        f"{len(grandfathered)} grandfathered, {len(stale)} stale -- {status}",
        file=sys.stderr,
    )
    return 1 if (new or stale) else 0
