"""RPL003 pure-task.

**Contract.**  Every callable handed to an executor pool in the shard layer
must be a module-level function.  Process pools pickle the callable by
qualified name: a lambda or nested closure either fails to pickle or -- worse
-- drags captured engine/backend/tracer state across the fork, so the child
recomputes against stale snapshots and the retry/rebuild ladder (PR 9) stops
being bit-identical to a fresh run.  Thread pools tolerate closures
mechanically, but the shard layer keeps one contract for both so an executor
swap (``executor="process"``) can never change results.

**Rule.**  At every ``*.submit(fn, ...)`` call site in the configured paths,
``fn`` must resolve to a module-level ``def`` or an imported name.  Flagged:
lambdas, functions defined inside the enclosing function (closures), and
bound attributes like ``self._run`` (close over instance state).
``functools.partial(fn, ...)`` is unwrapped and ``fn`` judged by the same
test.  ``submit(context.run, fn, ...)`` -- the contextvars propagation shim
-- shifts the judged callable to the next argument.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.framework import FileContext, Finding, Rule, register


def _module_level_names(tree: ast.Module) -> Set[str]:
    """Names bound at module scope: defs, classes, imports, simple assigns."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


def _nested_def_names(function: ast.AST) -> Set[str]:
    """Functions defined (at any depth) inside ``function`` -- closures."""
    names: Set[str] = set()
    for node in ast.walk(function):
        if node is function:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
    return names


@register
class PureTask(Rule):
    code = "RPL003"
    name = "pure-task"
    contract = (
        "callables submitted to executor pools are module-level functions -- "
        "no lambdas, closures, or bound methods dragging engine state across "
        "process forks"
    )
    defaults = {
        "paths": ["src/repro/shard"],
        "submit_methods": ["submit"],
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        config = self.config(ctx)
        if not ctx.path_selected(config.get("paths", [])):
            return
        submit_methods = set(config.get("submit_methods", ["submit"]))
        module_names = _module_level_names(ctx.tree)

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr in submit_methods
            ):
                continue
            if not node.args:
                continue
            task = node.args[0]
            # contextvars shim: submit(context.run, real_task, ...)
            if (
                isinstance(task, ast.Attribute)
                and task.attr == "run"
                and len(node.args) >= 2
            ):
                task = node.args[1]
            problem = self._judge(ctx, node, task, module_names)
            if problem is not None:
                yield ctx.finding(task, self.code, problem)

    def _judge(
        self,
        ctx: FileContext,
        submit_call: ast.Call,
        task: ast.expr,
        module_names: Set[str],
    ) -> Optional[str]:
        """Return the violation message for ``task``, or None if pure."""
        # functools.partial(fn, ...): judge fn itself.
        if isinstance(task, ast.Call):
            callee = task.func
            is_partial = (isinstance(callee, ast.Name) and callee.id == "partial") or (
                isinstance(callee, ast.Attribute) and callee.attr == "partial"
            )
            if is_partial and task.args:
                return self._judge(ctx, submit_call, task.args[0], module_names)
            return (
                "submitted callable is a call expression -- submit a "
                "module-level function (optionally via functools.partial)"
            )
        if isinstance(task, ast.Lambda):
            return (
                "lambda submitted to an executor -- lambdas do not pickle and "
                "close over local state; hoist to a module-level function"
            )
        if isinstance(task, ast.Attribute):
            owner = task.value
            owner_label = (
                owner.id if isinstance(owner, ast.Name) else ast.unparse(owner)
            )
            if isinstance(owner, ast.Name) and owner.id in module_names:
                return None  # imported-module function, e.g. pickle.dumps
            return (
                f"bound callable {owner_label}.{task.attr} submitted to an "
                "executor -- it closes over instance state; submit a "
                "module-level function taking explicit arguments"
            )
        if isinstance(task, ast.Name):
            enclosing = ctx.enclosing_function(submit_call)
            if (
                enclosing is not None
                and task.id in _nested_def_names(enclosing)
            ):
                return (
                    f"nested function {task.id!r} submitted to an executor -- "
                    "closures capture enclosing-frame state; hoist it to "
                    "module level"
                )
            return None  # module-level def, import, or pass-through parameter
        return None
