"""RPL005 error-envelope.

**Contract.**  The serving layer (PR 7/9) promises that every failure a
client sees is a *structured* error envelope -- status, code, message,
trace id -- never a swallowed exception that silently degrades results.  A
bare ``except:`` or ``except Exception:`` in a handler is only acceptable
when the handler either re-raises (letting an outer layer build the
envelope) or explicitly converts the exception into the envelope / future
error channel.

**Rule.**  In the configured paths, flag any ``except`` clause catching
nothing-specific (bare), ``Exception`` or ``BaseException`` whose body
neither contains a ``raise`` nor calls one of the sanctioned converters
(``error_envelope``, ``envelope``, ``_resolve``, ``set_exception`` by
default).  Narrow excepts (``except KeyError:``) are not the rule's
business -- they are considered deliberate.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.framework import FileContext, Finding, Rule, register

_BROAD = {"Exception", "BaseException"}
_DEFAULT_CONVERTERS = ["error_envelope", "envelope", "_resolve", "set_exception"]


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        if isinstance(node, ast.Name) and node.id in _BROAD:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _BROAD:
            return True
    return False


def _handles_properly(handler: ast.ExceptHandler, converters: Set[str]) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in converters:
                return True
    return False


@register
class ErrorEnvelope(Rule):
    code = "RPL005"
    name = "error-envelope"
    contract = (
        "serve/ handlers never swallow broad exceptions -- every "
        "except/except Exception re-raises or converts to a structured "
        "error envelope"
    )
    defaults = {
        "paths": ["src/repro/serve"],
        "converters": list(_DEFAULT_CONVERTERS),
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        config = self.config(ctx)
        if not ctx.path_selected(config.get("paths", [])):
            return
        converters: Set[str] = set(config.get("converters", _DEFAULT_CONVERTERS))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _handles_properly(node, converters):
                continue
            caught = "bare except" if node.type is None else (
                f"except {ast.unparse(node.type)}"
            )
            yield ctx.finding(
                node,
                self.code,
                f"{caught} swallows the error -- re-raise or convert it to "
                "a structured envelope "
                f"({', '.join(sorted(converters))})",
            )
