"""RPL002 sanctioned-clock.

**Contract.**  All timing flows through ``repro.obs.clock.perf_clock``.  The
tracing/metrics layer (PR 6) patches that single seam in tests to make span
durations deterministic; a stray ``time.perf_counter()`` call elsewhere
produces timestamps the instrumentation can neither see nor fake.  CI used to
enforce this with a ``grep`` ban, which (a) could not tell a call from a
docstring mention and (b) knew nothing about import aliasing
(``import time as _t``).  This rule replaces the grep with scope-aware AST
analysis: it tracks every alias of the ``time`` module and every
``from time import ...`` binding, and flags any use of the banned wall/perf
clock functions outside the allow-listed clock module.

``time.sleep``, ``time.strftime`` etc. remain fine -- only the functions that
*measure* time are sanctioned through the clock seam.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.framework import FileContext, Finding, Rule, register

_DEFAULT_BANNED = [
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "time",
    "time_ns",
]


@register
class SanctionedClock(Rule):
    code = "RPL002"
    name = "sanctioned-clock"
    contract = (
        "only repro.obs.clock.perf_clock touches time.perf_counter / "
        "time.monotonic / time.time -- one patchable seam for all timing"
    )
    defaults = {
        "allow": ["src/repro/obs/clock.py"],
        "banned": list(_DEFAULT_BANNED),
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        config = self.config(ctx)
        if ctx.path_allowed(config.get("allow", [])):
            return
        banned: Set[str] = set(config.get("banned", _DEFAULT_BANNED))

        time_aliases: Set[str] = set()
        from_bindings: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif (
                isinstance(node, ast.ImportFrom)
                and node.module == "time"
                and node.level == 0
            ):
                for alias in node.names:
                    if alias.name in banned:
                        from_bindings.add(alias.asname or alias.name)
                        yield ctx.finding(
                            node,
                            self.code,
                            f"from time import {alias.name} bypasses the "
                            "sanctioned clock -- use "
                            "repro.obs.clock.perf_clock",
                        )

        if not time_aliases and not from_bindings:
            return

        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in banned
                and isinstance(node.value, ast.Name)
                and node.value.id in time_aliases
            ):
                yield ctx.finding(
                    node,
                    self.code,
                    f"{node.value.id}.{node.attr} outside repro.obs.clock -- "
                    "use repro.obs.clock.perf_clock so tests and tracing can "
                    "patch a single timing seam",
                )
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in from_bindings
            ):
                yield ctx.finding(
                    node,
                    self.code,
                    f"{node.id} (imported from time) outside repro.obs.clock "
                    "-- use repro.obs.clock.perf_clock",
                )
