"""RPL004 lock-discipline.

**Contract.**  Shared mutable caches are declared with a ``# guarded-by:``
comment on their initializing assignment::

    self._states = {}  # guarded-by: _lock
    _ops = {}          # guarded-by: _ops_lock   (module level)

Every other read or write of a declared attribute must sit lexically inside
``with <owner>.<lock>:`` (or ``with <lock>:`` for module-level names).  This
is the engine-cache race class PR 7 closed: an unlocked ``len(self._states)``
or iteration over ``self._counters`` can observe a dict mid-resize from
another thread and raise ``RuntimeError`` -- or worse, return a value no
serialized execution could produce.

Helpers that are *always called with the lock held* declare that instead of
re-acquiring::

    def _state_locked(self, key):  # requires-lock: _lock

The marker may sit on the ``def`` line or on any line before the first body
statement.  Intentionally lock-free fast paths (e.g. GIL-atomic ``dict.get``
reads) carry an explicit ``# repro-analysis: disable=RPL004 reason=...``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.analysis.framework import FileContext, Finding, Rule, register

_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
_REQUIRES_RE = re.compile(r"#\s*requires-lock:\s*([A-Za-z_][A-Za-z0-9_]*)")


def _with_locks(ctx: FileContext, node: ast.AST) -> Set[str]:
    """Lock names of every ``with`` statement lexically enclosing ``node``.

    A context expression counts as a lock named ``L`` when it unparses to
    ``L`` or ``<anything>.L`` -- covering ``with self._lock:``,
    ``with cls._lock:`` and module-level ``with _ops_lock:``.
    """
    held: Set[str] = set()
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                expr = ast.unparse(item.context_expr)
                held.add(expr.rsplit(".", 1)[-1])
    return held


def _required_locks(ctx: FileContext, node: ast.AST) -> Set[str]:
    """Locks declared held via ``# requires-lock:`` on enclosing functions."""
    held: Set[str] = set()
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            first_body_line = ancestor.body[0].lineno if ancestor.body else (
                ancestor.lineno + 1
            )
            for lineno in range(ancestor.lineno, first_body_line):
                for match in _REQUIRES_RE.finditer(ctx.line_text(lineno)):
                    held.add(match.group(1))
    return held


@register
class LockDiscipline(Rule):
    code = "RPL004"
    name = "lock-discipline"
    contract = (
        "attributes declared '# guarded-by: <lock>' are only touched inside "
        "'with <lock>:' (or in helpers marked '# requires-lock: <lock>')"
    )
    defaults: dict = {}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        instance_guards, module_guards, decl_lines = self._declarations(ctx)
        if not instance_guards and not module_guards:
            return

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                if not (
                    isinstance(node.value, ast.Name) and node.value.id == "self"
                ):
                    continue
                lock = instance_guards.get(node.attr)
                if lock is None or node.lineno in decl_lines:
                    continue
                if self._lock_held(ctx, node, lock):
                    continue
                yield ctx.finding(
                    node,
                    self.code,
                    f"self.{node.attr} is guarded by {lock!r} but accessed "
                    f"outside 'with self.{lock}' -- take the lock or mark "
                    f"the helper '# requires-lock: {lock}'",
                )
            elif isinstance(node, ast.Name):
                lock = module_guards.get(node.id)
                if lock is None or node.lineno in decl_lines:
                    continue
                if self._lock_held(ctx, node, lock):
                    continue
                yield ctx.finding(
                    node,
                    self.code,
                    f"{node.id} is guarded by {lock!r} but accessed outside "
                    f"'with {lock}'",
                )

    def _lock_held(self, ctx: FileContext, node: ast.AST, lock: str) -> bool:
        if lock in _with_locks(ctx, node):
            return True
        return lock in _required_locks(ctx, node)

    def _declarations(
        self, ctx: FileContext
    ) -> Tuple[Dict[str, str], Dict[str, str], Set[int]]:
        """Collect guarded-by declarations.

        Returns ``(instance_guards, module_guards, declaration_lines)`` where
        the guard maps go from attribute/name to lock name.  Declaration
        lines are exempt from the access check (the initializing write).
        """
        guarded_lines: Dict[int, str] = {}
        for number, text in enumerate(ctx.lines, start=1):
            match = _GUARDED_RE.search(text)
            if match is not None:
                guarded_lines[number] = match.group(1)

        instance_guards: Dict[str, str] = {}
        module_guards: Dict[str, str] = {}
        decl_lines: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            lock = guarded_lines.get(node.lineno)
            if lock is None:
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    instance_guards[target.attr] = lock
                    decl_lines.add(node.lineno)
                elif isinstance(target, ast.Name) and self._is_module_level(
                    ctx, node
                ):
                    module_guards[target.id] = lock
                    decl_lines.add(node.lineno)
        return instance_guards, module_guards, decl_lines

    @staticmethod
    def _is_module_level(ctx: FileContext, node: ast.AST) -> bool:
        parent: Optional[ast.AST] = ctx.parent(node)
        return isinstance(parent, ast.Module)
