"""Rule modules -- importing this package registers every rule.

Each module defines one rule class decorated with
:func:`repro.analysis.framework.register`; the import side effect populates
:data:`repro.analysis.framework.RULES`.
"""

from repro.analysis.rules import (  # noqa: F401  (imported for registration)
    rpl001_accumulation,
    rpl002_clock,
    rpl003_puretask,
    rpl004_locks,
    rpl005_envelope,
)

__all__ = [
    "rpl001_accumulation",
    "rpl002_clock",
    "rpl003_puretask",
    "rpl004_locks",
    "rpl005_envelope",
]
