"""RPL001 deterministic-accumulation.

**Contract.**  Floating-point accumulation must iterate in a canonical order.
The headline guarantee of this codebase -- sharded, vectorized and served
executions are bit-identical to the plain engine -- holds because every
float sum is performed over the same operands *in the same order* on every
path.  Iterating a ``dict`` or ``set`` while accumulating floats ties the
result to insertion/hash order: deterministic for one construction path, but
silently different between two paths that build the container differently.
That is precisely the bug class PR 5 fixed in the GES filters (unsorted word
sums flipped candidates at min-hash lattice thresholds like 0.525).

**Rule.**  Inside the configured layers (``core/``, ``shard/``,
``declarative/``), flag:

* ``target += value`` with float evidence, inside a ``for`` loop over an
  unordered iterable -- a dict view (``.items()`` / ``.values()`` /
  ``.keys()``), a ``set(...)`` call, a set literal/comprehension, or a name
  assigned from one of those;
* ``sum(...)`` over a generator/comprehension whose iterable is unordered.

Wrapping the iterable in ``sorted(...)`` -- directly or via a local alias
(``ordered = sorted(words)``) -- makes the order canonical and silences the
rule.  Accumulations in nested ``def``s are attributed to their own loops,
not the enclosing one.  Integral accumulation is exact in any order: disable
with ``# repro-analysis: disable=RPL001 reason=...`` where the operands are
provably integers, or where a *different* canonical order is the contract
(the HMM kernels accumulate in query first-occurrence order).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro.analysis.framework import FileContext, Finding, Rule, register

_ORDERED = "ordered"
_UNORDERED = "unordered"

_DICT_VIEW_METHODS = {"items", "values", "keys"}
_UNORDERED_CALLS = {"set", "frozenset"}
_ORDERING_CALLS = {"sorted", "list", "tuple", "enumerate", "range", "zip"}


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


class _OrderClassifier:
    """Classify iterable expressions, tracking sorted()-aliasing of locals."""

    def __init__(self, function: ast.AST):
        #: name -> _ORDERED/_UNORDERED from simple assignments in this scope
        #: (last assignment wins; good enough for the straight-line aliasing
        #: the codebase uses: ``ordered = sorted(words)``).
        self.aliases: Dict[str, str] = {}
        stack: List[ast.AST] = list(getattr(function, "body", []))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # nested scopes classify their own aliases
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    order = self.classify(node.value, resolve_names=False)
                    if order is not None:
                        self.aliases[target.id] = order
            stack.extend(ast.iter_child_nodes(node))

    def classify(
        self, node: ast.expr, resolve_names: bool = True
    ) -> Optional[str]:
        """``_ORDERED`` / ``_UNORDERED`` / ``None`` (unknown)."""
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in _UNORDERED_CALLS:
                return _UNORDERED
            if name in _ORDERING_CALLS:
                return _ORDERED
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _DICT_VIEW_METHODS
            ):
                return _UNORDERED
            return None
        if isinstance(node, (ast.Set, ast.SetComp)):
            return _UNORDERED
        if isinstance(node, (ast.List, ast.ListComp, ast.Tuple, ast.GeneratorExp)):
            return _ORDERED
        if resolve_names and isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        return None


def _contains_float_constant(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Constant) and isinstance(child.value, float):
            return True
        if isinstance(child, ast.BinOp) and isinstance(child.op, ast.Div):
            return True
        if (
            isinstance(child, ast.Attribute)
            and isinstance(child.value, ast.Name)
            and child.value.id == "math"
        ):
            return True
    return False


def _float_initialized_names(function: ast.AST) -> set:
    """Names assigned a float constant anywhere in the function body."""
    names = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Assign):
            if isinstance(node.value, ast.Constant) and isinstance(
                node.value.value, float
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, float)
            and isinstance(node.target, ast.Name)
        ):
            names.add(node.target.id)
    return names


def _loop_body_nodes(loop: ast.For) -> Iterator[ast.AST]:
    """Walk the loop body, skipping nested function/lambda scopes (their
    accumulations run per *call*, not per iteration of this loop)."""
    stack: List[ast.AST] = list(loop.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class DeterministicAccumulation(Rule):
    code = "RPL001"
    name = "deterministic-accumulation"
    contract = (
        "float accumulation iterates in canonical (sorted) order -- never "
        "raw dict/set order -- so every execution path sums identically"
    )
    defaults = {
        "paths": ["src/repro/core", "src/repro/shard", "src/repro/declarative"],
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        config = self.config(ctx)
        if not ctx.path_selected(config.get("paths", [])):
            return
        classifiers: Dict[ast.AST, _OrderClassifier] = {}

        def classifier_for(node: ast.AST) -> _OrderClassifier:
            function = ctx.enclosing_function(node) or ctx.tree
            cached = classifiers.get(function)
            if cached is None:
                cached = _OrderClassifier(function)
                classifiers[function] = cached
            return cached

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                yield from self._check_loop(ctx, node, classifier_for(node))
            elif isinstance(node, ast.Call) and _call_name(node) == "sum":
                yield from self._check_sum(ctx, node, classifier_for(node))

    def _check_loop(
        self, ctx: FileContext, loop: ast.For, classifier: _OrderClassifier
    ) -> Iterator[Finding]:
        if classifier.classify(loop.iter) != _UNORDERED:
            return
        function = ctx.enclosing_function(loop) or ctx.tree
        float_names = _float_initialized_names(function)
        for node in _loop_body_nodes(loop):
            if not isinstance(node, ast.AugAssign) or not isinstance(
                node.op, ast.Add
            ):
                continue
            target = node.target
            floaty = _contains_float_constant(node.value)
            if isinstance(target, ast.Name):
                floaty = floaty or target.id in float_names
                label = target.id
            elif isinstance(target, ast.Subscript):
                label = ast.unparse(target)
            else:
                label = ast.unparse(target)
            if floaty:
                yield ctx.finding(
                    node,
                    self.code,
                    f"float accumulation into {label!r} iterates an unordered "
                    "dict/set -- wrap the iterable in sorted(...) so every "
                    "execution path sums in the same order",
                )

    def _check_sum(
        self, ctx: FileContext, call: ast.Call, classifier: _OrderClassifier
    ) -> Iterator[Finding]:
        if not call.args:
            return
        argument = call.args[0]
        iterables: List[ast.expr] = []
        if isinstance(argument, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            iterables = [generator.iter for generator in argument.generators]
        else:
            iterables = [argument]
        for iterable in iterables:
            if classifier.classify(iterable) == _UNORDERED:
                yield ctx.finding(
                    call,
                    self.code,
                    "sum() over an unordered dict/set iterable -- sort the "
                    "iterable (or disable with a reason if the operands are "
                    "provably integral)",
                )
                return
