"""Configuration for the invariant checker: ``[tool.repro-analysis]``.

The checker is configured from ``pyproject.toml``::

    [tool.repro-analysis]
    paths = ["src", "benchmarks", "examples"]
    baseline = ".repro-analysis-baseline"

    [tool.repro-analysis.rpl001]
    paths = ["src/repro/core", "src/repro/shard", "src/repro/declarative"]

Per-rule tables are keyed by the lower-cased rule code and merged over the
rule's built-in defaults.  ``tomllib`` is used when available (3.11+); on
older interpreters a minimal built-in parser handles the subset of TOML this
section uses (string/bool/int/float scalars and single-line string arrays),
so the checker needs no third-party dependency anywhere in the CI matrix.
"""

from __future__ import annotations

import contextlib
from pathlib import Path
from typing import Dict, List, Optional

try:  # Python 3.11+
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised on the 3.10 CI leg
    _toml = None

__all__ = ["AnalysisConfig", "load_config", "parse_minimal_toml"]

SECTION = "repro-analysis"


class AnalysisConfig:
    """Resolved checker configuration (global paths/baseline + rule tables)."""

    def __init__(self, table: Optional[dict] = None):
        table = dict(table or {})
        self.paths: List[str] = list(table.pop("paths", []))
        self.baseline: Optional[str] = table.pop("baseline", None)
        #: Remaining sub-tables are per-rule configs keyed by lower-cased code.
        self.rules: Dict[str, dict] = {
            key: value for key, value in table.items() if isinstance(value, dict)
        }


def load_config(root: Optional[Path] = None) -> AnalysisConfig:
    """Read ``[tool.repro-analysis]`` from ``pyproject.toml`` under ``root``."""
    pyproject = (root or Path.cwd()) / "pyproject.toml"
    if not pyproject.is_file():
        return AnalysisConfig()
    text = pyproject.read_text(encoding="utf-8")
    if _toml is not None:
        data = _toml.loads(text)
    else:  # pragma: no cover - exercised on the 3.10 CI leg
        data = parse_minimal_toml(text)
    table = data.get("tool", {}).get(SECTION, {})
    return AnalysisConfig(table)


# -- minimal TOML subset parser ---------------------------------------------------


def _parse_scalar(raw: str):
    raw = raw.strip()
    if raw.startswith('"') and raw.endswith('"') and len(raw) >= 2:
        return raw[1:-1]
    if raw.startswith("'") and raw.endswith("'") and len(raw) >= 2:
        return raw[1:-1]
    if raw == "true":
        return True
    if raw == "false":
        return False
    with contextlib.suppress(ValueError):
        return int(raw)
    try:
        return float(raw)
    except ValueError:
        return raw


def _split_array_items(raw: str) -> List[str]:
    """Split a single-line array body on commas outside quotes."""
    items: List[str] = []
    current = []
    quote: Optional[str] = None
    for char in raw:
        if quote is not None:
            current.append(char)
            if char == quote:
                quote = None
        elif char in "\"'":
            quote = char
            current.append(char)
        elif char == ",":
            items.append("".join(current))
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        items.append(tail)
    return [item.strip() for item in items if item.strip()]


def _strip_comment(line: str) -> str:
    """Drop a trailing ``#`` comment (quote-aware)."""
    quote: Optional[str] = None
    for index, char in enumerate(line):
        if quote is not None:
            if char == quote:
                quote = None
        elif char in "\"'":
            quote = char
        elif char == "#":
            return line[:index]
    return line


def parse_minimal_toml(text: str) -> dict:
    """Parse the TOML subset the ``[tool.repro-analysis]`` section uses.

    Handles dotted section headers, ``key = scalar`` and single-line arrays.
    Lines it cannot interpret (multi-line arrays, inline tables in *other*
    sections of pyproject) are skipped -- only well-formed entries land in
    the returned nested dict, which is all the checker reads.
    """
    root: dict = {}
    current = root
    for raw_line in text.splitlines():
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            header = line[1:-1].strip()
            if header.startswith("[") or not header:
                continue  # array-of-tables: not used by our section
            current = root
            for part in header.split("."):
                part = part.strip().strip('"').strip("'")
                current = current.setdefault(part, {})
                if not isinstance(current, dict):  # scalar/section clash
                    current = {}
                    break
            continue
        if "=" not in line:
            continue
        key, _, raw_value = line.partition("=")
        key = key.strip().strip('"').strip("'")
        raw_value = raw_value.strip()
        if raw_value.startswith("[") and raw_value.endswith("]"):
            current[key] = [
                _parse_scalar(item) for item in _split_array_items(raw_value[1:-1])
            ]
        elif raw_value.startswith("{") or raw_value.startswith("["):
            continue  # inline table / multi-line array: not our subset
        elif raw_value:
            current[key] = _parse_scalar(raw_value)
    return root
