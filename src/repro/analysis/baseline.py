"""Baseline handling: grandfathered findings that may only ever shrink.

The baseline file holds one line per grandfathered finding::

    <fingerprint> <rule> <path> <scope>

Fingerprints hash ``(path, rule, scope, snippet)`` -- stable across
line-number drift, invalidated when the offending code changes.  Semantics:

* findings **in** the baseline are suppressed (counted as grandfathered);
* findings **not in** the baseline fail the run (new violations never pass);
* baseline entries matching **no** finding are *stale* and fail the run until
  removed (``--update-baseline`` deletes them) -- the baseline shrinks
  monotonically, it never quietly absorbs regressions.

``--write-baseline`` (initial adoption only) records every current finding.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Sequence

from repro.analysis.framework import Finding

__all__ = ["load_baseline", "write_baseline", "format_entry"]


def format_entry(finding: Finding) -> str:
    scope = finding.scope or "<module>"
    return f"{finding.fingerprint()} {finding.rule} {finding.path} {scope}"


def load_baseline(path: Path) -> Dict[str, str]:
    """fingerprint -> original entry line (empty dict for a missing file)."""
    if not path.is_file():
        return {}
    entries: Dict[str, str] = {}
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fingerprint = line.split(None, 1)[0]
        entries[fingerprint] = line
    return entries


def write_baseline(path: Path, findings: Sequence[Finding]) -> int:
    """Write entries for ``findings`` (sorted, deduplicated); returns count."""
    lines = sorted({format_entry(finding) for finding in findings})
    header = (
        "# repro-analysis baseline: grandfathered findings, one per line.\n"
        "# This file only ever shrinks -- fix a finding, delete its line\n"
        "# (python -m repro.analysis --update-baseline does it for you).\n"
    )
    body = "\n".join(lines)
    path.write_text(header + body + ("\n" if body else ""), encoding="utf-8")
    return len(lines)
