"""repro.analysis -- invariant-aware static analysis for this codebase.

An AST-based checker (stdlib only) enforcing the contracts the dynamic test
suites assume: sorted-order float accumulation (RPL001), the single
sanctioned clock (RPL002), the pure-task executor contract (RPL003), lock
discipline on shared caches (RPL004) and structured error envelopes in the
serving layer (RPL005).  Run it as ``python -m repro.analysis [paths...]``;
configuration lives under ``[tool.repro-analysis]`` in pyproject.toml, and
grandfathered findings live in a shrink-only baseline file.

See docs/invariants.md for the catalog of rules and the contracts each one
protects.
"""

from repro.analysis import rules  # noqa: F401  (registers the rules)
from repro.analysis.baseline import format_entry, load_baseline, write_baseline
from repro.analysis.config import AnalysisConfig, load_config, parse_minimal_toml
from repro.analysis.framework import (
    RULES,
    FileContext,
    Finding,
    Rule,
    check_file,
    check_paths,
    check_source,
    iter_python_files,
    parse_suppressions,
    register,
    split_by_baseline,
)

__all__ = [
    "AnalysisConfig",
    "FileContext",
    "Finding",
    "RULES",
    "Rule",
    "check_file",
    "check_paths",
    "check_source",
    "format_entry",
    "iter_python_files",
    "load_baseline",
    "load_config",
    "parse_minimal_toml",
    "parse_suppressions",
    "register",
    "split_by_baseline",
    "write_baseline",
]
