"""Synthetic clean-source corpora.

The paper uses two clean datasets (Table 5.1):

* *Company Names* -- 2139 tuples, average length 21.03 characters, 2.92
  words per tuple.
* *DBLP Titles* -- 10425 tuples, average length 33.55 characters, 4.53 words
  per tuple.

Neither raw dataset ships with the paper, so we synthesize corpora with the
same flavour and very similar statistics: company names are composed from
surname/place stems plus an industry word and a legal-form suffix; titles are
composed from research topic phrases.  Generation is deterministic given the
seed, and duplicates are removed so that every clean string is unique (a
requirement for unambiguous ground-truth clusters).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List

__all__ = [
    "company_names",
    "dblp_titles",
    "clean_source",
    "source_statistics",
    "SourceStatistics",
    "COMPANY_SOURCE_SIZE",
    "TITLES_SOURCE_SIZE",
]

COMPANY_SOURCE_SIZE = 2139
TITLES_SOURCE_SIZE = 10425

_NAME_STEMS = [
    "Morgan", "Stanley", "Goldman", "Harris", "Walker", "Hudson", "Sterling",
    "Pacific", "Atlantic", "Northern", "Southern", "Western", "Eastern",
    "Global", "National", "United", "Allied", "Consolidated", "Continental",
    "Pioneer", "Summit", "Crescent", "Beacon", "Cascade", "Granite", "Keystone",
    "Liberty", "Meridian", "Orion", "Phoenix", "Quantum", "Regal", "Silicon",
    "Titan", "Vanguard", "Zenith", "Apex", "Borealis", "Cobalt", "Dorado",
    "Everest", "Falcon", "Garnet", "Horizon", "Ivory", "Juniper", "Kodiak",
    "Lakeside", "Monarch", "Nimbus", "Oakwood", "Pinnacle", "Redwood",
    "Sapphire", "Thornton", "Underwood", "Vermont", "Whitfield", "Yorkshire",
    "Ashford", "Bradford", "Carlisle", "Dunmore", "Ellsworth", "Fairbanks",
    "Glenwood", "Hartford", "Ironside", "Jefferson", "Kensington", "Lancaster",
    "Madison", "Norwood", "Oxford", "Preston", "Quincy", "Radcliffe",
    "Somerset", "Trenton", "Uxbridge", "Valencia", "Wexford", "Beijing",
    "Shanghai", "Tokyo", "Osaka", "Mumbai", "Delhi", "Toronto", "Montreal",
    "Geneva", "Zurich", "Vienna", "Lisbon", "Dublin", "Helsinki", "Oslo",
]

_INDUSTRY_WORDS = [
    "Financial", "Capital", "Securities", "Holdings", "Trust", "Partners",
    "Industries", "Systems", "Technologies", "Software", "Networks", "Data",
    "Energy", "Petroleum", "Mining", "Steel", "Motors", "Airlines", "Foods",
    "Pharmaceuticals", "Biotech", "Chemical", "Textiles", "Logistics",
    "Shipping", "Insurance", "Realty", "Properties", "Media", "Communications",
    "Electric", "Instruments", "Semiconductors", "Aerospace", "Dynamics",
    "Laboratories", "Research", "Consulting", "Services", "Solutions",
    "Hotel", "Resorts", "Brewing", "Packaging", "Printing", "Publishing",
]

_LEGAL_FORMS = [
    "Inc.", "Incorporated", "Corp.", "Corporation", "Ltd.", "Limited",
    "LLC", "Co.", "Company", "Group", "Intl.", "International", "Bros.",
    "Brothers", "& Sons", "Assoc.", "Associates",
]

_TITLE_OPENERS = [
    "Efficient", "Scalable", "Adaptive", "Approximate", "Declarative",
    "Incremental", "Distributed", "Parallel", "Robust", "Optimal",
    "Probabilistic", "Dynamic", "Online", "Secure", "Flexible", "Fast",
    "Unified", "Hybrid", "Interactive", "Automatic", "Learning", "Streaming",
]

_TITLE_SUBJECTS = [
    "query processing", "similarity joins", "duplicate detection",
    "data cleaning", "record linkage", "string matching", "index structures",
    "view maintenance", "schema matching", "data integration",
    "transaction management", "concurrency control", "query optimization",
    "selectivity estimation", "top-k retrieval", "keyword search",
    "information extraction", "entity resolution", "graph mining",
    "stream processing", "spatial indexing", "text classification",
    "sensor networks", "workflow management", "provenance tracking",
    "privacy preservation", "access control", "load shedding",
    "cache management", "skyline computation", "web services",
    "xml publishing", "ranked retrieval", "data warehousing",
    "cardinality estimation", "join ordering", "materialized views",
    "nearest neighbor search", "outlier detection", "pattern mining",
]

_TITLE_CONNECTIVES = [
    "for", "over", "in", "with", "using", "under", "beyond", "towards",
]

_TITLE_CONTEXTS = [
    "relational databases", "large data warehouses", "peer-to-peer systems",
    "distributed environments", "sensor networks", "the web", "main memory",
    "parallel architectures", "column stores", "data streams",
    "uncertain data", "probabilistic databases", "moving objects",
    "high-dimensional spaces", "social networks", "scientific workflows",
    "multi-tenant systems", "federated systems", "dynamic workloads",
    "heterogeneous sources", "semistructured data", "mobile devices",
]


@dataclass(frozen=True)
class SourceStatistics:
    """Summary statistics of a clean corpus (compare against Table 5.1)."""

    num_tuples: int
    average_length: float
    average_words: float


def company_names(count: int = COMPANY_SOURCE_SIZE, seed: int = 7) -> List[str]:
    """Generate ``count`` distinct company-name-like strings."""
    rng = random.Random(seed)
    names: List[str] = []
    seen = set()
    while len(names) < count:
        parts: List[str] = [rng.choice(_NAME_STEMS)]
        if rng.random() < 0.45:
            parts.append(rng.choice(_NAME_STEMS))
        if rng.random() < 0.72:
            parts.append(rng.choice(_INDUSTRY_WORDS))
        parts.append(rng.choice(_LEGAL_FORMS))
        name = " ".join(parts)
        if name not in seen:
            seen.add(name)
            names.append(name)
    return names


def dblp_titles(count: int = TITLES_SOURCE_SIZE, seed: int = 11) -> List[str]:
    """Generate ``count`` distinct publication-title-like strings."""
    rng = random.Random(seed)
    titles: List[str] = []
    seen = set()
    while len(titles) < count:
        opener = rng.choice(_TITLE_OPENERS)
        subject = rng.choice(_TITLE_SUBJECTS)
        parts = [opener, subject]
        if rng.random() < 0.8:
            parts.append(rng.choice(_TITLE_CONNECTIVES))
            parts.append(rng.choice(_TITLE_CONTEXTS))
        if rng.random() < 0.2:
            parts.insert(0, rng.choice(["On", "Revisiting", "A Study of", "Benchmarking"]))
        title = " ".join(parts)
        title = title[0].upper() + title[1:]
        if title not in seen:
            seen.add(title)
            titles.append(title)
    return titles


_SOURCES: Dict[str, Callable[[int, int], List[str]]] = {
    "company": company_names,
    "titles": dblp_titles,
}


def clean_source(name: str, count: int | None = None, seed: int | None = None) -> List[str]:
    """Return a named clean corpus (``'company'`` or ``'titles'``)."""
    try:
        factory = _SOURCES[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown source {name!r}; available: {sorted(_SOURCES)}"
        ) from exc
    defaults = {
        "company": (COMPANY_SOURCE_SIZE, 7),
        "titles": (TITLES_SOURCE_SIZE, 11),
    }[name]
    return factory(count if count is not None else defaults[0],
                   seed if seed is not None else defaults[1])


def source_statistics(strings: List[str]) -> SourceStatistics:
    """Compute the Table 5.1 statistics for a corpus."""
    if not strings:
        return SourceStatistics(num_tuples=0, average_length=0.0, average_words=0.0)
    total_length = sum(len(s) for s in strings)
    total_words = sum(len(s.split()) for s in strings)
    return SourceStatistics(
        num_tuples=len(strings),
        average_length=total_length / len(strings),
        average_words=total_words / len(strings),
    )
