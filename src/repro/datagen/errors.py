"""Error injectors used by the benchmark data generator.

Three error types match section 5.1 of the paper:

* :class:`EditErrorInjector` -- character-level edit errors (insertion,
  deletion, replacement, adjacent swap) applied to a given percentage of the
  character positions of a string ("extent of error").
* :class:`TokenSwapInjector` -- swaps a given percentage of adjacent word
  pairs ("token swap error").
* :class:`AbbreviationError` -- domain-specific abbreviation substitution for
  company names (``Inc.`` <-> ``Incorporated`` etc.).

Each injector exposes ``apply(text, rng)`` and is a pure function of its
arguments plus the supplied random generator, so dataset generation is fully
reproducible from a seed.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "EditErrorInjector",
    "TokenSwapInjector",
    "AbbreviationError",
    "DEFAULT_ABBREVIATIONS",
]

_ALPHABET = string.ascii_lowercase + string.ascii_uppercase

# Bidirectional long-form/short-form pairs for the company-names domain.
DEFAULT_ABBREVIATIONS: Tuple[Tuple[str, str], ...] = (
    ("Incorporated", "Inc."),
    ("Corporation", "Corp."),
    ("Limited", "Ltd."),
    ("Company", "Co."),
    ("International", "Intl."),
    ("Brothers", "Bros."),
    ("Associates", "Assoc."),
)


@dataclass(frozen=True)
class EditErrorInjector:
    """Inject character edit errors into a fraction of string positions.

    ``extent`` is the fraction (0..1) of character positions selected for an
    edit; each selected position receives one of insertion, deletion,
    replacement or adjacent-character swap, chosen uniformly.
    """

    extent: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.extent <= 1.0:
            raise ValueError("extent must be within [0, 1]")

    def apply(self, text: str, rng: random.Random) -> str:
        if not text or self.extent == 0.0:
            return text
        num_edits = max(1, round(len(text) * self.extent)) if self.extent > 0 else 0
        characters = list(text)
        for _ in range(num_edits):
            if not characters:
                break
            position = rng.randrange(len(characters))
            operation = rng.choice(("insert", "delete", "replace", "swap"))
            if operation == "insert":
                characters.insert(position, rng.choice(_ALPHABET))
            elif operation == "delete" and len(characters) > 1:
                del characters[position]
            elif operation == "replace":
                characters[position] = rng.choice(_ALPHABET)
            elif operation == "swap" and len(characters) > 1:
                other = position + 1 if position + 1 < len(characters) else position - 1
                characters[position], characters[other] = (
                    characters[other],
                    characters[position],
                )
        return "".join(characters)


@dataclass(frozen=True)
class TokenSwapInjector:
    """Swap a fraction of adjacent word pairs in the string.

    ``swap_rate`` is the fraction (0..1) of word pairs to swap; a string of
    ``n`` words has ``n // 2`` disjoint adjacent pairs available.
    """

    swap_rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.swap_rate <= 1.0:
            raise ValueError("swap_rate must be within [0, 1]")

    def apply(self, text: str, rng: random.Random) -> str:
        words = text.split()
        if len(words) < 2 or self.swap_rate == 0.0:
            return text
        available_pairs = len(words) // 2
        num_swaps = max(1, round(available_pairs * self.swap_rate))
        positions = list(range(len(words) - 1))
        rng.shuffle(positions)
        swapped = 0
        used: set[int] = set()
        for position in positions:
            if swapped >= num_swaps:
                break
            if position in used or position + 1 in used:
                continue
            words[position], words[position + 1] = words[position + 1], words[position]
            used.update((position, position + 1))
            swapped += 1
        return " ".join(words)


@dataclass(frozen=True)
class AbbreviationError:
    """Replace long forms with abbreviations and vice versa.

    ``rate`` is the probability that an occurrence of either form of a known
    pair is replaced by the opposite form.
    """

    rate: float
    pairs: Tuple[Tuple[str, str], ...] = DEFAULT_ABBREVIATIONS

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")

    def _mapping(self) -> Dict[str, str]:
        mapping: Dict[str, str] = {}
        for long_form, short_form in self.pairs:
            mapping[long_form.lower()] = short_form
            mapping[short_form.lower()] = long_form
        return mapping

    def apply(self, text: str, rng: random.Random) -> str:
        if self.rate == 0.0:
            return text
        mapping = self._mapping()
        words = text.split()
        changed = False
        for index, word in enumerate(words):
            replacement = mapping.get(word.lower())
            if replacement is not None and rng.random() < self.rate:
                words[index] = replacement
                changed = True
        return " ".join(words) if changed else text
