"""Duplicate-count distributions for the dataset generator.

The generator (section 5.1) assigns each clean tuple a number of duplicates
drawn from a chosen distribution.  The paper mentions uniform, Zipfian and
Poisson distributions; all three are provided here.  Each distribution
produces per-cluster duplicate counts that sum (approximately, then exactly
after adjustment by the generator) to the requested dataset size.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List

__all__ = ["duplicate_counts", "DISTRIBUTIONS"]


def _uniform_counts(num_clusters: int, total: int, rng: random.Random) -> List[int]:
    """Spread ``total`` duplicates as evenly as possible over the clusters."""
    base = total // num_clusters
    remainder = total - base * num_clusters
    counts = [base] * num_clusters
    for index in rng.sample(range(num_clusters), remainder):
        counts[index] += 1
    return counts


def _zipf_counts(
    num_clusters: int, total: int, rng: random.Random, exponent: float = 1.0
) -> List[int]:
    """Zipfian duplicate counts: a few clusters get many duplicates."""
    weights = [1.0 / (rank ** exponent) for rank in range(1, num_clusters + 1)]
    rng.shuffle(weights)
    weight_sum = sum(weights)
    raw = [total * weight / weight_sum for weight in weights]
    counts = [max(1, int(value)) for value in raw]
    _adjust_to_total(counts, total, rng)
    return counts


def _poisson_counts(
    num_clusters: int, total: int, rng: random.Random
) -> List[int]:
    """Poisson-distributed duplicate counts with mean ``total / num_clusters``."""
    mean = max(total / num_clusters, 0.1)
    counts = [_poisson_sample(mean, rng) for _ in range(num_clusters)]
    counts = [max(1, value) for value in counts]
    _adjust_to_total(counts, total, rng)
    return counts


def _poisson_sample(mean: float, rng: random.Random) -> int:
    """Knuth's algorithm; adequate for the small means used here."""
    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def _adjust_to_total(counts: List[int], total: int, rng: random.Random) -> None:
    """Nudge counts so they sum exactly to ``total`` (keeping each >= 1)."""
    difference = total - sum(counts)
    indices = list(range(len(counts)))
    while difference != 0:
        index = rng.choice(indices)
        if difference > 0:
            counts[index] += 1
            difference -= 1
        elif counts[index] > 1:
            counts[index] -= 1
            difference += 1


DISTRIBUTIONS: Dict[str, Callable[[int, int, random.Random], List[int]]] = {
    "uniform": _uniform_counts,
    "zipf": _zipf_counts,
    "zipfian": _zipf_counts,
    "poisson": _poisson_counts,
}


def duplicate_counts(
    distribution: str, num_clusters: int, total: int, rng: random.Random
) -> List[int]:
    """Duplicate counts per cluster drawn from the named distribution.

    The counts always sum to ``total`` and every cluster gets at least one
    tuple (its "clean" representative counts toward the total).
    """
    if num_clusters <= 0:
        raise ValueError("num_clusters must be positive")
    if total < num_clusters:
        raise ValueError("total must be at least num_clusters (one tuple per cluster)")
    try:
        factory = DISTRIBUTIONS[distribution.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown distribution {distribution!r}; available: {sorted(set(DISTRIBUTIONS))}"
        ) from exc
    return factory(num_clusters, total, rng)
