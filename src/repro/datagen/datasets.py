"""Named dataset configurations from Table 5.3 of the paper.

The accuracy experiments use 8 company-name datasets (CU1..CU8) each with
5000 tuples generated from 500 clean records with uniform duplicate
distribution, classified into *dirty*, *medium* and *low* error classes, plus
5 single-error-type datasets (F1..F5).  The performance experiments use DBLP
title datasets of increasing size with a fixed medium error configuration
(section 5.5).

:data:`DATASET_CONFIGS` maps names to :class:`DatasetConfig`;
:func:`make_dataset` builds the corresponding :class:`GeneratedDataset`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.datagen.generator import (
    DatasetGenerator,
    GeneratedDataset,
    GeneratorParameters,
)
from repro.datagen.sources import clean_source

__all__ = [
    "DatasetConfig",
    "DATASET_CONFIGS",
    "ACCURACY_CLASSES",
    "make_dataset",
    "dataset_class",
    "scalability_config",
]

# Default accuracy-experiment sizing (paper section 5.1): 5000 tuples from 500
# clean records.  The sizes can be overridden in make_dataset for faster test
# runs; the error parameters are what define each dataset.
DEFAULT_ACCURACY_SIZE = 5000
DEFAULT_ACCURACY_CLEAN = 500


@dataclass(frozen=True)
class DatasetConfig:
    """One named benchmark dataset (a row of Table 5.3)."""

    name: str
    error_class: str                  # 'dirty', 'medium', 'low' or 'single-error'
    source: str                       # 'company' or 'titles'
    erroneous_fraction: float         # percentage of erroneous duplicates
    edit_extent: float                # errors in duplicates (percent of chars)
    token_swap_rate: float
    abbreviation_rate: float
    distribution: str = "uniform"

    def parameters(
        self,
        size: int = DEFAULT_ACCURACY_SIZE,
        num_clean: int = DEFAULT_ACCURACY_CLEAN,
        seed: int = 42,
    ) -> GeneratorParameters:
        return GeneratorParameters(
            size=size,
            num_clean=num_clean,
            distribution=self.distribution,
            erroneous_fraction=self.erroneous_fraction,
            edit_extent=self.edit_extent,
            token_swap_rate=self.token_swap_rate,
            abbreviation_rate=self.abbreviation_rate,
            seed=seed,
        )


def _cu(name: str, error_class: str, erroneous: float, edit: float) -> DatasetConfig:
    """CU datasets share token swap 20% and abbreviation 50% (Table 5.3)."""
    return DatasetConfig(
        name=name,
        error_class=error_class,
        source="company",
        erroneous_fraction=erroneous,
        edit_extent=edit,
        token_swap_rate=0.20,
        abbreviation_rate=0.50,
    )


def _f(name: str, erroneous: float, edit: float, swap: float, abbrev: float) -> DatasetConfig:
    return DatasetConfig(
        name=name,
        error_class="single-error",
        source="company",
        erroneous_fraction=erroneous,
        edit_extent=edit,
        token_swap_rate=swap,
        abbreviation_rate=abbrev,
    )


DATASET_CONFIGS: Dict[str, DatasetConfig] = {
    # Dirty / medium / low classes (Table 5.3).
    "CU1": _cu("CU1", "dirty", erroneous=0.90, edit=0.30),
    "CU2": _cu("CU2", "dirty", erroneous=0.50, edit=0.30),
    "CU3": _cu("CU3", "medium", erroneous=0.30, edit=0.30),
    "CU4": _cu("CU4", "medium", erroneous=0.10, edit=0.30),
    "CU5": _cu("CU5", "medium", erroneous=0.90, edit=0.10),
    "CU6": _cu("CU6", "medium", erroneous=0.50, edit=0.10),
    "CU7": _cu("CU7", "low", erroneous=0.30, edit=0.10),
    "CU8": _cu("CU8", "low", erroneous=0.10, edit=0.10),
    # Single-error-type datasets (Table 5.3, bottom rows).
    "F1": _f("F1", erroneous=0.50, edit=0.00, swap=0.00, abbrev=0.50),
    "F2": _f("F2", erroneous=0.50, edit=0.00, swap=0.20, abbrev=0.00),
    "F3": _f("F3", erroneous=0.50, edit=0.10, swap=0.00, abbrev=0.00),
    "F4": _f("F4", erroneous=0.50, edit=0.20, swap=0.00, abbrev=0.00),
    "F5": _f("F5", erroneous=0.50, edit=0.30, swap=0.00, abbrev=0.00),
}

ACCURACY_CLASSES: Dict[str, List[str]] = {
    "dirty": ["CU1", "CU2"],
    "medium": ["CU3", "CU4", "CU5", "CU6"],
    "low": ["CU7", "CU8"],
}


def dataset_class(name: str) -> str:
    """Error class ('dirty' / 'medium' / 'low' / 'single-error') of a dataset."""
    return DATASET_CONFIGS[name].error_class


def make_dataset(
    name: str,
    size: int = DEFAULT_ACCURACY_SIZE,
    num_clean: int = DEFAULT_ACCURACY_CLEAN,
    seed: int = 42,
    source_size: Optional[int] = None,
) -> GeneratedDataset:
    """Build the named benchmark dataset.

    ``size`` / ``num_clean`` default to the paper's 5000 / 500 but can be
    scaled down for quick experiments and tests; errors rates are fixed by the
    configuration.
    """
    try:
        config = DATASET_CONFIGS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_CONFIGS)}"
        ) from exc
    clean = clean_source(config.source, count=source_size)
    generator = DatasetGenerator(clean)
    return generator.generate(config.parameters(size=size, num_clean=num_clean, seed=seed))


def scalability_config(
    size: int,
    erroneous_fraction: float = 0.70,
    edit_extent: float = 0.20,
    token_swap_rate: float = 0.20,
    seed: int = 42,
) -> GeneratorParameters:
    """The DBLP-titles configuration of section 5.5 (performance experiments).

    70% erroneous duplicates, 20% extent of edit error, 20% token swap and no
    abbreviation error, with the number of clean tuples scaled as size / 10.
    """
    return GeneratorParameters(
        size=size,
        num_clean=max(1, size // 10),
        distribution="uniform",
        erroneous_fraction=erroneous_fraction,
        edit_extent=edit_extent,
        token_swap_rate=token_swap_rate,
        abbreviation_rate=0.0,
        seed=seed,
    )
