"""UIS-style benchmark data generation with controlled error injection.

The paper defines its own benchmark (section 5.1) by enhancing the UIS
database generator: clean source tuples are duplicated according to a chosen
distribution and errors are injected into a controlled fraction of the
duplicates.  This package re-implements that generator:

* :mod:`repro.datagen.sources` -- synthetic clean-source corpora standing in
  for the paper's proprietary company-names and DBLP-titles datasets, with
  matching corpus statistics.
* :mod:`repro.datagen.errors` -- the three error injectors (character edit
  errors, token swaps, domain abbreviation replacement).
* :mod:`repro.datagen.distributions` -- uniform / Zipfian / Poisson duplicate
  count distributions.
* :mod:`repro.datagen.generator` -- :class:`DatasetGenerator` which combines
  the above according to the parameters of Table 5.2 and keeps ground-truth
  cluster ids.
* :mod:`repro.datagen.datasets` -- the named dataset configurations of Table
  5.3 (CU1..CU8 and F1..F5) plus the scalability datasets of section 5.5.
"""

from repro.datagen.errors import (
    AbbreviationError,
    EditErrorInjector,
    TokenSwapInjector,
)
from repro.datagen.generator import (
    DatasetGenerator,
    GeneratedDataset,
    GeneratorParameters,
    Record,
)
from repro.datagen.sources import (
    company_names,
    clean_source,
    dblp_titles,
    source_statistics,
)
from repro.datagen.datasets import (
    DATASET_CONFIGS,
    DatasetConfig,
    dataset_class,
    make_dataset,
)

__all__ = [
    "EditErrorInjector",
    "TokenSwapInjector",
    "AbbreviationError",
    "DatasetGenerator",
    "GeneratorParameters",
    "GeneratedDataset",
    "Record",
    "company_names",
    "dblp_titles",
    "clean_source",
    "source_statistics",
    "DatasetConfig",
    "DATASET_CONFIGS",
    "make_dataset",
    "dataset_class",
]
