"""The dataset generator: clean tuples -> erroneous duplicates with ground truth.

:class:`DatasetGenerator` implements the enhanced UIS generator of section
5.1.  Given a list of clean strings and a :class:`GeneratorParameters` it
produces a :class:`GeneratedDataset`: a list of :class:`Record` (tuple id,
string, cluster id) where every record generated from the same clean tuple
carries the same cluster id — the ground truth used by the accuracy metrics.

Parameters mirror Table 5.2:

* ``size`` -- total number of generated tuples.
* ``num_clean`` -- number of clean tuples used to seed clusters.
* ``distribution`` -- duplicate distribution (uniform / zipf / poisson).
* ``erroneous_fraction`` -- fraction of duplicates that receive errors.
* ``edit_extent`` -- percentage of characters edited in an erroneous tuple.
* ``token_swap_rate`` -- percentage of word pairs swapped.
* ``abbreviation_rate`` -- probability of abbreviation substitution
  (company-names domain only).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.datagen.distributions import duplicate_counts
from repro.datagen.errors import (
    AbbreviationError,
    EditErrorInjector,
    TokenSwapInjector,
)

__all__ = ["Record", "GeneratorParameters", "GeneratedDataset", "DatasetGenerator"]


@dataclass(frozen=True)
class Record:
    """One generated tuple: its id, its string value and its cluster id."""

    tid: int
    text: str
    cluster_id: int
    is_clean: bool


@dataclass(frozen=True)
class GeneratorParameters:
    """Knobs of the data generator (Table 5.2)."""

    size: int
    num_clean: int
    distribution: str = "uniform"
    erroneous_fraction: float = 0.5
    edit_extent: float = 0.1
    token_swap_rate: float = 0.2
    abbreviation_rate: float = 0.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.size <= 0 or self.num_clean <= 0:
            raise ValueError("size and num_clean must be positive")
        if self.size < self.num_clean:
            raise ValueError("size must be at least num_clean")
        for name in ("erroneous_fraction", "edit_extent", "token_swap_rate", "abbreviation_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")

    def scaled(self, size: int, num_clean: Optional[int] = None) -> "GeneratorParameters":
        """A copy with a different dataset size (for scalability experiments)."""
        return replace(
            self,
            size=size,
            num_clean=num_clean if num_clean is not None else max(1, size // 10),
        )


class GeneratedDataset:
    """The output of the generator: records plus ground-truth clusters."""

    def __init__(self, records: Sequence[Record], parameters: GeneratorParameters):
        self.records: List[Record] = list(records)
        self.parameters = parameters
        self._clusters: Dict[int, List[int]] = {}
        for record in self.records:
            self._clusters.setdefault(record.cluster_id, []).append(record.tid)

    # -- access ---------------------------------------------------------------

    @property
    def strings(self) -> List[str]:
        """The string attribute of every record, in tid order."""
        return [record.text for record in self.records]

    @property
    def cluster_ids(self) -> List[int]:
        return [record.cluster_id for record in self.records]

    def cluster_of(self, tid: int) -> int:
        return self.records[tid].cluster_id

    def cluster_members(self, cluster_id: int) -> List[int]:
        """All tuple ids in the given cluster (the relevant set for a query)."""
        return list(self._clusters.get(cluster_id, []))

    def relevant_for(self, tid: int) -> List[int]:
        """Ground truth for a query drawn from record ``tid``: its whole cluster."""
        return self.cluster_members(self.cluster_of(tid))

    def num_clusters(self) -> int:
        return len(self._clusters)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def sample_query_tids(self, count: int, seed: int = 0) -> List[int]:
        """Random query workload: ``count`` tuple ids (clean and erroneous mixed)."""
        rng = random.Random(seed)
        population = range(len(self.records))
        if count >= len(self.records):
            return list(population)
        return rng.sample(population, count)


class DatasetGenerator:
    """Generate erroneous-duplicate datasets from clean source strings."""

    def __init__(self, clean_strings: Sequence[str]):
        if not clean_strings:
            raise ValueError("clean_strings must not be empty")
        self._clean = list(clean_strings)

    def generate(self, parameters: GeneratorParameters) -> GeneratedDataset:
        rng = random.Random(parameters.seed)
        num_clean = min(parameters.num_clean, len(self._clean))
        chosen = rng.sample(range(len(self._clean)), num_clean)
        counts = duplicate_counts(
            parameters.distribution, num_clean, parameters.size, rng
        )

        edit = EditErrorInjector(parameters.edit_extent)
        swap = TokenSwapInjector(parameters.token_swap_rate)
        abbreviation = AbbreviationError(parameters.abbreviation_rate)

        records: List[Record] = []
        tid = 0
        for cluster_id, (source_index, count) in enumerate(zip(chosen, counts)):
            clean_text = self._clean[source_index]
            for duplicate_index in range(count):
                if duplicate_index == 0:
                    # The first member of each cluster is the clean tuple itself.
                    records.append(Record(tid, clean_text, cluster_id, is_clean=True))
                    tid += 1
                    continue
                text = clean_text
                if rng.random() < parameters.erroneous_fraction:
                    text = self._inject(text, rng, edit, swap, abbreviation)
                    is_clean = text == clean_text
                else:
                    is_clean = True
                records.append(Record(tid, text, cluster_id, is_clean=is_clean))
                tid += 1
        return GeneratedDataset(records, parameters)

    @staticmethod
    def _inject(
        text: str,
        rng: random.Random,
        edit: EditErrorInjector,
        swap: TokenSwapInjector,
        abbreviation: AbbreviationError,
    ) -> str:
        """Apply the three injectors in the paper's order: abbrev, swap, edit."""
        text = abbreviation.apply(text, rng)
        text = swap.apply(text, rng)
        text = edit.apply(text, rng)
        return text
