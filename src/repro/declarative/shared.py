"""Shared corpus state for the declarative realizations.

Historically every declarative predicate re-tokenized the base relation and
re-materialized its own copy of the common statistics tables on every
``preprocess()`` call, and two predicates sharing one SQL backend instance
clobbered each other's fixed-name tables.  This module fixes both: the token
tables and the predicate-independent weight tables are materialized **once
per (backend, relation, tokenizer)** as a *core* and shared across all 13
predicates, so fitting a second predicate on an already-prepared backend is
near-free.

Cores are registered on the backend instance and namespaced by table prefix:
the first core on a backend uses the paper's canonical unprefixed names
(``BASE_TABLE``, ``BASE_TOKENS``, ...), later cores -- a different relation
or a different tokenizer on the same backend -- get ``S1_``, ``S2_``, ...
prefixes, so nothing ever clobbers anything.  Within a core, tables are
*features* materialized on demand (:meth:`SharedTables.require`); features
whose contents depend on predicate parameters carry a signature and are
rebuilt only when the signature changes, which is also how predicates detect
staleness (:meth:`repro.declarative.base.DeclarativePredicate.tables_stale`).

Shared features (all derived purely from the relation + tokenizer):

========== ===================================================================
feature    tables
========== ===================================================================
core       ``BASE_TABLE(tid, string)``, ``BASE_TOKENS(tid, token)``,
           ``BASE_TOKENS_DIST``, ``BASE_TF``, ``BASE_SIZE``, ``BASE_DF``,
           ``BASE_TIDLEN`` (distinct-token count per tuple -- the in-SQL
           length-filter input)
dl         ``BASE_DL(tid, dl)`` -- token count with multiplicity
avgdl      ``BASE_AVGDL(avgdl)``
idf        ``BASE_IDF(token, idf)`` -- ``log(N) - log(df)``
idfavg     ``BASE_IDFAVG(idfavg)``
rsw        ``BASE_RSW(token, weight)`` -- Robertson-Sparck Jones weight
rsweights  ``BASE_RSWEIGHTS(tid, token, weight)``
rsddl      ``BASE_RSDDL(tid, ddl)``
rstokensddl ``BASE_RSTOKENSDDL(tid, token, weight, ddl)``
tokensddl  ``BASE_TOKENSDDL(tid, token, len)``
cosweights ``BASE_COSLENGTH(tid, len)``, ``BASE_COSW(tid, token, weight)``
           -- normalized tf-idf (Cosine over q-grams, SoftTFIDF over words)
pml        ``BASE_PML(tid, token, pml)``
========== ===================================================================

Predicate-specific features (LM chain, HMM weights, BM25 weights, word
q-grams, min-hash signatures, prefix-filter tables) are registered through
the same mechanism with custom builders and signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.backends.base import SQLBackend
from repro.declarative import tokens as token_tables
from repro.text.tokenize import Tokenizer

__all__ = [
    "SharedTables",
    "acquire_core",
    "clear_shared_state",
    "corpus_signature",
    "tokenizer_signature",
]

#: Sentinel feature name of the core token tables.
CORE = "core"

_MISSING = object()


def corpus_signature(strings: Sequence[str]) -> Tuple[int, int]:
    """Cheap content fingerprint of a relation (no string retention)."""
    return (len(strings), hash(tuple(strings)))


def tokenizer_signature(tokenizer: Tokenizer) -> str:
    """Fingerprint of a tokenizer (frozen dataclasses: repr carries params)."""
    return repr(tokenizer)


@dataclass
class SharedTables:
    """One (relation, tokenizer) core of shared tables on a backend.

    The handle is shared by every predicate fitted on the same corpus with
    the same tokenizer; it records which features exist (``sigs``) and which
    tables were created (for :func:`clear_shared_state`).
    """

    prefix: str
    key: tuple
    num_tuples: int
    indexed: bool = False
    dead: bool = False
    #: feature name -> signature it was last built with (None = parameterless).
    sigs: Dict[str, object] = field(default_factory=dict)
    #: python-side companions (e.g. the fitted prefix filter).
    meta: Dict[str, object] = field(default_factory=dict)
    #: every table this core created, for teardown.
    tables: List[str] = field(default_factory=list)

    # -- naming ------------------------------------------------------------------

    def name(self, base: str) -> str:
        """The namespaced table name of ``base`` within this core."""
        return self.prefix + base

    # -- materialization ---------------------------------------------------------

    def table(self, backend: SQLBackend, base: str, columns: Sequence[str]) -> str:
        """(Re)create a core-namespaced table and record it for teardown."""
        full = self.name(base)
        backend.recreate_table(full, columns)
        if full not in self.tables:
            self.tables.append(full)
        return full

    def index(self, backend: SQLBackend, base: str, *columns: str) -> None:
        """Create an index over a core table (no-op when indexing is off)."""
        if not self.indexed:
            return
        table = self.name(base)
        backend.create_index(f"IDX_{table}_{'_'.join(columns)}", table, columns)

    def require(
        self,
        backend: SQLBackend,
        feature: str,
        sig: object = None,
        builder: Optional[Callable[[SQLBackend, "SharedTables"], None]] = None,
    ) -> bool:
        """Materialize ``feature`` unless it already exists with ``sig``.

        Returns ``True`` when the feature was (re)built by this call.  A
        signature mismatch rebuilds the feature's tables in place, bumping
        ``sigs[feature]`` -- predicates that recorded the old signature see
        themselves stale and refit.
        """
        if self.sigs.get(feature, _MISSING) == sig:
            return False
        build = builder if builder is not None else _BUILDERS[feature]
        build(backend, self)
        self.sigs[feature] = sig
        return True

    def variant(self, feature: str, sig: object) -> Tuple[str, str]:
        """A per-(feature, sig) feature name and table-name suffix.

        Parameter-dependent features (BM25 weights for a given ``(k1, b)``,
        HMM weights for a given ``a0``, word q-grams for a given ``q``, ...)
        get their *own* tables per parameter signature instead of rebuilding
        one fixed-name table in place -- two predicate states with different
        parameters can then share a backend without refitting each other on
        every alternating query.  The first signature seen keeps the
        canonical unsuffixed table name.
        """
        variants: Dict[str, str] = self.meta.setdefault(f"variants:{feature}", {})
        key = repr(sig)
        if key not in variants:
            variants[key] = "" if not variants else f"_V{len(variants)}"
        suffix = variants[key]
        return f"{feature}{suffix}", suffix

    def enable_indexes(self, backend: SQLBackend) -> None:
        """Index the already-materialized core tables (idempotent)."""
        if self.indexed:
            return
        self.indexed = True
        for base, columns in _CORE_INDEXES:
            if backend.has_table(self.name(base)):
                self.index(backend, base, *columns)


# -- core + standard feature builders -----------------------------------------

#: Indexes of the core token/stat tables (token-join and tid-join columns).
_CORE_INDEXES = [
    ("BASE_TOKENS", ("token",)),
    ("BASE_TOKENS", ("tid",)),
    ("BASE_TOKENS_DIST", ("token",)),
    ("BASE_TOKENS_DIST", ("tid",)),
    ("BASE_TF", ("token",)),
    ("BASE_TF", ("tid",)),
    ("BASE_TIDLEN", ("tid",)),
]


def _build_core(
    backend: SQLBackend,
    core: SharedTables,
    strings: Sequence[str],
    tokenizer: Tokenizer,
    sql_tokenization: bool,
) -> None:
    prefix = core.prefix
    token_tables.load_base_table(backend, strings, prefix=prefix)
    if sql_tokenization:
        token_tables.load_base_tokens_sql(
            backend, strings, getattr(tokenizer, "q", 2), prefix=prefix
        )
        core.tables.append(core.name("INTEGERS"))
    else:
        token_tables.load_base_tokens_python(backend, strings, tokenizer, prefix=prefix)
    core.tables.extend([core.name("BASE_TABLE"), core.name("BASE_TOKENS")])
    t = core.name
    core.table(backend, "BASE_TOKENS_DIST", ["tid INTEGER", "token TEXT"])
    backend.execute(
        f"INSERT INTO {t('BASE_TOKENS_DIST')} (tid, token) "
        f"SELECT DISTINCT tid, token FROM {t('BASE_TOKENS')}"
    )
    core.table(backend, "BASE_TF", ["tid INTEGER", "token TEXT", "tf INTEGER"])
    backend.execute(
        f"INSERT INTO {t('BASE_TF')} (tid, token, tf) "
        f"SELECT T.tid, T.token, COUNT(*) FROM {t('BASE_TOKENS')} T GROUP BY T.tid, T.token"
    )
    core.table(backend, "BASE_SIZE", ["size INTEGER"])
    backend.execute(
        f"INSERT INTO {t('BASE_SIZE')} (size) SELECT COUNT(*) FROM {t('BASE_TABLE')}"
    )
    core.table(backend, "BASE_DF", ["token TEXT", "df INTEGER"])
    backend.execute(
        f"INSERT INTO {t('BASE_DF')} (token, df) "
        f"SELECT D.token, COUNT(*) FROM {t('BASE_TOKENS_DIST')} D GROUP BY D.token"
    )
    core.table(backend, "BASE_TIDLEN", ["tid INTEGER", "len INTEGER"])
    backend.execute(
        f"INSERT INTO {t('BASE_TIDLEN')} (tid, len) "
        f"SELECT D.tid, COUNT(*) FROM {t('BASE_TOKENS_DIST')} D GROUP BY D.tid"
    )


def _build_dl(backend: SQLBackend, core: SharedTables) -> None:
    t = core.name
    core.table(backend, "BASE_DL", ["tid INTEGER", "dl INTEGER"])
    backend.execute(
        f"INSERT INTO {t('BASE_DL')} (tid, dl) "
        f"SELECT T.tid, COUNT(*) FROM {t('BASE_TOKENS')} T GROUP BY T.tid"
    )
    core.index(backend, "BASE_DL", "tid")


def _build_avgdl(backend: SQLBackend, core: SharedTables) -> None:
    core.require(backend, "dl")
    t = core.name
    core.table(backend, "BASE_AVGDL", ["avgdl REAL"])
    backend.execute(
        f"INSERT INTO {t('BASE_AVGDL')} (avgdl) SELECT AVG(dl) FROM {t('BASE_DL')}"
    )


def _build_idf(backend: SQLBackend, core: SharedTables) -> None:
    t = core.name
    core.table(backend, "BASE_IDF", ["token TEXT", "idf REAL"])
    backend.execute(
        f"INSERT INTO {t('BASE_IDF')} (token, idf) "
        f"SELECT D.token, LOG(S.size) - LOG(D.df) FROM {t('BASE_DF')} D, {t('BASE_SIZE')} S"
    )
    core.index(backend, "BASE_IDF", "token")


def _build_idfavg(backend: SQLBackend, core: SharedTables) -> None:
    core.require(backend, "idf")
    t = core.name
    core.table(backend, "BASE_IDFAVG", ["idfavg REAL"])
    backend.execute(
        f"INSERT INTO {t('BASE_IDFAVG')} (idfavg) SELECT AVG(idf) FROM {t('BASE_IDF')}"
    )


def _build_rsw(backend: SQLBackend, core: SharedTables) -> None:
    """RS weight (equation 3.5); also BM25's ``midf`` -- the same formula."""
    t = core.name
    core.table(backend, "BASE_RSW", ["token TEXT", "weight REAL"])
    backend.execute(
        f"INSERT INTO {t('BASE_RSW')} (token, weight) "
        f"SELECT D.token, LOG(S.size - D.df + 0.5) - LOG(D.df + 0.5) "
        f"FROM {t('BASE_DF')} D, {t('BASE_SIZE')} S"
    )
    core.index(backend, "BASE_RSW", "token")


def _build_rsweights(backend: SQLBackend, core: SharedTables) -> None:
    core.require(backend, "rsw")
    t = core.name
    core.table(backend, "BASE_RSWEIGHTS", ["tid INTEGER", "token TEXT", "weight REAL"])
    backend.execute(
        f"INSERT INTO {t('BASE_RSWEIGHTS')} (tid, token, weight) "
        f"SELECT D.tid, D.token, W.weight "
        f"FROM {t('BASE_TOKENS_DIST')} D, {t('BASE_RSW')} W WHERE D.token = W.token"
    )
    core.index(backend, "BASE_RSWEIGHTS", "token")


def _build_rsddl(backend: SQLBackend, core: SharedTables) -> None:
    core.require(backend, "rsweights")
    t = core.name
    core.table(backend, "BASE_RSDDL", ["tid INTEGER", "ddl REAL"])
    backend.execute(
        f"INSERT INTO {t('BASE_RSDDL')} (tid, ddl) "
        f"SELECT W.tid, SUM(W.weight) FROM {t('BASE_RSWEIGHTS')} W GROUP BY W.tid"
    )


def _build_rstokensddl(backend: SQLBackend, core: SharedTables) -> None:
    core.require(backend, "rsddl")
    t = core.name
    core.table(
        backend,
        "BASE_RSTOKENSDDL",
        ["tid INTEGER", "token TEXT", "weight REAL", "ddl REAL"],
    )
    backend.execute(
        f"INSERT INTO {t('BASE_RSTOKENSDDL')} (tid, token, weight, ddl) "
        f"SELECT W.tid, W.token, W.weight, D.ddl "
        f"FROM {t('BASE_RSWEIGHTS')} W, {t('BASE_RSDDL')} D WHERE W.tid = D.tid"
    )
    core.index(backend, "BASE_RSTOKENSDDL", "token")


def _build_tokensddl(backend: SQLBackend, core: SharedTables) -> None:
    t = core.name
    core.table(backend, "BASE_TOKENSDDL", ["tid INTEGER", "token TEXT", "len INTEGER"])
    backend.execute(
        f"INSERT INTO {t('BASE_TOKENSDDL')} (tid, token, len) "
        f"SELECT T.tid, T.token, D.len "
        f"FROM {t('BASE_TOKENS_DIST')} T, {t('BASE_TIDLEN')} D WHERE T.tid = D.tid"
    )
    core.index(backend, "BASE_TOKENSDDL", "token")


def _build_cosweights(backend: SQLBackend, core: SharedTables) -> None:
    """Normalized tf-idf weights (Cosine / SoftTFIDF document side)."""
    core.require(backend, "idf")
    t = core.name
    core.table(backend, "BASE_COSLENGTH", ["tid INTEGER", "len REAL"])
    backend.execute(
        f"INSERT INTO {t('BASE_COSLENGTH')} (tid, len) "
        f"SELECT T.tid, SQRT(SUM(I.idf * I.idf * T.tf * T.tf)) "
        f"FROM {t('BASE_IDF')} I, {t('BASE_TF')} T "
        f"WHERE I.token = T.token GROUP BY T.tid"
    )
    core.table(backend, "BASE_COSW", ["tid INTEGER", "token TEXT", "weight REAL"])
    backend.execute(
        f"INSERT INTO {t('BASE_COSW')} (tid, token, weight) "
        f"SELECT T.tid, T.token, I.idf * T.tf / L.len "
        f"FROM {t('BASE_IDF')} I, {t('BASE_TF')} T, {t('BASE_COSLENGTH')} L "
        f"WHERE I.token = T.token AND T.tid = L.tid"
    )
    core.index(backend, "BASE_COSW", "token")


def _build_pml(backend: SQLBackend, core: SharedTables) -> None:
    core.require(backend, "dl")
    t = core.name
    core.table(backend, "BASE_PML", ["tid INTEGER", "token TEXT", "pml REAL"])
    backend.execute(
        f"INSERT INTO {t('BASE_PML')} (tid, token, pml) "
        f"SELECT T.tid, T.token, T.tf * 1.0 / D.dl "
        f"FROM {t('BASE_TF')} T, {t('BASE_DL')} D WHERE T.tid = D.tid"
    )
    core.index(backend, "BASE_PML", "token")


_BUILDERS: Dict[str, Callable[[SQLBackend, SharedTables], None]] = {
    "dl": _build_dl,
    "avgdl": _build_avgdl,
    "idf": _build_idf,
    "idfavg": _build_idfavg,
    "rsw": _build_rsw,
    "rsweights": _build_rsweights,
    "rsddl": _build_rsddl,
    "rstokensddl": _build_rstokensddl,
    "tokensddl": _build_tokensddl,
    "cosweights": _build_cosweights,
    "pml": _build_pml,
}


# -- core acquisition ----------------------------------------------------------


def _inner(backend: SQLBackend) -> SQLBackend:
    """The real backend behind recording/proxy wrappers (registry anchor)."""
    return getattr(backend, "inner", backend)


def acquire_core(
    backend: SQLBackend,
    strings: Sequence[str],
    tokenizer: Tokenizer,
    sql_tokenization: bool = False,
    indexes: bool = True,
) -> SharedTables:
    """The shared core for (backend, relation, tokenizer), built if absent.

    Statements run through ``backend`` (so SQL recorders see them), but the
    core registry anchors on the *inner* backend instance: every wrapper of
    one SQLite database or in-memory engine shares the same cores.
    """
    anchor = _inner(backend)
    registry: Dict[tuple, SharedTables] = anchor.__dict__.setdefault("_decl_cores", {})
    key = (corpus_signature(strings), tokenizer_signature(tokenizer))
    core = registry.get(key)
    if core is None:
        counter = anchor.__dict__.get("_decl_core_counter", 0)
        anchor.__dict__["_decl_core_counter"] = counter + 1
        core = SharedTables(
            prefix="" if counter == 0 else f"S{counter}_",
            key=key,
            num_tuples=len(strings),
        )
        _build_core(backend, core, strings, tokenizer, sql_tokenization)
        core.sigs[CORE] = None
        registry[key] = core
    if indexes:
        core.enable_indexes(backend)
    return core


def clear_shared_state(backend: SQLBackend) -> None:
    """Drop every shared core on ``backend`` and mark its handles dead.

    Predicates holding a dead handle report themselves stale and refit on
    their next use; long-lived engines call this from ``clear_cache()``.
    """
    anchor = _inner(backend)
    registry = anchor.__dict__.get("_decl_cores")
    if not registry:
        return
    for core in registry.values():
        core.dead = True
        for table in core.tables:
            backend.drop_table(table, if_exists=True)
    registry.clear()
    anchor.__dict__["_decl_core_counter"] = 0
