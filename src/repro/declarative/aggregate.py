"""Declarative realizations of the aggregate weighted predicates (Appendix B.2).

Both predicates store per-(tid, token) document-side weights in
``BASE_WEIGHTS`` during preprocessing; query-time scoring is the single-join
statement of Figure 4.3 with the query-side weights computed on the fly as a
subquery.
"""

from __future__ import annotations

from typing import List

from repro.declarative.base import DeclarativePredicate
from repro.text.weights import BM25Parameters

__all__ = ["DeclarativeCosine", "DeclarativeBM25"]


class _DeclarativeAggregateBase(DeclarativePredicate):
    family = "aggregate-weighted"

    def _materialize_size_and_tf(self) -> None:
        self.backend.recreate_table("BASE_SIZE", ["size INTEGER"])
        self.backend.execute(
            "INSERT INTO BASE_SIZE (size) SELECT COUNT(*) FROM BASE_TABLE"
        )
        self.backend.recreate_table(
            "BASE_TF", ["tid INTEGER", "token TEXT", "tf INTEGER"]
        )
        self.backend.execute(
            "INSERT INTO BASE_TF (tid, token, tf) "
            "SELECT T.tid, T.token, COUNT(*) FROM BASE_TOKENS T GROUP BY T.tid, T.token"
        )


class DeclarativeCosine(_DeclarativeAggregateBase):
    """tf-idf cosine similarity (Appendix B.2.1)."""

    name = "Cosine"

    def weight_phase(self) -> None:
        self._materialize_size_and_tf()
        self.backend.recreate_table("BASE_IDF", ["token TEXT", "idf REAL"])
        self.backend.execute(
            "INSERT INTO BASE_IDF (token, idf) "
            "SELECT T.token, LOG(S.size) - LOG(COUNT(DISTINCT T.tid)) "
            "FROM BASE_TOKENS T, BASE_SIZE S "
            "GROUP BY T.token, S.size"
        )
        self.backend.recreate_table("BASE_LENGTH", ["tid INTEGER", "len REAL"])
        self.backend.execute(
            "INSERT INTO BASE_LENGTH (tid, len) "
            "SELECT T.tid, SQRT(SUM(I.idf * I.idf * T.tf * T.tf)) "
            "FROM BASE_IDF I, BASE_TF T "
            "WHERE I.token = T.token "
            "GROUP BY T.tid"
        )
        self.backend.recreate_table(
            "BASE_WEIGHTS", ["tid INTEGER", "token TEXT", "weight REAL"]
        )
        self.backend.execute(
            "INSERT INTO BASE_WEIGHTS (tid, token, weight) "
            "SELECT T.tid, T.token, I.idf * T.tf / L.len "
            "FROM BASE_IDF I, BASE_TF T, BASE_LENGTH L "
            "WHERE I.token = T.token AND T.tid = L.tid"
        )

    def query_scores(self, query: str) -> List[tuple]:
        self.load_query_tokens(query)
        # The query-side weights are normalized tf-idf computed on the fly;
        # query tokens absent from BASE_IDF are dropped by the inner join.
        query_weights = (
            "(SELECT QTF.token, QIDF.idf * QTF.tf / QLEN.length AS weight "
            " FROM (SELECT R.token, R.idf "
            "       FROM (SELECT DISTINCT token FROM QUERY_TOKENS) S, BASE_IDF R "
            "       WHERE S.token = R.token) QIDF, "
            "      (SELECT T.token, COUNT(*) AS tf "
            "       FROM QUERY_TOKENS T GROUP BY T.token) QTF, "
            "      (SELECT SQRT(SUM(QI.idf * QI.idf * QT.tf * QT.tf)) AS length "
            "       FROM (SELECT R.token, R.idf "
            "             FROM (SELECT DISTINCT token FROM QUERY_TOKENS) S, BASE_IDF R "
            "             WHERE S.token = R.token) QI, "
            "            (SELECT T.token, COUNT(*) AS tf "
            "             FROM QUERY_TOKENS T GROUP BY T.token) QT "
            "       WHERE QI.token = QT.token) QLEN "
            " WHERE QIDF.token = QTF.token)"
        )
        return self.backend.query(
            "SELECT R1W.tid, SUM(R1W.weight * R2W.weight) AS score "
            f"FROM BASE_WEIGHTS R1W, {query_weights} R2W "
            "WHERE R1W.token = R2W.token "
            "GROUP BY R1W.tid"
        )


class DeclarativeBM25(_DeclarativeAggregateBase):
    """Okapi BM25 (Appendix B.2.2)."""

    name = "BM25"

    def __init__(self, *args, params: BM25Parameters | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.params = params or BM25Parameters()

    def weight_phase(self) -> None:
        k1, b = self.params.k1, self.params.b
        self._materialize_size_and_tf()
        self.backend.recreate_table("BASE_BMIDF", ["token TEXT", "midf REAL"])
        self.backend.execute(
            "INSERT INTO BASE_BMIDF (token, midf) "
            "SELECT T.token, LOG(S.size - COUNT(T.tid) + 0.5) - LOG(COUNT(T.tid) + 0.5) "
            "FROM BASE_TF T, BASE_SIZE S "
            "GROUP BY T.token, S.size"
        )
        self.backend.recreate_table("BASE_BMLENGTH", ["tid INTEGER", "dl REAL"])
        self.backend.execute(
            "INSERT INTO BASE_BMLENGTH (tid, dl) "
            "SELECT T.tid, SUM(T.tf) FROM BASE_TF T GROUP BY T.tid"
        )
        self.backend.recreate_table("BASE_BMAVGLENGTH", ["avgdl REAL"])
        self.backend.execute(
            "INSERT INTO BASE_BMAVGLENGTH (avgdl) SELECT AVG(dl) FROM BASE_BMLENGTH"
        )
        self.backend.recreate_table(
            "BASE_BMMODTF", ["tid INTEGER", "token TEXT", "mtf REAL"]
        )
        self.backend.execute(
            "INSERT INTO BASE_BMMODTF (tid, token, mtf) "
            f"SELECT T.tid, T.token, (T.tf * ({k1} + 1)) / "
            f"((((1 - {b}) + ({b} * L.dl / A.avgdl)) * {k1}) + T.tf) "
            "FROM BASE_BMLENGTH L, BASE_BMAVGLENGTH A, BASE_TF T "
            "WHERE L.tid = T.tid"
        )
        self.backend.recreate_table(
            "BASE_WEIGHTS", ["tid INTEGER", "token TEXT", "weight REAL"]
        )
        self.backend.execute(
            "INSERT INTO BASE_WEIGHTS (tid, token, weight) "
            "SELECT T.tid, T.token, T.mtf * I.midf "
            "FROM BASE_BMMODTF T, BASE_BMIDF I "
            "WHERE T.token = I.token"
        )

    def query_scores(self, query: str) -> List[tuple]:
        k3 = self.params.k3
        self.load_query_tokens(query)
        return self.backend.query(
            "SELECT B.tid, SUM(B.weight * S.mtf) AS score "
            "FROM BASE_WEIGHTS B, "
            f"(SELECT token, (COUNT(*) * ({k3} + 1)) / ({k3} + COUNT(*)) AS mtf "
            " FROM QUERY_TOKENS T GROUP BY T.token) S "
            "WHERE B.token = S.token "
            "GROUP BY B.tid"
        )
