"""Declarative realizations of the aggregate weighted predicates (Appendix B.2).

Both predicates read their document-side weights from shared-core feature
tables (normalized tf-idf for Cosine; for BM25 the shared RS/``midf`` table
combined with the parameter-dependent modified tf, namespaced by the
``(k1, b)`` signature); query-time scoring is the single-join statement of
Figure 4.3 with the query-side weights computed on the fly as a subquery.

The batched variants group the same joins by ``qid``; Cosine materializes
the per-query normalized weights (``QUERY_WEIGHTS(qid, token, weight)``)
with a constant number of statements per batch before the final join.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.declarative.base import DeclarativePredicate
from repro.text.weights import BM25Parameters

__all__ = ["DeclarativeCosine", "DeclarativeBM25"]

_DQT = "(SELECT DISTINCT token FROM QUERY_TOKENS)"


class _DeclarativeAggregateBase(DeclarativePredicate):
    family = "aggregate-weighted"


class DeclarativeCosine(_DeclarativeAggregateBase):
    """tf-idf cosine similarity (Appendix B.2.1)."""

    name = "Cosine"

    def weight_phase(self) -> None:
        self.require("cosweights")

    #: Query-side weights: normalized tf-idf computed on the fly; query
    #: tokens absent from BASE_IDF are dropped by the inner join.
    def _query_weights_subquery(self) -> str:
        idf = self.tbl("BASE_IDF")
        return (
            "(SELECT QTF.token, QIDF.idf * QTF.tf / QLEN.length AS weight "
            " FROM (SELECT R.token, R.idf "
            f"       FROM {_DQT} S, {idf} R "
            "       WHERE S.token = R.token) QIDF, "
            "      (SELECT T.token, COUNT(*) AS tf "
            "       FROM QUERY_TOKENS T GROUP BY T.token) QTF, "
            "      (SELECT SQRT(SUM(QI.idf * QI.idf * QT.tf * QT.tf)) AS length "
            "       FROM (SELECT R.token, R.idf "
            f"             FROM {_DQT} S, {idf} R "
            "             WHERE S.token = R.token) QI, "
            "            (SELECT T.token, COUNT(*) AS tf "
            "             FROM QUERY_TOKENS T GROUP BY T.token) QT "
            "       WHERE QI.token = QT.token) QLEN "
            " WHERE QIDF.token = QTF.token)"
        )

    def scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        return (
            "SELECT R1W.tid, SUM(R1W.weight * R2W.weight) AS score "
            f"FROM {self.tbl('BASE_COSW')} R1W, {self._query_weights_subquery()} R2W "
            "WHERE R1W.token = R2W.token "
            "GROUP BY R1W.tid",
            (),
        )

    def prepare_batch(self, queries: Sequence[str]) -> None:
        """Batch schema plus the per-query normalized weights table."""
        super().prepare_batch(queries)
        backend = self.backend
        idf = self.tbl("BASE_IDF")
        backend.recreate_table(
            "QUERY_IDF", ["qid INTEGER", "token TEXT", "idf REAL"]
        )
        backend.execute(
            "INSERT INTO QUERY_IDF (qid, token, idf) "
            "SELECT S.qid, S.token, R.idf "
            f"FROM (SELECT DISTINCT qid, token FROM QUERY_TOKENS) S, {idf} R "
            "WHERE S.token = R.token"
        )
        backend.recreate_table(
            "QUERY_TF", ["qid INTEGER", "token TEXT", "tf INTEGER"]
        )
        backend.execute(
            "INSERT INTO QUERY_TF (qid, token, tf) "
            "SELECT T.qid, T.token, COUNT(*) FROM QUERY_TOKENS T GROUP BY T.qid, T.token"
        )
        backend.recreate_table("QUERY_LENGTH", ["qid INTEGER", "length REAL"])
        backend.execute(
            "INSERT INTO QUERY_LENGTH (qid, length) "
            "SELECT QI.qid, SQRT(SUM(QI.idf * QI.idf * QT.tf * QT.tf)) "
            "FROM QUERY_IDF QI, QUERY_TF QT "
            "WHERE QI.qid = QT.qid AND QI.token = QT.token "
            "GROUP BY QI.qid"
        )
        backend.recreate_table(
            "QUERY_WEIGHTS", ["qid INTEGER", "token TEXT", "weight REAL"]
        )
        backend.execute(
            "INSERT INTO QUERY_WEIGHTS (qid, token, weight) "
            "SELECT QI.qid, QI.token, QI.idf * QT.tf / QL.length "
            "FROM QUERY_IDF QI, QUERY_TF QT, QUERY_LENGTH QL "
            "WHERE QI.qid = QT.qid AND QI.token = QT.token AND QI.qid = QL.qid"
        )

    def batch_scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        return (
            "SELECT R2W.qid, R1W.tid, SUM(R1W.weight * R2W.weight) AS score "
            f"FROM {self.tbl('BASE_COSW')} R1W, QUERY_WEIGHTS R2W "
            "WHERE R1W.token = R2W.token "
            "GROUP BY R2W.qid, R1W.tid",
            (),
        )


class DeclarativeBM25(_DeclarativeAggregateBase):
    """Okapi BM25 (Appendix B.2.2)."""

    name = "BM25"

    def __init__(self, *args, params: BM25Parameters | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.params = params or BM25Parameters()

    def weight_phase(self) -> None:
        k1, b = self.params.k1, self.params.b
        self.require("avgdl")
        self.require("rsw")  # BM25's midf is the RS weight formula
        feature, suffix = self.core.variant("bm25weights", (k1, b))
        self._weights_table = f"BASE_BM25W{suffix}"
        table = self._weights_table

        def _build(backend, core) -> None:
            core.table(backend, table, ["tid INTEGER", "token TEXT", "weight REAL"])
            backend.execute(
                f"INSERT INTO {core.name(table)} (tid, token, weight) "
                f"SELECT T.tid, T.token, ((T.tf * ({k1} + 1)) / "
                f"((((1 - {b}) + ({b} * L.dl / A.avgdl)) * {k1}) + T.tf)) * I.weight "
                f"FROM {core.name('BASE_DL')} L, {core.name('BASE_AVGDL')} A, "
                f"{core.name('BASE_TF')} T, {core.name('BASE_RSW')} I "
                "WHERE L.tid = T.tid AND T.token = I.token"
            )
            core.index(backend, table, "token")

        self.require(feature, sig=(k1, b), builder=_build)

    def _query_mtf_subquery(self) -> str:
        k3 = self.params.k3
        return (
            f"(SELECT token, (COUNT(*) * ({k3} + 1)) / ({k3} + COUNT(*)) AS mtf "
            " FROM QUERY_TOKENS T GROUP BY T.token)"
        )

    def scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        return (
            "SELECT B.tid, SUM(B.weight * S.mtf) AS score "
            f"FROM {self.tbl(self._weights_table)} B, {self._query_mtf_subquery()} S "
            "WHERE B.token = S.token "
            "GROUP BY B.tid",
            (),
        )

    def batch_scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        k3 = self.params.k3
        return (
            "SELECT S.qid, B.tid, SUM(B.weight * S.mtf) AS score "
            f"FROM {self.tbl(self._weights_table)} B, "
            f"(SELECT qid, token, (COUNT(*) * ({k3} + 1)) / ({k3} + COUNT(*)) AS mtf "
            " FROM QUERY_TOKENS T GROUP BY T.qid, T.token) S "
            "WHERE B.token = S.token "
            "GROUP BY S.qid, B.tid",
            (),
        )
