"""Declarative realization of the HMM predicate (Appendix B.3.2).

Preprocessing stores ``LOG(1 + a1 * P(q|D) / (a0 * P(q|GE)))`` per
(tid, token) in ``BASE_WEIGHTS_HMM``; the query statement joins the query
tokens (with multiplicity) against that table and exponentiates the sum,
exactly as in Figure 4.5.
"""

from __future__ import annotations

from typing import List

from repro.declarative.base import DeclarativePredicate

__all__ = ["DeclarativeHMM"]


class DeclarativeHMM(DeclarativePredicate):
    """Two-state Hidden Markov Model similarity in SQL."""

    name = "HMM"
    family = "language-modeling"

    def __init__(self, *args, a0: float = 0.2, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 < a0 < 1.0:
            raise ValueError("a0 must be strictly between 0 and 1")
        self.a0 = a0
        self.a1 = 1.0 - a0

    def weight_phase(self) -> None:
        backend = self.backend
        backend.recreate_table("BASE_TF", ["tid INTEGER", "token TEXT", "tf INTEGER"])
        backend.execute(
            "INSERT INTO BASE_TF (tid, token, tf) "
            "SELECT T.tid, T.token, COUNT(*) FROM BASE_TOKENS T GROUP BY T.tid, T.token"
        )
        backend.recreate_table("BASE_DL", ["tid INTEGER", "dl INTEGER"])
        backend.execute(
            "INSERT INTO BASE_DL (tid, dl) "
            "SELECT T.tid, COUNT(*) FROM BASE_TOKENS T GROUP BY T.tid"
        )
        backend.recreate_table("BASE_PML", ["tid INTEGER", "token TEXT", "pml REAL"])
        backend.execute(
            "INSERT INTO BASE_PML (tid, token, pml) "
            "SELECT T.tid, T.token, T.tf * 1.0 / D.dl "
            "FROM BASE_TF T, BASE_DL D WHERE T.tid = D.tid"
        )
        backend.recreate_table("BASE_SUMDL", ["sdl INTEGER"])
        backend.execute("INSERT INTO BASE_SUMDL (sdl) SELECT SUM(dl) FROM BASE_DL")
        backend.recreate_table("BASE_PTGE", ["token TEXT", "ptge REAL"])
        backend.execute(
            "INSERT INTO BASE_PTGE (token, ptge) "
            "SELECT T.token, SUM(T.tf) * 1.0 / D.sdl "
            "FROM BASE_TF T, BASE_SUMDL D "
            "GROUP BY T.token, D.sdl"
        )
        backend.recreate_table(
            "BASE_WEIGHTS_HMM", ["tid INTEGER", "token TEXT", "weight REAL"]
        )
        backend.execute(
            "INSERT INTO BASE_WEIGHTS_HMM (tid, token, weight) "
            f"SELECT M.tid, M.token, LOG(1 + ({self.a1} * M.pml) / ({self.a0} * P.ptge)) "
            "FROM BASE_PTGE P, BASE_PML M "
            "WHERE P.token = M.token"
        )

    def query_scores(self, query: str) -> List[tuple]:
        self.load_query_tokens(query)
        return self.backend.query(
            "SELECT W1.tid, EXP(SUM(W1.weight)) AS score "
            "FROM BASE_WEIGHTS_HMM W1, QUERY_TOKENS T2 "
            "WHERE W1.token = T2.token "
            "GROUP BY W1.tid"
        )
