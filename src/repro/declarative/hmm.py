"""Declarative realization of the HMM predicate (Appendix B.3.2).

Preprocessing stores ``LOG(1 + a1 * P(q|D) / (a0 * P(q|GE)))`` per
(tid, token) in ``BASE_WEIGHTS_HMM`` (namespaced by the ``a0`` signature on
the shared core); the query statement joins the query tokens (with
multiplicity) against that table and exponentiates the sum, exactly as in
Figure 4.5 -- batched, the same join groups by ``qid``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.declarative.base import DeclarativePredicate

__all__ = ["DeclarativeHMM"]


class DeclarativeHMM(DeclarativePredicate):
    """Two-state Hidden Markov Model similarity in SQL."""

    name = "HMM"
    family = "language-modeling"

    def __init__(self, *args, a0: float = 0.2, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 < a0 < 1.0:
            raise ValueError("a0 must be strictly between 0 and 1")
        self.a0 = a0
        self.a1 = 1.0 - a0

    def weight_phase(self) -> None:
        self.require("pml")
        self.require("hmm_ptge", builder=self._build_ptge)
        feature, suffix = self.core.variant("hmm_weights", self.a0)
        self._weights_table = f"BASE_WEIGHTS_HMM{suffix}"
        self.require(feature, sig=self.a0, builder=self._build_weights)

    def _build_ptge(self, backend, core) -> None:
        t = core.name
        core.table(backend, "BASE_SUMDL", ["sdl INTEGER"])
        backend.execute(
            f"INSERT INTO {t('BASE_SUMDL')} (sdl) SELECT SUM(dl) FROM {t('BASE_DL')}"
        )
        core.table(backend, "BASE_PTGE", ["token TEXT", "ptge REAL"])
        backend.execute(
            f"INSERT INTO {t('BASE_PTGE')} (token, ptge) "
            "SELECT T.token, SUM(T.tf) * 1.0 / D.sdl "
            f"FROM {t('BASE_TF')} T, {t('BASE_SUMDL')} D "
            "GROUP BY T.token, D.sdl"
        )

    def _build_weights(self, backend, core) -> None:
        t = core.name
        table = self._weights_table
        core.table(backend, table, ["tid INTEGER", "token TEXT", "weight REAL"])
        backend.execute(
            f"INSERT INTO {t(table)} (tid, token, weight) "
            f"SELECT M.tid, M.token, LOG(1 + ({self.a1} * M.pml) / ({self.a0} * P.ptge)) "
            f"FROM {t('BASE_PTGE')} P, {t('BASE_PML')} M "
            "WHERE P.token = M.token"
        )
        core.index(backend, table, "token")

    def scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        return (
            "SELECT W1.tid, EXP(SUM(W1.weight)) AS score "
            f"FROM {self.tbl(self._weights_table)} W1, QUERY_TOKENS T2 "
            "WHERE W1.token = T2.token "
            "GROUP BY W1.tid",
            (),
        )

    def batch_scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        return (
            "SELECT T2.qid, W1.tid, EXP(SUM(W1.weight)) AS score "
            f"FROM {self.tbl(self._weights_table)} W1, QUERY_TOKENS T2 "
            "WHERE W1.token = T2.token "
            "GROUP BY T2.qid, W1.tid",
            (),
        )
