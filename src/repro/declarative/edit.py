"""Declarative realization of the edit-distance predicate (paper section 4.4).

Following Gravano et al., a candidate set is generated from q-gram overlap in
SQL and candidates are verified with an ``EDITSIM`` UDF (registered on both
backends), mirroring the UDF the original study installed in MySQL.

* :meth:`rank` (used for accuracy evaluation, no threshold) verifies every
  tuple sharing at least one q-gram with the query.
* :meth:`select` pushes the count and length filters for the requested
  threshold into the candidate-generation SQL (``HAVING COUNT(*) >= ...`` and
  a length predicate), so that far fewer UDF verifications run -- this is the
  filtering step that makes the edit-based predicate fast in the paper's
  performance experiments.

The query string reaches the SQL exclusively through ``?`` bind parameters
(never interpolated into the statement text), so quotes and other SQL
metacharacters in the data are a non-issue end to end.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.predicates.base import ScoredTuple
from repro.declarative.base import DeclarativePredicate
from repro.text.tokenize import normalize_string

__all__ = ["DeclarativeEditDistance"]


class DeclarativeEditDistance(DeclarativePredicate):
    """Normalized edit similarity with SQL candidate generation + UDF verify."""

    name = "EditDistance"
    family = "edit-based"

    def weight_phase(self) -> None:
        # The candidate filter needs the number of q-grams per tuple and the
        # normalized string; the count is the shared core's BASE_DL, the
        # normalized strings are this family's BASE_NORM feature.
        self.require("dl")

        def _build(backend, core) -> None:
            core.table(backend, "BASE_NORM", ["tid INTEGER", "string TEXT"])
            backend.insert_rows(
                core.name("BASE_NORM"),
                [(tid, normalize_string(text)) for tid, text in enumerate(self._strings)],
            )
            core.index(backend, "BASE_NORM", "tid")

        self.require("norm", builder=_build)

    def scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        return (
            "SELECT C.tid, EDITSIM(B.string, ?) AS score "
            f"FROM (SELECT DISTINCT R1.tid FROM {self.tbl('BASE_TOKENS')} R1, "
            "      QUERY_TOKENS R2 "
            f"      WHERE R1.token = R2.token) C, {self.tbl('BASE_NORM')} B "
            "WHERE B.tid = C.tid",
            (self._query_literal,),
        )

    def prepare_query(self, query: str) -> None:
        super().prepare_query(query)
        self._query_literal = normalize_string(query)

    def prepare_batch(self, queries: Sequence[str]) -> None:
        super().prepare_batch(queries)
        self.backend.recreate_table("QUERY_NORM", ["qid INTEGER", "string TEXT"])
        self.backend.insert_rows(
            "QUERY_NORM",
            [(qid, normalize_string(query)) for qid, query in enumerate(queries)],
        )

    def batch_scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        return (
            "SELECT C.qid, C.tid, EDITSIM(B.string, Q.string) AS score "
            "FROM (SELECT DISTINCT R2.qid AS qid, R1.tid AS tid "
            f"      FROM {self.tbl('BASE_TOKENS')} R1, QUERY_TOKENS R2 "
            "      WHERE R1.token = R2.token) C, "
            f"{self.tbl('BASE_NORM')} B, QUERY_NORM Q "
            "WHERE B.tid = C.tid AND Q.qid = C.qid",
            (),
        )

    def select(self, query: str, threshold: float) -> List[ScoredTuple]:
        """Thresholded selection with the q-gram count filter pushed into SQL."""
        self._require_preprocessed()
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be within [0, 1]")
        self._check_blocker_threshold(threshold)
        self.prepare_query(query)
        normalized = self._query_literal
        q = getattr(self.tokenizer, "q", 2)
        query_length = len(normalized)
        num_query_tokens = len(self.tokenizer.tokenize(query))
        # sim >= threshold implies ed <= (1 - threshold) * max(|Q|, |D|), which
        # yields the q-gram count filter and the length filter pushed into the
        # candidate-generation statement below.
        rows = self._select_rows(normalized, threshold, q, query_length, num_query_tokens)
        scored = [
            ScoredTuple(int(tid), float(score))
            for tid, score in rows
            if score is not None
        ]
        # Blocking/restriction applies to the scored candidates *before* the
        # threshold cut, so last_num_candidates counts candidates scored (as
        # in every other predicate), not final results.
        scored = self._apply_candidate_filter(query, scored)
        results = [st for st in scored if st.score >= threshold]
        results.sort(key=lambda st: (-st.score, st.tid))
        return results

    def _select_rows(
        self,
        literal: str,
        threshold: float,
        q: int,
        query_length: int,
        num_query_tokens: int,
    ) -> List[tuple]:
        """Candidate generation with count + length filters, then UDF verify.

        The correlated-subquery form of the filter is kept out of the main
        statement for portability: the length and count bounds are computed by
        joining the shared per-tuple token counts (``BASE_DL``) and the
        normalized strings (``BASE_NORM``) directly.
        """
        return self.backend.query(
            "SELECT F.tid, EDITSIM(F.string, ?) AS score "
            "FROM (SELECT R1.tid AS tid, N.string AS string, Q.dl AS cnt, "
            "             LENGTH(N.string) AS blen, COUNT(*) AS common "
            f"      FROM {self.tbl('BASE_TOKENS')} R1, QUERY_TOKENS R2, "
            f"           {self.tbl('BASE_DL')} Q, {self.tbl('BASE_NORM')} N "
            "      WHERE R1.token = R2.token AND Q.tid = R1.tid AND N.tid = R1.tid "
            "      GROUP BY R1.tid, Q.dl, N.string "
            "      HAVING COUNT(*) >= "
            f"        (CASE WHEN Q.dl > {num_query_tokens} THEN Q.dl ELSE {num_query_tokens} END) "
            f"        - ((1.0 - {threshold}) * "
            f"           (CASE WHEN LENGTH(N.string) > {query_length} "
            f"                 THEN LENGTH(N.string) ELSE {query_length} END) * {q}) "
            f"        AND ABS(LENGTH(N.string) - {query_length}) <= "
            f"            (1.0 - {threshold}) * "
            f"            (CASE WHEN LENGTH(N.string) > {query_length} "
            f"                  THEN LENGTH(N.string) ELSE {query_length} END)"
            "      ) F",
            [literal],
        )
