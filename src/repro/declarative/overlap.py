"""Declarative realizations of the overlap predicates (Appendix B.1).

All four predicates operate on *distinct* (tid, token) pairs, so preprocessing
first materializes ``BASE_TOKENS_DIST``; the weighted variants additionally
materialize the Robertson-Sparck Jones weight table (the paper's preferred
weighting for this class, section 5.3.1).
"""

from __future__ import annotations

from typing import List

from repro.declarative.base import DeclarativePredicate

__all__ = [
    "DeclarativeIntersectSize",
    "DeclarativeJaccard",
    "DeclarativeWeightedMatch",
    "DeclarativeWeightedJaccard",
]

_DISTINCT_QUERY_TOKENS = "(SELECT DISTINCT token FROM QUERY_TOKENS)"


class _DeclarativeOverlapBase(DeclarativePredicate):
    family = "overlap"

    def _materialize_distinct_tokens(self) -> None:
        self.backend.recreate_table("BASE_TOKENS_DIST", ["tid INTEGER", "token TEXT"])
        self.backend.execute(
            "INSERT INTO BASE_TOKENS_DIST (tid, token) "
            "SELECT DISTINCT tid, token FROM BASE_TOKENS"
        )

    def _materialize_rs_weights(self) -> None:
        """``BASE_WEIGHTS(tid, token, weight)`` with RS weights (equation 3.5)."""
        self.backend.recreate_table("BASE_SIZE", ["size INTEGER"])
        self.backend.execute(
            "INSERT INTO BASE_SIZE (size) SELECT COUNT(*) FROM BASE_TABLE"
        )
        self.backend.recreate_table("BASE_RSW", ["token TEXT", "weight REAL"])
        self.backend.execute(
            "INSERT INTO BASE_RSW (token, weight) "
            "SELECT T.token, LOG(S.size - COUNT(DISTINCT T.tid) + 0.5) "
            "- LOG(COUNT(DISTINCT T.tid) + 0.5) "
            "FROM BASE_TOKENS T, BASE_SIZE S "
            "GROUP BY T.token, S.size"
        )
        self.backend.recreate_table(
            "BASE_WEIGHTS", ["tid INTEGER", "token TEXT", "weight REAL"]
        )
        self.backend.execute(
            "INSERT INTO BASE_WEIGHTS (tid, token, weight) "
            "SELECT D.tid, D.token, W.weight "
            "FROM BASE_TOKENS_DIST D, BASE_RSW W "
            "WHERE D.token = W.token"
        )


class DeclarativeIntersectSize(_DeclarativeOverlapBase):
    """IntersectSize: number of common distinct tokens (Figure 4.1)."""

    name = "IntersectSize"

    def weight_phase(self) -> None:
        self._materialize_distinct_tokens()

    def query_scores(self, query: str) -> List[tuple]:
        self.load_query_tokens(query)
        return self.backend.query(
            "SELECT R1.tid, COUNT(*) AS score "
            f"FROM BASE_TOKENS_DIST R1, {_DISTINCT_QUERY_TOKENS} R2 "
            "WHERE R1.token = R2.token "
            "GROUP BY R1.tid"
        )


class DeclarativeJaccard(_DeclarativeOverlapBase):
    """Jaccard coefficient (Figure 4.2)."""

    name = "Jaccard"
    #: Length/prefix blockers stay exact for this score (see the direct twin).
    similarity_kind = "jaccard"

    def weight_phase(self) -> None:
        self._materialize_distinct_tokens()
        self.backend.recreate_table("BASE_DDL", ["tid INTEGER", "len INTEGER"])
        self.backend.execute(
            "INSERT INTO BASE_DDL (tid, len) "
            "SELECT tid, COUNT(*) FROM BASE_TOKENS_DIST GROUP BY tid"
        )
        self.backend.recreate_table(
            "BASE_TOKENSDDL", ["tid INTEGER", "token TEXT", "len INTEGER"]
        )
        self.backend.execute(
            "INSERT INTO BASE_TOKENSDDL (tid, token, len) "
            "SELECT T.tid, T.token, D.len "
            "FROM BASE_TOKENS_DIST T, BASE_DDL D WHERE T.tid = D.tid"
        )

    def query_scores(self, query: str) -> List[tuple]:
        self.load_query_tokens(query)
        return self.backend.query(
            "SELECT S1.tid, COUNT(*) * 1.0 / (S1.len + S2.len - COUNT(*)) AS score "
            f"FROM BASE_TOKENSDDL S1, {_DISTINCT_QUERY_TOKENS} R2, "
            f"(SELECT COUNT(*) AS len FROM {_DISTINCT_QUERY_TOKENS} QT) S2 "
            "WHERE S1.token = R2.token "
            "GROUP BY S1.tid, S1.len, S2.len"
        )


class DeclarativeWeightedMatch(_DeclarativeOverlapBase):
    """WeightedMatch: total RS weight of the common tokens."""

    name = "WeightedMatch"

    def weight_phase(self) -> None:
        self._materialize_distinct_tokens()
        self._materialize_rs_weights()

    def query_scores(self, query: str) -> List[tuple]:
        self.load_query_tokens(query)
        return self.backend.query(
            "SELECT W1.tid, SUM(W1.weight) AS score "
            f"FROM BASE_WEIGHTS W1, {_DISTINCT_QUERY_TOKENS} T2 "
            "WHERE W1.token = T2.token "
            "GROUP BY W1.tid"
        )


class DeclarativeWeightedJaccard(_DeclarativeOverlapBase):
    """WeightedJaccard: RS weight of the intersection over the union."""

    name = "WeightedJaccard"

    def weight_phase(self) -> None:
        self._materialize_distinct_tokens()
        self._materialize_rs_weights()
        self.backend.recreate_table("BASE_DDL", ["tid INTEGER", "ddl REAL"])
        self.backend.execute(
            "INSERT INTO BASE_DDL (tid, ddl) "
            "SELECT W.tid, SUM(W.weight) FROM BASE_WEIGHTS W GROUP BY W.tid"
        )
        self.backend.recreate_table(
            "BASE_TOKENSDDL",
            ["tid INTEGER", "token TEXT", "weight REAL", "ddl REAL"],
        )
        self.backend.execute(
            "INSERT INTO BASE_TOKENSDDL (tid, token, weight, ddl) "
            "SELECT W.tid, W.token, W.weight, D.ddl "
            "FROM BASE_WEIGHTS W, BASE_DDL D WHERE W.tid = D.tid"
        )

    def query_scores(self, query: str) -> List[tuple]:
        self.load_query_tokens(query)
        return self.backend.query(
            "SELECT S1.tid, SUM(S1.weight) / (S1.ddl + S2.ddl - SUM(S1.weight)) AS score "
            f"FROM BASE_TOKENSDDL S1, {_DISTINCT_QUERY_TOKENS} R2, "
            "(SELECT SUM(W.weight) AS ddl "
            f" FROM BASE_RSW W, {_DISTINCT_QUERY_TOKENS} QT"
            " WHERE W.token = QT.token) S2 "
            "WHERE S1.token = R2.token "
            "GROUP BY S1.tid, S1.ddl, S2.ddl"
        )
