"""Declarative realizations of the overlap predicates (Appendix B.1).

All four predicates operate on *distinct* (tid, token) pairs
(``BASE_TOKENS_DIST``, part of the shared core); the weighted variants
additionally use the shared Robertson-Sparck Jones weight tables (the
paper's preferred weighting for this class, section 5.3.1).

:class:`DeclarativeJaccard` additionally carries the in-SQL candidate-pruning
fast path for thresholded selections: the length-filter bounds of
:mod:`repro.blocking.length` become a ``BETWEEN`` predicate over the shared
per-tuple token counts, and the prefix-filter lemma of
:mod:`repro.blocking.prefix` becomes a semi-join against a materialized
rarest-tokens prefix table -- both exact for Jaccard, so the pruned
statement returns the same selection while scoring a fraction of the rows.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.blocking.prefix import PrefixFilter
from repro.core.predicates.base import Match
from repro.declarative.base import DeclarativePredicate, SQLFastPathStats

__all__ = [
    "DeclarativeIntersectSize",
    "DeclarativeJaccard",
    "DeclarativeWeightedMatch",
    "DeclarativeWeightedJaccard",
]

_DQT = "(SELECT DISTINCT token FROM QUERY_TOKENS)"
_BDQT = "(SELECT DISTINCT qid, token FROM QUERY_TOKENS)"

#: Float slack of the in-SQL length bounds, mirroring the blocker's
#: exactness-first policy (noise can only loosen the bounds).
_EPS = 1e-9


class _DeclarativeOverlapBase(DeclarativePredicate):
    family = "overlap"


class DeclarativeIntersectSize(_DeclarativeOverlapBase):
    """IntersectSize: number of common distinct tokens (Figure 4.1)."""

    name = "IntersectSize"

    def weight_phase(self) -> None:
        pass  # the shared core's BASE_TOKENS_DIST is all this predicate needs

    def scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        return (
            "SELECT R1.tid, COUNT(*) AS score "
            f"FROM {self.tbl('BASE_TOKENS_DIST')} R1, {_DQT} R2 "
            "WHERE R1.token = R2.token "
            "GROUP BY R1.tid",
            (),
        )

    def batch_scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        return (
            "SELECT R2.qid, R1.tid, COUNT(*) AS score "
            f"FROM {self.tbl('BASE_TOKENS_DIST')} R1, {_BDQT} R2 "
            "WHERE R1.token = R2.token "
            "GROUP BY R2.qid, R1.tid",
            (),
        )


class DeclarativeJaccard(_DeclarativeOverlapBase):
    """Jaccard coefficient (Figure 4.2)."""

    name = "Jaccard"
    #: Length/prefix blockers stay exact for this score (see the direct twin).
    similarity_kind = "jaccard"

    def weight_phase(self) -> None:
        self.require("tokensddl")

    # The distinct query tokens and their count are materialized once per
    # query/batch (QUERY_DIST / QUERY_LEN) instead of re-deriving the DISTINCT
    # subquery at every mention inside the scoring statement.

    def prepare_query(self, query: str) -> None:
        super().prepare_query(query)
        backend = self.backend
        backend.recreate_table("QUERY_DIST", ["token TEXT"])
        backend.execute(
            "INSERT INTO QUERY_DIST (token) SELECT DISTINCT token FROM QUERY_TOKENS"
        )
        backend.recreate_table("QUERY_LEN", ["len INTEGER"])
        backend.execute("INSERT INTO QUERY_LEN (len) SELECT COUNT(*) FROM QUERY_DIST")

    def scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        return (
            "SELECT S1.tid, COUNT(*) * 1.0 / (S1.len + S2.len - COUNT(*)) AS score "
            f"FROM {self.tbl('BASE_TOKENSDDL')} S1, QUERY_DIST R2, QUERY_LEN S2 "
            "WHERE S1.token = R2.token "
            "GROUP BY S1.tid, S1.len, S2.len",
            (),
        )

    def prepare_batch(self, queries) -> None:
        super().prepare_batch(queries)
        backend = self.backend
        backend.recreate_table("QUERY_DIST", ["qid INTEGER", "token TEXT"])
        backend.execute(
            "INSERT INTO QUERY_DIST (qid, token) "
            "SELECT DISTINCT qid, token FROM QUERY_TOKENS"
        )
        backend.recreate_table("QUERY_LEN", ["qid INTEGER", "len INTEGER"])
        backend.execute(
            "INSERT INTO QUERY_LEN (qid, len) "
            "SELECT qid, COUNT(*) FROM QUERY_DIST GROUP BY qid"
        )

    def batch_scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        return (
            "SELECT R2.qid, S1.tid, "
            "COUNT(*) * 1.0 / (S1.len + QL.len - COUNT(*)) AS score "
            f"FROM {self.tbl('BASE_TOKENSDDL')} S1, QUERY_DIST R2, QUERY_LEN QL "
            "WHERE S1.token = R2.token AND QL.qid = R2.qid "
            "GROUP BY R2.qid, S1.tid, S1.len, QL.len",
            (),
        )

    # -- in-SQL candidate pruning (threshold-aware select fast path) -------------

    def _prefix_filter_for(self, threshold: float) -> PrefixFilter:
        """The fitted prefix filter backing ``BASE_PREFIX`` (built at the
        lowest threshold seen; prefixes for a lower threshold are supersets,
        so reusing them at a higher threshold stays exact)."""
        core = self.core
        built: Optional[PrefixFilter] = core.meta.get("prefix_filter")
        if built is None or threshold < built.threshold:
            blocker = PrefixFilter(threshold, tokenizer=self.tokenizer)

            def _build(backend, core) -> None:
                blocker.fit(blocker.tokenizer.tokenize_many(self._strings))
                core.table(backend, "BASE_PREFIX", ["tid INTEGER", "token TEXT"])
                rows = [
                    (tid, token)
                    for tid, prefix in enumerate(blocker._prefixes)
                    for token in prefix
                ]
                backend.insert_rows(core.name("BASE_PREFIX"), rows)
                core.index(backend, "BASE_PREFIX", "token")
                core.meta["prefix_filter"] = blocker

            self.require("prefix", sig=("prefix", blocker.threshold), builder=_build)
            built = blocker
        else:
            # Record the feature dependency for staleness tracking.
            self._core_features["prefix"] = core.sigs.get("prefix")
        return built

    def select(self, query: str, threshold: float) -> List[Match]:
        """Thresholded selection with length/prefix bounds pushed into SQL.

        Exact for Jaccard (the same argument as the blocking filters): a
        candidate outside the token-count bounds, or sharing no rarest-prefix
        token with the query, cannot reach the threshold.  Falls back to the
        generic scored-then-filtered path when the fast path is off or the
        threshold does not prune.
        """
        if not self.fastpath or not 0.0 < threshold <= 1.0:
            return super().select(query, threshold)
        self._check_blocker_threshold(threshold)
        self._require_preprocessed()
        prefix_filter = self._prefix_filter_for(threshold)
        self.prepare_query(query)
        query_tokens = set(self.tokenizer.tokenize(query))
        prefix_tokens = prefix_filter.prefix_of(query_tokens)
        low = math.ceil(threshold * len(query_tokens) - _EPS)
        high = math.floor(len(query_tokens) / threshold + _EPS)
        self.backend.recreate_table("QUERY_PREFIX", ["token TEXT"])
        self.backend.insert_rows("QUERY_PREFIX", [(token,) for token in prefix_tokens])
        sql = (
            "SELECT S1.tid, COUNT(*) * 1.0 / (S1.len + S2.len - COUNT(*)) AS score "
            f"FROM {self.tbl('BASE_TOKENSDDL')} S1, QUERY_DIST R2, QUERY_LEN S2 "
            "WHERE S1.token = R2.token "
            f"AND S1.len BETWEEN {low} AND {high} "
            "AND S1.tid IN (SELECT DISTINCT P.tid "
            f"               FROM {self.tbl('BASE_PREFIX')} P, QUERY_PREFIX QP "
            "               WHERE P.token = QP.token) "
            "GROUP BY S1.tid, S1.len, S2.len"
        )
        rows = [
            Match(int(tid), float(score))
            for tid, score in self.backend.query(sql)
            if score is not None
        ]
        rows = self._apply_candidate_filter(query, rows)
        self.last_sql_stats = SQLFastPathStats(
            rows_scored=len(rows),
            base_size=len(self._strings),
            fastpath=("length-filter", "prefix-filter"),
        )
        results = [match for match in rows if match.score >= threshold]
        results.sort(key=lambda st: (-st.score, st.tid))
        return results


class DeclarativeWeightedMatch(_DeclarativeOverlapBase):
    """WeightedMatch: total RS weight of the common tokens."""

    name = "WeightedMatch"

    def weight_phase(self) -> None:
        self.require("rsweights")

    def scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        return (
            "SELECT W1.tid, SUM(W1.weight) AS score "
            f"FROM {self.tbl('BASE_RSWEIGHTS')} W1, {_DQT} T2 "
            "WHERE W1.token = T2.token "
            "GROUP BY W1.tid",
            (),
        )

    def batch_scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        return (
            "SELECT T2.qid, W1.tid, SUM(W1.weight) AS score "
            f"FROM {self.tbl('BASE_RSWEIGHTS')} W1, {_BDQT} T2 "
            "WHERE W1.token = T2.token "
            "GROUP BY T2.qid, W1.tid",
            (),
        )


class DeclarativeWeightedJaccard(_DeclarativeOverlapBase):
    """WeightedJaccard: RS weight of the intersection over the union."""

    name = "WeightedJaccard"

    def weight_phase(self) -> None:
        self.require("rstokensddl")

    def scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        return (
            "SELECT S1.tid, SUM(S1.weight) / (S1.ddl + S2.ddl - SUM(S1.weight)) AS score "
            f"FROM {self.tbl('BASE_RSTOKENSDDL')} S1, {_DQT} R2, "
            "(SELECT SUM(W.weight) AS ddl "
            f" FROM {self.tbl('BASE_RSW')} W, {_DQT} QT"
            " WHERE W.token = QT.token) S2 "
            "WHERE S1.token = R2.token "
            "GROUP BY S1.tid, S1.ddl, S2.ddl",
            (),
        )

    def batch_scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        return (
            "SELECT R2.qid, S1.tid, "
            "SUM(S1.weight) / (S1.ddl + QS.ddl - SUM(S1.weight)) AS score "
            f"FROM {self.tbl('BASE_RSTOKENSDDL')} S1, {_BDQT} R2, "
            "(SELECT QT.qid AS qid, SUM(W.weight) AS ddl "
            f" FROM {self.tbl('BASE_RSW')} W, {_BDQT} QT "
            " WHERE W.token = QT.token GROUP BY QT.qid) QS "
            "WHERE S1.token = R2.token AND QS.qid = R2.qid "
            "GROUP BY R2.qid, S1.tid, S1.ddl, QS.ddl",
            (),
        )
