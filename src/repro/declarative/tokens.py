"""Token-table preparation for the declarative framework (paper Appendix A).

Tokenization of the base relation can be performed either

* *in SQL* (``sql_tokenization=True``) with the INTEGERS-table join of
  Appendix A.1 -- faithful to the paper but quadratic in string length on the
  nested-loop engine, so intended for small relations and fidelity tests; or
* *in Python* (the default) with the same padding rules, bulk-loading the
  resulting ``BASE_TOKENS`` rows -- the behaviour is identical, only the
  mechanism differs.

Either way the resulting tables are exactly the ones the paper's query-time
SQL expects: ``BASE_TABLE(tid, string)``, ``BASE_TOKENS(tid, token)`` and, at
query time, ``QUERY_TOKENS(token)``.  Every loader accepts a table-name
``prefix`` so several shared cores (one per relation/tokenizer pair) can
coexist on one backend -- see :mod:`repro.declarative.shared`.

Batched execution adds the multi-query schema: ``QUERY_BATCH(qid, string)``
plus ``QUERY_TOKENS(qid, token)``, loaded once per batch by
:func:`load_query_batch` so one SQL statement can score a whole workload.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.backends.base import SQLBackend
from repro.text.tokenize import Tokenizer, normalize_string

__all__ = [
    "sql_escape",
    "load_base_table",
    "load_base_tokens_python",
    "load_base_tokens_sql",
    "load_query_tokens",
    "load_query_batch",
    "qgram_tokenization_sql",
]


def sql_escape(value: str) -> str:
    """Escape a string literal for inclusion in SQL (single-quote doubling).

    Statement parameters (``backend.query(sql, params)``) are the preferred
    way to pass strings -- they never touch the SQL text -- but this helper
    remains for callers assembling literal scripts (e.g. reports).
    """
    return value.replace("'", "''")


def load_base_table(backend: SQLBackend, strings: Sequence[str], prefix: str = "") -> None:
    """(Re)create and populate ``BASE_TABLE(tid, string)``."""
    backend.recreate_table(f"{prefix}BASE_TABLE", ["tid INTEGER", "string TEXT"])
    backend.insert_rows(
        f"{prefix}BASE_TABLE", [(tid, text) for tid, text in enumerate(strings)]
    )


def load_base_tokens_python(
    backend: SQLBackend, strings: Sequence[str], tokenizer: Tokenizer, prefix: str = ""
) -> None:
    """Populate ``BASE_TOKENS`` by tokenizing in Python (the fast path)."""
    backend.recreate_table(f"{prefix}BASE_TOKENS", ["tid INTEGER", "token TEXT"])
    rows: List[tuple] = []
    for tid, text in enumerate(strings):
        for token in tokenizer.tokenize(text):
            rows.append((tid, token))
    backend.insert_rows(f"{prefix}BASE_TOKENS", rows)


def qgram_tokenization_sql(q: int, source_table: str, target_table: str,
                           include_tid: bool = True, integers_table: str = "INTEGERS") -> str:
    """The Appendix A.1 q-gram generation statement for the given tables.

    The statement upper-cases the string, replaces every space by ``q - 1``
    padding characters, pads both ends and emits every window of length ``q``
    by joining against the INTEGERS table.
    """
    pad = "$" * (q - 1)
    padded = f"'{pad}' || UPPER(REPLACE(string, ' ', '{pad}')) || '{pad}'"
    tid_select = "tid, " if include_tid else ""
    tid_insert = "(tid, token)" if include_tid else "(token)"
    return (
        f"INSERT INTO {target_table} {tid_insert} "
        f"SELECT {tid_select}SUBSTR({padded}, {integers_table}.i, {q}) "
        f"FROM {integers_table} INNER JOIN {source_table} "
        f"ON {integers_table}.i <= LENGTH(REPLACE(string, ' ', '{pad}')) + {q - 1}"
    )


def load_base_tokens_sql(
    backend: SQLBackend, strings: Sequence[str], q: int, prefix: str = ""
) -> None:
    """Populate ``BASE_TOKENS`` with the SQL q-gram generation of Appendix A.1."""
    max_padded_length = max(
        (len(normalize_string(text).replace(" ", "$" * (q - 1))) + (q - 1) for text in strings),
        default=q,
    )
    integers = f"{prefix}INTEGERS"
    backend.recreate_table(integers, ["i INTEGER"])
    backend.insert_rows(integers, [(i,) for i in range(1, max_padded_length + 1)])
    backend.recreate_table(f"{prefix}BASE_TOKENS", ["tid INTEGER", "token TEXT"])
    backend.execute(
        qgram_tokenization_sql(
            q, f"{prefix}BASE_TABLE", f"{prefix}BASE_TOKENS", integers_table=integers
        )
    )


def load_query_tokens(backend: SQLBackend, query: str, tokenizer: Tokenizer) -> None:
    """(Re)create and populate ``QUERY_TOKENS(token)`` for one query string."""
    backend.recreate_table("QUERY_TOKENS", ["token TEXT"])
    backend.insert_rows("QUERY_TOKENS", [(token,) for token in tokenizer.tokenize(query)])


def load_query_batch(
    backend: SQLBackend, queries: Sequence[str], tokenizer: Tokenizer
) -> None:
    """Load the multi-query schema for one batch of query strings.

    ``QUERY_BATCH(qid, string)`` holds the raw query strings (0-based qid in
    batch order) and ``QUERY_TOKENS(qid, token)`` their tokens with
    multiplicity -- the per-family batch SQL joins and groups by ``qid`` to
    score every query of the batch in one statement.
    """
    backend.recreate_table("QUERY_BATCH", ["qid INTEGER", "string TEXT"])
    backend.insert_rows("QUERY_BATCH", list(enumerate(queries)))
    backend.recreate_table("QUERY_TOKENS", ["qid INTEGER", "token TEXT"])
    rows: List[tuple] = []
    for qid, query in enumerate(queries):
        for token in tokenizer.tokenize(query):
            rows.append((qid, token))
    backend.insert_rows("QUERY_TOKENS", rows)
