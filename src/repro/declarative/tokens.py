"""Token-table preparation for the declarative framework (paper Appendix A).

Tokenization of the base relation can be performed either

* *in SQL* (``sql_tokenization=True``) with the INTEGERS-table join of
  Appendix A.1 -- faithful to the paper but quadratic in string length on the
  nested-loop engine, so intended for small relations and fidelity tests; or
* *in Python* (the default) with the same padding rules, bulk-loading the
  resulting ``BASE_TOKENS`` rows -- the behaviour is identical, only the
  mechanism differs.

Either way the resulting tables are exactly the ones the paper's query-time
SQL expects: ``BASE_TABLE(tid, string)``, ``BASE_TOKENS(tid, token)`` and, at
query time, ``QUERY_TOKENS(token)``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.backends.base import SQLBackend
from repro.text.tokenize import Tokenizer, normalize_string

__all__ = [
    "sql_escape",
    "load_base_table",
    "load_base_tokens_python",
    "load_base_tokens_sql",
    "load_query_tokens",
    "qgram_tokenization_sql",
]


def sql_escape(value: str) -> str:
    """Escape a string literal for inclusion in SQL (single-quote doubling)."""
    return value.replace("'", "''")


def load_base_table(backend: SQLBackend, strings: Sequence[str]) -> None:
    """(Re)create and populate ``BASE_TABLE(tid, string)``."""
    backend.recreate_table("BASE_TABLE", ["tid INTEGER", "string TEXT"])
    backend.insert_rows("BASE_TABLE", [(tid, text) for tid, text in enumerate(strings)])


def load_base_tokens_python(
    backend: SQLBackend, strings: Sequence[str], tokenizer: Tokenizer
) -> None:
    """Populate ``BASE_TOKENS`` by tokenizing in Python (the fast path)."""
    backend.recreate_table("BASE_TOKENS", ["tid INTEGER", "token TEXT"])
    rows: List[tuple] = []
    for tid, text in enumerate(strings):
        for token in tokenizer.tokenize(text):
            rows.append((tid, token))
    backend.insert_rows("BASE_TOKENS", rows)


def qgram_tokenization_sql(q: int, source_table: str, target_table: str,
                           include_tid: bool = True) -> str:
    """The Appendix A.1 q-gram generation statement for the given tables.

    The statement upper-cases the string, replaces every space by ``q - 1``
    padding characters, pads both ends and emits every window of length ``q``
    by joining against the INTEGERS table.
    """
    pad = "$" * (q - 1)
    padded = f"'{pad}' || UPPER(REPLACE(string, ' ', '{pad}')) || '{pad}'"
    tid_select = "tid, " if include_tid else ""
    tid_insert = "(tid, token)" if include_tid else "(token)"
    return (
        f"INSERT INTO {target_table} {tid_insert} "
        f"SELECT {tid_select}SUBSTR({padded}, INTEGERS.i, {q}) "
        f"FROM INTEGERS INNER JOIN {source_table} "
        f"ON INTEGERS.i <= LENGTH(REPLACE(string, ' ', '{pad}')) + {q - 1}"
    )


def load_base_tokens_sql(backend: SQLBackend, strings: Sequence[str], q: int) -> None:
    """Populate ``BASE_TOKENS`` with the SQL q-gram generation of Appendix A.1."""
    max_padded_length = max(
        (len(normalize_string(text).replace(" ", "$" * (q - 1))) + (q - 1) for text in strings),
        default=q,
    )
    backend.recreate_table("INTEGERS", ["i INTEGER"])
    backend.insert_rows("INTEGERS", [(i,) for i in range(1, max_padded_length + 1)])
    backend.recreate_table("BASE_TOKENS", ["tid INTEGER", "token TEXT"])
    backend.execute(qgram_tokenization_sql(q, "BASE_TABLE", "BASE_TOKENS"))


def load_query_tokens(backend: SQLBackend, query: str, tokenizer: Tokenizer) -> None:
    """(Re)create and populate ``QUERY_TOKENS(token)`` for one query string."""
    backend.recreate_table("QUERY_TOKENS", ["token TEXT"])
    backend.insert_rows("QUERY_TOKENS", [(token,) for token in tokenizer.tokenize(query)])
