"""Declarative (pure SQL) realizations of the similarity predicates.

This package mirrors chapter 4 and Appendices A/B of the paper: every
predicate is expressed as a *preprocessing* script that materializes token
and weight tables plus a *query-time* SQL statement that ranks the tuples of
the base relation, executed on a pluggable :class:`repro.backends.SQLBackend`
(the from-scratch in-memory engine or SQLite).

The declarative classes share the interface of the direct predicates
(:meth:`preprocess` ~ ``fit``, :meth:`rank`, :meth:`select`), and the
integration tests verify that both realizations produce the same rankings.
"""

from repro.declarative.base import DeclarativePredicate, SQLFastPathStats
from repro.declarative.shared import SharedTables, clear_shared_state
from repro.declarative.overlap import (
    DeclarativeIntersectSize,
    DeclarativeJaccard,
    DeclarativeWeightedJaccard,
    DeclarativeWeightedMatch,
)
from repro.declarative.aggregate import DeclarativeBM25, DeclarativeCosine
from repro.declarative.language_model import DeclarativeLanguageModeling
from repro.declarative.hmm import DeclarativeHMM
from repro.declarative.edit import DeclarativeEditDistance
from repro.declarative.combination import (
    DeclarativeGES,
    DeclarativeGESApx,
    DeclarativeGESJaccard,
    DeclarativeSoftTFIDF,
)
from repro.declarative.registry import (
    DECLARATIVE_CLASSES,
    available_declarative_predicates,
    make_declarative_predicate,
)

__all__ = [
    "DeclarativePredicate",
    "SQLFastPathStats",
    "SharedTables",
    "clear_shared_state",
    "DeclarativeIntersectSize",
    "DeclarativeJaccard",
    "DeclarativeWeightedMatch",
    "DeclarativeWeightedJaccard",
    "DeclarativeCosine",
    "DeclarativeBM25",
    "DeclarativeLanguageModeling",
    "DeclarativeHMM",
    "DeclarativeEditDistance",
    "DeclarativeGES",
    "DeclarativeGESJaccard",
    "DeclarativeGESApx",
    "DeclarativeSoftTFIDF",
    "DECLARATIVE_CLASSES",
    "make_declarative_predicate",
    "available_declarative_predicates",
]
