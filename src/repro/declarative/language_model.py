"""Declarative realization of the language modeling predicate (Appendix B.3.1).

Preprocessing materializes the chain of tables from the paper on top of the
shared core (``BASE_TF`` / ``BASE_DL`` / ``BASE_PML`` come from the core;
``BASE_PAVG`` -> ``BASE_FREQ`` -> ``BASE_RISK`` -> ``BASE_CFCS`` ->
``BASE_PM`` -> ``BASE_SUMCOMPM`` are this predicate's chain); the query
statement is the two-term formula of Figure 4.4 computed in log space, also
available grouped by ``qid`` for batched workloads.

The only deviation from the verbatim appendix SQL is a ``CASE`` clamp on
``p̂(t|M_D)`` so that ``LOG(1 - pm)`` stays finite for degenerate tuples
consisting of a single repeated token; the direct implementation applies the
same clamp.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.declarative.base import DeclarativePredicate

__all__ = ["DeclarativeLanguageModeling"]

_PM_CLAMP = "0.999999999999"


class DeclarativeLanguageModeling(DeclarativePredicate):
    """Ponte-Croft language modeling similarity in SQL."""

    name = "LM"
    family = "language-modeling"

    def weight_phase(self) -> None:
        self.require("pml")
        self.require("lm_chain", builder=self._build_chain)

    def _build_chain(self, backend, core) -> None:
        t = core.name
        core.table(backend, "BASE_PAVG", ["token TEXT", "pavg REAL"])
        backend.execute(
            f"INSERT INTO {t('BASE_PAVG')} (token, pavg) "
            f"SELECT P.token, AVG(P.pml) FROM {t('BASE_PML')} P GROUP BY P.token"
        )
        core.table(backend, "BASE_FREQ", ["tid INTEGER", "token TEXT", "freq REAL"])
        backend.execute(
            f"INSERT INTO {t('BASE_FREQ')} (tid, token, freq) "
            "SELECT T.tid, T.token, P.pavg * D.dl "
            f"FROM {t('BASE_TF')} T, {t('BASE_PAVG')} P, {t('BASE_DL')} D "
            "WHERE T.token = P.token AND T.tid = D.tid"
        )
        core.table(backend, "BASE_RISK", ["tid INTEGER", "token TEXT", "risk REAL"])
        backend.execute(
            f"INSERT INTO {t('BASE_RISK')} (tid, token, risk) "
            "SELECT T.tid, T.token, "
            "(1.0 / (1.0 + Q.freq)) * POWER(Q.freq / (1.0 + Q.freq), T.tf) "
            f"FROM {t('BASE_TF')} T, {t('BASE_FREQ')} Q "
            "WHERE T.tid = Q.tid AND T.token = Q.token"
        )
        core.table(backend, "BASE_TSIZE", ["size INTEGER"])
        backend.execute(
            f"INSERT INTO {t('BASE_TSIZE')} (size) SELECT COUNT(*) FROM {t('BASE_TOKENS')}"
        )
        core.table(backend, "BASE_CFCS", ["token TEXT", "cfcs REAL"])
        backend.execute(
            f"INSERT INTO {t('BASE_CFCS')} (token, cfcs) "
            "SELECT T.token, COUNT(*) * 1.0 / S.size "
            f"FROM {t('BASE_TOKENS')} T, {t('BASE_TSIZE')} S "
            "GROUP BY T.token, S.size"
        )
        core.table(
            backend, "BASE_PM", ["tid INTEGER", "token TEXT", "pm REAL", "cfcs REAL"]
        )
        backend.execute(
            f"INSERT INTO {t('BASE_PM')} (tid, token, pm, cfcs) "
            "SELECT T.tid, T.token, "
            f"CASE WHEN POWER(M.pml, 1.0 - R.risk) * POWER(A.pavg, R.risk) >= 1.0 "
            f"     THEN {_PM_CLAMP} "
            "      ELSE POWER(M.pml, 1.0 - R.risk) * POWER(A.pavg, R.risk) END, "
            "C.cfcs "
            f"FROM {t('BASE_TF')} T, {t('BASE_RISK')} R, {t('BASE_PML')} M, "
            f"{t('BASE_PAVG')} A, {t('BASE_CFCS')} C "
            "WHERE T.tid = R.tid AND T.token = R.token AND T.tid = M.tid "
            "AND T.token = M.token AND T.token = A.token AND T.token = C.token"
        )
        core.index(backend, "BASE_PM", "token")
        core.table(backend, "BASE_SUMCOMPM", ["tid INTEGER", "sumcompm REAL"])
        backend.execute(
            f"INSERT INTO {t('BASE_SUMCOMPM')} (tid, sumcompm) "
            f"SELECT P.tid, SUM(LOG(1.0 - P.pm)) FROM {t('BASE_PM')} P GROUP BY P.tid"
        )
        core.index(backend, "BASE_SUMCOMPM", "tid")

    def scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        return (
            "SELECT B1.tid, EXP(B1.score + B2.sumcompm) AS score "
            "FROM (SELECT P1.tid AS tid, "
            "             SUM(LOG(P1.pm)) - SUM(LOG(1.0 - P1.pm)) - SUM(LOG(P1.cfcs)) AS score "
            f"      FROM {self.tbl('BASE_PM')} P1, "
            "           (SELECT DISTINCT token FROM QUERY_TOKENS) T2 "
            "      WHERE P1.token = T2.token "
            f"      GROUP BY P1.tid) B1, {self.tbl('BASE_SUMCOMPM')} B2 "
            "WHERE B1.tid = B2.tid",
            (),
        )

    def batch_scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        return (
            "SELECT B1.qid, B1.tid, EXP(B1.score + B2.sumcompm) AS score "
            "FROM (SELECT T2.qid AS qid, P1.tid AS tid, "
            "             SUM(LOG(P1.pm)) - SUM(LOG(1.0 - P1.pm)) - SUM(LOG(P1.cfcs)) AS score "
            f"      FROM {self.tbl('BASE_PM')} P1, "
            "           (SELECT DISTINCT qid, token FROM QUERY_TOKENS) T2 "
            "      WHERE P1.token = T2.token "
            f"      GROUP BY T2.qid, P1.tid) B1, {self.tbl('BASE_SUMCOMPM')} B2 "
            "WHERE B1.tid = B2.tid",
            (),
        )
