"""Declarative realization of the language modeling predicate (Appendix B.3.1).

Preprocessing materializes the chain of tables from the paper
(``BASE_TF`` -> ``BASE_DL`` -> ``BASE_PML`` -> ``BASE_PAVG`` -> ``BASE_FREQ``
-> ``BASE_RISK`` -> ``BASE_CFCS`` -> ``BASE_PM`` -> ``BASE_SUMCOMPM``); the
query statement is the two-term formula of Figure 4.4 computed in log space.

The only deviation from the verbatim appendix SQL is a ``CASE`` clamp on
``p̂(t|M_D)`` so that ``LOG(1 - pm)`` stays finite for degenerate tuples
consisting of a single repeated token; the direct implementation applies the
same clamp.
"""

from __future__ import annotations

from typing import List

from repro.declarative.base import DeclarativePredicate

__all__ = ["DeclarativeLanguageModeling"]

_PM_CLAMP = "0.999999999999"


class DeclarativeLanguageModeling(DeclarativePredicate):
    """Ponte-Croft language modeling similarity in SQL."""

    name = "LM"
    family = "language-modeling"

    def weight_phase(self) -> None:
        backend = self.backend
        backend.recreate_table("BASE_TF", ["tid INTEGER", "token TEXT", "tf INTEGER"])
        backend.execute(
            "INSERT INTO BASE_TF (tid, token, tf) "
            "SELECT T.tid, T.token, COUNT(*) FROM BASE_TOKENS T GROUP BY T.tid, T.token"
        )
        backend.recreate_table("BASE_DL", ["tid INTEGER", "dl INTEGER"])
        backend.execute(
            "INSERT INTO BASE_DL (tid, dl) "
            "SELECT T.tid, COUNT(*) FROM BASE_TOKENS T GROUP BY T.tid"
        )
        backend.recreate_table("BASE_PML", ["tid INTEGER", "token TEXT", "pml REAL"])
        backend.execute(
            "INSERT INTO BASE_PML (tid, token, pml) "
            "SELECT T.tid, T.token, T.tf * 1.0 / D.dl "
            "FROM BASE_TF T, BASE_DL D WHERE T.tid = D.tid"
        )
        backend.recreate_table("BASE_PAVG", ["token TEXT", "pavg REAL"])
        backend.execute(
            "INSERT INTO BASE_PAVG (token, pavg) "
            "SELECT P.token, AVG(P.pml) FROM BASE_PML P GROUP BY P.token"
        )
        backend.recreate_table("BASE_FREQ", ["tid INTEGER", "token TEXT", "freq REAL"])
        backend.execute(
            "INSERT INTO BASE_FREQ (tid, token, freq) "
            "SELECT T.tid, T.token, P.pavg * D.dl "
            "FROM BASE_TF T, BASE_PAVG P, BASE_DL D "
            "WHERE T.token = P.token AND T.tid = D.tid"
        )
        backend.recreate_table("BASE_RISK", ["tid INTEGER", "token TEXT", "risk REAL"])
        backend.execute(
            "INSERT INTO BASE_RISK (tid, token, risk) "
            "SELECT T.tid, T.token, "
            "(1.0 / (1.0 + Q.freq)) * POWER(Q.freq / (1.0 + Q.freq), T.tf) "
            "FROM BASE_TF T, BASE_FREQ Q "
            "WHERE T.tid = Q.tid AND T.token = Q.token"
        )
        backend.recreate_table("BASE_TSIZE", ["size INTEGER"])
        backend.execute(
            "INSERT INTO BASE_TSIZE (size) SELECT COUNT(*) FROM BASE_TOKENS"
        )
        backend.recreate_table("BASE_CFCS", ["token TEXT", "cfcs REAL"])
        backend.execute(
            "INSERT INTO BASE_CFCS (token, cfcs) "
            "SELECT T.token, COUNT(*) * 1.0 / S.size "
            "FROM BASE_TOKENS T, BASE_TSIZE S "
            "GROUP BY T.token, S.size"
        )
        backend.recreate_table(
            "BASE_PM", ["tid INTEGER", "token TEXT", "pm REAL", "cfcs REAL"]
        )
        backend.execute(
            "INSERT INTO BASE_PM (tid, token, pm, cfcs) "
            "SELECT T.tid, T.token, "
            f"CASE WHEN POWER(M.pml, 1.0 - R.risk) * POWER(A.pavg, R.risk) >= 1.0 "
            f"     THEN {_PM_CLAMP} "
            "      ELSE POWER(M.pml, 1.0 - R.risk) * POWER(A.pavg, R.risk) END, "
            "C.cfcs "
            "FROM BASE_TF T, BASE_RISK R, BASE_PML M, BASE_PAVG A, BASE_CFCS C "
            "WHERE T.tid = R.tid AND T.token = R.token AND T.tid = M.tid "
            "AND T.token = M.token AND T.token = A.token AND T.token = C.token"
        )
        backend.recreate_table("BASE_SUMCOMPM", ["tid INTEGER", "sumcompm REAL"])
        backend.execute(
            "INSERT INTO BASE_SUMCOMPM (tid, sumcompm) "
            "SELECT P.tid, SUM(LOG(1.0 - P.pm)) FROM BASE_PM P GROUP BY P.tid"
        )

    def query_scores(self, query: str) -> List[tuple]:
        self.load_query_tokens(query)
        return self.backend.query(
            "SELECT B1.tid, EXP(B1.score + B2.sumcompm) AS score "
            "FROM (SELECT P1.tid AS tid, "
            "             SUM(LOG(P1.pm)) - SUM(LOG(1.0 - P1.pm)) - SUM(LOG(P1.cfcs)) AS score "
            "      FROM BASE_PM P1, (SELECT DISTINCT token FROM QUERY_TOKENS) T2 "
            "      WHERE P1.token = T2.token "
            "      GROUP BY P1.tid) B1, "
            "BASE_SUMCOMPM B2 "
            "WHERE B1.tid = B2.tid"
        )
