"""Base class of the declarative predicate realizations."""

from __future__ import annotations

from contextlib import contextmanager
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.backends.base import SQLBackend
from repro.backends.memory import MemoryBackend
from repro.core.predicates.base import Match
from repro.declarative import tokens as token_tables
from repro.text.tokenize import QgramTokenizer, Tokenizer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.blocking.base import Blocker

__all__ = ["DeclarativePredicate"]


class DeclarativePredicate(ABC):
    """A similarity predicate realized as SQL over a :class:`SQLBackend`.

    Life cycle (mirroring chapter 4 of the paper):

    1. :meth:`preprocess` -- load ``BASE_TABLE``, tokenize into
       ``BASE_TOKENS`` (in Python or, when ``sql_tokenization=True``, with the
       Appendix A.1 SQL) and run the predicate's weight-materialization SQL.
    2. :meth:`rank` / :meth:`select` -- load ``QUERY_TOKENS`` for the query
       string, run the predicate's query-time SQL and return scored tuples.

    Subclasses implement :meth:`weight_phase` (the preprocessing SQL beyond
    tokenization) and :meth:`query_scores` (the query-time SQL).

    The class satisfies the same
    :class:`repro.engine.protocol.SimilarityPredicateProtocol` as the direct
    predicates (``fit`` is an alias of :meth:`preprocess`; blocking and
    candidate restriction are applied to the SQL result rows), so declarative
    predicates are drop-in replacements in the engine, the approximate join
    and deduplication.
    """

    name: str = "declarative"
    family: str = "unspecified"
    #: Score semantics relevant to exact blocking (see
    #: :attr:`repro.core.predicates.base.Predicate.similarity_kind`).
    similarity_kind: str = "score"

    def __init__(
        self,
        backend: Optional[SQLBackend] = None,
        tokenizer: Optional[Tokenizer] = None,
        sql_tokenization: bool = False,
    ):
        self.backend = backend if backend is not None else MemoryBackend()
        self.tokenizer = tokenizer or QgramTokenizer(q=2)
        self.sql_tokenization = sql_tokenization
        self._strings: List[str] = []
        self._preprocessed = False
        self._blocker: Optional["Blocker"] = None
        self._restriction: Optional[Set[int]] = None
        #: Number of candidates scored by the most recent :meth:`rank` /
        #: :meth:`select` call (after blocking), as for direct predicates.
        self.last_num_candidates: Optional[int] = None
        #: Last query's raw ``(tid, score)`` rows, so :meth:`score` loops over
        #: one query (e.g. join verification) pay the SQL once.
        self._score_cache: Optional[Tuple[str, Dict[int, float]]] = None

    # -- preprocessing ----------------------------------------------------------

    def preprocess(self, strings: Sequence[str]) -> "DeclarativePredicate":
        """Materialize all base-relation tables this predicate needs."""
        self._strings = list(strings)
        self._score_cache = None
        token_tables.load_base_table(self.backend, self._strings)
        self.tokenize_phase()
        self.weight_phase()
        self._preprocessed = True
        if self._blocker is not None:
            self._fit_blocker(self._blocker)
        return self

    # Alias so declarative and direct predicates can be used interchangeably.
    fit = preprocess

    def tokenize_phase(self) -> None:
        """Populate ``BASE_TOKENS`` (Appendix A)."""
        if self.sql_tokenization:
            if not isinstance(self.tokenizer, QgramTokenizer):
                raise ValueError("sql_tokenization is only supported for q-gram tokenizers")
            token_tables.load_base_tokens_sql(self.backend, self._strings, self.tokenizer.q)
        else:
            token_tables.load_base_tokens_python(self.backend, self._strings, self.tokenizer)

    @abstractmethod
    def weight_phase(self) -> None:
        """Materialize the predicate-specific weight tables (Appendix B)."""

    # -- blocking ----------------------------------------------------------------

    @property
    def blocker(self) -> Optional["Blocker"]:
        """The candidate blocker attached to this predicate (``None`` = off)."""
        return self._blocker

    def set_blocker(self, blocker: Optional["Blocker"]) -> "DeclarativePredicate":
        """Attach a :class:`repro.blocking.Blocker` for candidate pruning.

        Declarative predicates compute scores in SQL, so the blocker prunes
        the returned candidate rows rather than the SQL itself; the semantics
        (exactness at the blocker's threshold, Jaccard-derived filters
        demoting to heuristics on other score kinds) match
        :meth:`repro.core.predicates.base.Predicate.set_blocker`.
        """
        if (
            blocker is not None
            and getattr(blocker, "semantics", "any") == "jaccard"
            and self.similarity_kind != "jaccard"
        ):
            import warnings

            warnings.warn(
                f"{type(blocker).__name__} derives its bounds from Jaccard "
                f"semantics; with the {self.name} predicate it is a heuristic "
                "and may drop candidates whose score reaches the threshold",
                UserWarning,
                stacklevel=2,
            )
        self._blocker = blocker
        self._score_cache = None
        if blocker is not None and self._preprocessed:
            self._fit_blocker(blocker)
        return self

    def _fit_blocker(self, blocker: "Blocker") -> None:
        blocker.fit(self._blocker_corpus(blocker))

    def _blocker_corpus(self, blocker: "Blocker") -> List[List[str]]:
        """Token lists the blocker is fitted on (the blocker's own tokenizer,
        exactly as for direct predicates without shared token lists)."""
        return blocker.tokenizer.tokenize_many(self._strings)

    def _blocker_query_tokens(self, query: str, blocker: "Blocker") -> Set[str]:
        return set(blocker.tokenizer.tokenize(query))

    @contextmanager
    def restrict_candidates(self, allowed: Optional[Set[int]]) -> Iterator[None]:
        """Scope queries to the given tuple ids (used by blocked self-joins)."""
        previous = self._restriction
        self._restriction = allowed
        self._score_cache = None
        try:
            yield
        finally:
            self._restriction = previous
            self._score_cache = None

    def _apply_candidate_filter(self, query: str, rows: List[Match]) -> List[Match]:
        """Apply the active restriction and blocker to scored SQL rows.

        Also records :attr:`last_num_candidates` (the number of candidates
        that survive, i.e. the per-query work a blocker saves).
        """
        blocker, restriction = self._blocker, self._restriction
        if blocker is not None or restriction is not None:
            allowed = {scored.tid for scored in rows}
            if restriction is not None:
                allowed &= set(restriction)
            if blocker is not None:
                allowed = blocker.prune(
                    self._blocker_query_tokens(query, blocker), allowed
                )
            rows = [scored for scored in rows if scored.tid in allowed]
        self.last_num_candidates = len(rows)
        return rows

    def _check_blocker_threshold(self, threshold: float) -> None:
        """Refuse selections below the threshold an exact blocker was built for."""
        if self._blocker is not None and not self._blocker.supports_threshold(threshold):
            raise ValueError(
                f"selection threshold {threshold} is below the threshold the "
                f"attached {self._blocker.name!r} blocker was built for; "
                "rebuild the blocker with the lower threshold"
            )

    # -- query time --------------------------------------------------------------

    @abstractmethod
    def query_scores(self, query: str) -> List[tuple]:
        """Run the query-time SQL; returns ``(tid, score)`` rows (unordered)."""

    def rank(self, query: str, limit: Optional[int] = None) -> List[Match]:
        """Tuples ranked by decreasing score, ties broken by tuple id."""
        self._require_preprocessed()
        rows = [
            Match(int(tid), float(score))
            for tid, score in self.query_scores(query)
            if score is not None
        ]
        rows = self._apply_candidate_filter(query, rows)
        rows.sort(key=lambda st: (-st.score, st.tid))
        if limit is not None:
            rows = rows[:limit]
        return rows

    def select(self, query: str, threshold: float) -> List[Match]:
        """Approximate selection with a similarity threshold."""
        self._check_blocker_threshold(threshold)
        return [scored for scored in self.rank(query) if scored.score >= threshold]

    def score(self, query: str, tid: int) -> float:
        """Similarity between ``query`` and tuple ``tid`` (0.0 if not scored).

        Sees the same candidates as :meth:`rank` (blocker and restriction
        applied) but skips the sort and caches the last query's rows, so
        scoring many tuples against one query (e.g. join verification) runs
        the SQL once.
        """
        self._require_preprocessed()
        cache = self._score_cache
        if cache is None or cache[0] != query:
            rows = [
                Match(int(t), float(s))
                for t, s in self.query_scores(query)
                if s is not None
            ]
            rows = self._apply_candidate_filter(query, rows)
            self._score_cache = cache = (query, {m.tid: m.score for m in rows})
        return cache[1].get(tid, 0.0)

    # -- helpers ----------------------------------------------------------------

    def load_query_tokens(self, query: str) -> None:
        token_tables.load_query_tokens(self.backend, query, self.tokenizer)

    @property
    def is_preprocessed(self) -> bool:
        return self._preprocessed

    @property
    def base_strings(self) -> List[str]:
        return list(self._strings)

    def _require_preprocessed(self) -> None:
        if not self._preprocessed:
            raise RuntimeError(
                f"{type(self).__name__} must preprocess() a base relation before querying"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(backend={self.backend.name})"
