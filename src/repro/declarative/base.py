"""Base class of the declarative predicate realizations."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from repro.backends.base import SQLBackend
from repro.backends.memory import MemoryBackend
from repro.core.predicates.base import ScoredTuple
from repro.declarative import tokens as token_tables
from repro.text.tokenize import QgramTokenizer, Tokenizer

__all__ = ["DeclarativePredicate"]


class DeclarativePredicate(ABC):
    """A similarity predicate realized as SQL over a :class:`SQLBackend`.

    Life cycle (mirroring chapter 4 of the paper):

    1. :meth:`preprocess` -- load ``BASE_TABLE``, tokenize into
       ``BASE_TOKENS`` (in Python or, when ``sql_tokenization=True``, with the
       Appendix A.1 SQL) and run the predicate's weight-materialization SQL.
    2. :meth:`rank` / :meth:`select` -- load ``QUERY_TOKENS`` for the query
       string, run the predicate's query-time SQL and return scored tuples.

    Subclasses implement :meth:`weight_phase` (the preprocessing SQL beyond
    tokenization) and :meth:`query_scores` (the query-time SQL).
    """

    name: str = "declarative"
    family: str = "unspecified"

    def __init__(
        self,
        backend: Optional[SQLBackend] = None,
        tokenizer: Optional[Tokenizer] = None,
        sql_tokenization: bool = False,
    ):
        self.backend = backend if backend is not None else MemoryBackend()
        self.tokenizer = tokenizer or QgramTokenizer(q=2)
        self.sql_tokenization = sql_tokenization
        self._strings: List[str] = []
        self._preprocessed = False

    # -- preprocessing ----------------------------------------------------------

    def preprocess(self, strings: Sequence[str]) -> "DeclarativePredicate":
        """Materialize all base-relation tables this predicate needs."""
        self._strings = list(strings)
        token_tables.load_base_table(self.backend, self._strings)
        self.tokenize_phase()
        self.weight_phase()
        self._preprocessed = True
        return self

    # Alias so declarative and direct predicates can be used interchangeably.
    fit = preprocess

    def tokenize_phase(self) -> None:
        """Populate ``BASE_TOKENS`` (Appendix A)."""
        if self.sql_tokenization:
            if not isinstance(self.tokenizer, QgramTokenizer):
                raise ValueError("sql_tokenization is only supported for q-gram tokenizers")
            token_tables.load_base_tokens_sql(self.backend, self._strings, self.tokenizer.q)
        else:
            token_tables.load_base_tokens_python(self.backend, self._strings, self.tokenizer)

    @abstractmethod
    def weight_phase(self) -> None:
        """Materialize the predicate-specific weight tables (Appendix B)."""

    # -- query time --------------------------------------------------------------

    @abstractmethod
    def query_scores(self, query: str) -> List[tuple]:
        """Run the query-time SQL; returns ``(tid, score)`` rows (unordered)."""

    def rank(self, query: str, limit: Optional[int] = None) -> List[ScoredTuple]:
        """Tuples ranked by decreasing score, ties broken by tuple id."""
        self._require_preprocessed()
        rows = [
            ScoredTuple(int(tid), float(score))
            for tid, score in self.query_scores(query)
            if score is not None
        ]
        rows.sort(key=lambda st: (-st.score, st.tid))
        if limit is not None:
            rows = rows[:limit]
        return rows

    def select(self, query: str, threshold: float) -> List[ScoredTuple]:
        """Approximate selection with a similarity threshold."""
        return [scored for scored in self.rank(query) if scored.score >= threshold]

    # -- helpers ----------------------------------------------------------------

    def load_query_tokens(self, query: str) -> None:
        token_tables.load_query_tokens(self.backend, query, self.tokenizer)

    @property
    def is_preprocessed(self) -> bool:
        return self._preprocessed

    def _require_preprocessed(self) -> None:
        if not self._preprocessed:
            raise RuntimeError(
                f"{type(self).__name__} must preprocess() a base relation before querying"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(backend={self.backend.name})"
