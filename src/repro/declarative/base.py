"""Base class of the declarative predicate realizations."""

from __future__ import annotations

from contextlib import contextmanager
from abc import ABC
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.backends.base import SQLBackend
from repro.backends.memory import MemoryBackend
from repro.core.predicates.base import Match
from repro.declarative import shared as shared_tables
from repro.declarative import tokens as token_tables
from repro.text.tokenize import QgramTokenizer, Tokenizer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.blocking.base import Blocker

__all__ = ["DeclarativePredicate", "SQLFastPathStats"]


@dataclass
class SQLFastPathStats:
    """Work counters of the most recent declarative query execution.

    The declarative analogue of the direct realization's
    :class:`repro.core.topk.PruningStats`: how many candidate rows the SQL
    returned versus the base-relation size, and which fast paths the
    statement used (``"batch"``, ``"order-by-limit"``, ``"length-filter"``,
    ``"prefix-filter"``).
    """

    rows_scored: int = 0
    base_size: int = 0
    fastpath: Tuple[str, ...] = ()

    @property
    def reduction_ratio(self) -> float:
        """Base tuples per returned candidate row (>= 1 when pruning bites)."""
        return self.base_size / self.rows_scored if self.rows_scored else float("inf")

    def describe(self) -> str:
        via = f" via {'+'.join(self.fastpath)}" if self.fastpath else ""
        return (
            f"{self.rows_scored}/{self.base_size} candidate rows returned by SQL{via}"
        )

    def publish(self, metrics) -> None:
        """Accumulate into a :class:`~repro.obs.metrics.MetricsRegistry`."""
        metrics.inc("sql_rows_scored", self.rows_scored)
        for path in self.fastpath:
            metrics.inc(f"sql_fastpath.{path}")


class DeclarativePredicate(ABC):
    """A similarity predicate realized as SQL over a :class:`SQLBackend`.

    Life cycle (mirroring chapter 4 of the paper):

    1. :meth:`preprocess` -- acquire the backend's *shared core* for the base
       relation (``BASE_TABLE``, ``BASE_TOKENS`` and the predicate-independent
       statistics tables, materialized once per (backend, relation, tokenizer)
       and reused across predicates -- see :mod:`repro.declarative.shared`),
       then run the predicate's :meth:`weight_phase`.
    2. :meth:`rank` / :meth:`select` / :meth:`run_many` -- load the query (or
       query batch) tables, run the predicate's query-time SQL and return
       scored tuples.

    Subclasses implement :meth:`weight_phase` (the preprocessing SQL beyond
    the shared tables) and the query-time SQL as either

    * :meth:`prepare_query` + :meth:`scores_sql` -- a single parameterized
      SELECT producing ``(tid, score)`` rows, which unlocks the ORDER
      BY/LIMIT top-k pushdown, or
    * an override of :meth:`query_scores` for predicates whose scoring cannot
      be one statement (the GES filter-verify predicates).

    Batched execution mirrors this with :meth:`prepare_batch` +
    :meth:`batch_scores_sql` (one statement per batch, grouped by ``qid``)
    behind :meth:`run_many` / :meth:`query_scores_batch`.

    ``fastpath=False`` restores the pre-fast-path behaviour (per-query
    statements, no shared-table indexes, no in-SQL pruning or pushdown) --
    used by the benchmarks as the baseline.

    The class satisfies the same
    :class:`repro.engine.protocol.SimilarityPredicateProtocol` as the direct
    predicates (``fit`` is an alias of :meth:`preprocess`; blocking and
    candidate restriction are applied to the SQL result rows), so declarative
    predicates are drop-in replacements in the engine, the approximate join
    and deduplication.
    """

    name: str = "declarative"
    family: str = "unspecified"
    #: Score semantics relevant to exact blocking (see
    #: :attr:`repro.core.predicates.base.Predicate.similarity_kind`).
    similarity_kind: str = "score"
    #: Whether scoring is one SELECT (:meth:`scores_sql` returns a statement).
    #: Families that post-process in Python (the GES filter-verify pair) set
    #: this to ``False`` so the pushdown paths skip them *before* loading the
    #: per-query tables, instead of preparing twice.
    single_statement: bool = True

    def __init__(
        self,
        backend: Optional[SQLBackend] = None,
        tokenizer: Optional[Tokenizer] = None,
        sql_tokenization: bool = False,
        fastpath: bool = True,
    ):
        self.backend = backend if backend is not None else MemoryBackend()
        self.tokenizer = tokenizer or QgramTokenizer(q=2)
        self.sql_tokenization = sql_tokenization
        #: Enables the declarative fast paths (shared-table indexes, batched
        #: SQL, ORDER BY/LIMIT pushdown, in-SQL candidate pruning).
        self.fastpath = bool(fastpath)
        self._strings: List[str] = []
        self._preprocessed = False
        self._blocker: Optional["Blocker"] = None
        self._restriction: Optional[Set[int]] = None
        #: Number of candidates scored by the most recent :meth:`rank` /
        #: :meth:`select` call (after blocking), as for direct predicates.
        #: Reset to ``None`` by :meth:`run_many` -- no single query's count
        #: describes a batch; the per-qid counts live in
        #: :attr:`last_batch_candidates` instead.
        self.last_num_candidates: Optional[int] = None
        #: Per-query candidate counts of the most recent :meth:`run_many`
        #: batch (``None`` before any batch ran).
        self.last_batch_candidates: Optional[List[int]] = None
        #: SQL-side work counters of the most recent query execution.
        self.last_sql_stats: Optional[SQLFastPathStats] = None
        #: Last query's raw ``(tid, score)`` rows, so :meth:`score` loops over
        #: one query (e.g. join verification) pay the SQL once.
        self._score_cache: Optional[Tuple[str, Dict[int, float]]] = None
        #: Shared core handle + the feature signatures recorded at fit time
        #: (stale when another predicate rebuilt a feature with other params).
        self._core: Optional[shared_tables.SharedTables] = None
        self._core_features: Dict[str, object] = {}

    # -- preprocessing ----------------------------------------------------------

    def preprocess(self, strings: Sequence[str]) -> "DeclarativePredicate":
        """Materialize all base-relation tables this predicate needs."""
        self._strings = list(strings)
        self._score_cache = None
        self._core = None
        self._core_features = {}
        self.tokenize_phase()
        self.weight_phase()
        self._preprocessed = True
        if self._blocker is not None:
            self._fit_blocker(self._blocker)
        return self

    # Alias so declarative and direct predicates can be used interchangeably.
    fit = preprocess

    def tokenize_phase(self) -> None:
        """Acquire the shared core tables (``BASE_TOKENS`` etc., Appendix A).

        The core is materialized on the first predicate that needs it and
        reused by every later predicate fitted on the same (backend, relation,
        tokenizer) -- fitting a second predicate pays no tokenization.
        """
        if self.sql_tokenization and not isinstance(self.tokenizer, QgramTokenizer):
            raise ValueError("sql_tokenization is only supported for q-gram tokenizers")
        self._core = shared_tables.acquire_core(
            self.backend,
            self._strings,
            self.tokenizer,
            sql_tokenization=self.sql_tokenization,
            indexes=self.fastpath,
        )
        self._core_features = {shared_tables.CORE: None}

    def weight_phase(self) -> None:
        """Materialize the predicate-specific weight tables (Appendix B).

        The default needs nothing beyond the shared core; subclasses call
        :meth:`require` for shared features and build their own tables.
        """

    def require(self, feature: str, sig: object = None, builder=None) -> None:
        """Materialize a shared feature (no-op when it already exists).

        The signature is recorded so :meth:`tables_stale` notices when a
        different predicate instance later rebuilds the feature with other
        parameters.
        """
        assert self._core is not None, "tokenize_phase() must run first"
        self._core.require(self.backend, feature, sig=sig, builder=builder)
        self._core_features[feature] = sig

    @property
    def core(self) -> shared_tables.SharedTables:
        """The shared core this predicate was fitted on."""
        if self._core is None:
            raise RuntimeError("predicate has no shared core before preprocess()")
        return self._core

    def tbl(self, base: str) -> str:
        """The namespaced name of a core/feature table (prefix-aware)."""
        return self._core.name(base) if self._core is not None else base

    def tables_stale(self) -> bool:
        """Whether another fit invalidated this predicate's tables.

        Cores never clobber each other (they are namespaced by prefix), so
        staleness only arises when the core was torn down
        (:func:`repro.declarative.shared.clear_shared_state`) or a shared
        feature was rebuilt with a different parameter signature.
        """
        core = self._core
        if not self._preprocessed or core is None:
            return False
        if core.dead:
            return True
        missing = object()
        return any(
            core.sigs.get(feature, missing) != sig
            for feature, sig in self._core_features.items()
        )

    # -- blocking ----------------------------------------------------------------

    @property
    def blocker(self) -> Optional["Blocker"]:
        """The candidate blocker attached to this predicate (``None`` = off)."""
        return self._blocker

    def set_blocker(self, blocker: Optional["Blocker"]) -> "DeclarativePredicate":
        """Attach a :class:`repro.blocking.Blocker` for candidate pruning.

        Declarative predicates compute scores in SQL, so the blocker prunes
        the returned candidate rows rather than the SQL itself; the semantics
        (exactness at the blocker's threshold, Jaccard-derived filters
        demoting to heuristics on other score kinds) match
        :meth:`repro.core.predicates.base.Predicate.set_blocker`.
        """
        if (
            blocker is not None
            and getattr(blocker, "semantics", "any") == "jaccard"
            and self.similarity_kind != "jaccard"
        ):
            import warnings

            warnings.warn(
                f"{type(blocker).__name__} derives its bounds from Jaccard "
                f"semantics; with the {self.name} predicate it is a heuristic "
                "and may drop candidates whose score reaches the threshold",
                UserWarning,
                stacklevel=2,
            )
        self._blocker = blocker
        self._score_cache = None
        if blocker is not None and self._preprocessed:
            self._fit_blocker(blocker)
        return self

    def _fit_blocker(self, blocker: "Blocker") -> None:
        blocker.fit(self._blocker_corpus(blocker))

    def _blocker_corpus(self, blocker: "Blocker") -> List[List[str]]:
        """Token lists the blocker is fitted on (the blocker's own tokenizer,
        exactly as for direct predicates without shared token lists)."""
        return blocker.tokenizer.tokenize_many(self._strings)

    def _blocker_query_tokens(self, query: str, blocker: "Blocker") -> Set[str]:
        return set(blocker.tokenizer.tokenize(query))

    @contextmanager
    def restrict_candidates(self, allowed: Optional[Set[int]]) -> Iterator[None]:
        """Scope queries to the given tuple ids (used by blocked self-joins)."""
        previous = self._restriction
        self._restriction = allowed
        self._score_cache = None
        try:
            yield
        finally:
            self._restriction = previous
            self._score_cache = None

    def _apply_candidate_filter(self, query: str, rows: List[Match]) -> List[Match]:
        """Apply the active restriction and blocker to scored SQL rows.

        Also records :attr:`last_num_candidates` (the number of candidates
        that survive, i.e. the per-query work a blocker saves).
        """
        blocker, restriction = self._blocker, self._restriction
        if blocker is not None or restriction is not None:
            allowed = {scored.tid for scored in rows}
            if restriction is not None:
                allowed &= set(restriction)
            if blocker is not None:
                allowed = blocker.prune(
                    self._blocker_query_tokens(query, blocker), allowed
                )
            rows = [scored for scored in rows if scored.tid in allowed]
        self.last_num_candidates = len(rows)
        return rows

    def _check_blocker_threshold(self, threshold: float) -> None:
        """Refuse selections below the threshold an exact blocker was built for."""
        if self._blocker is not None and not self._blocker.supports_threshold(threshold):
            raise ValueError(
                f"selection threshold {threshold} is below the threshold the "
                f"attached {self._blocker.name!r} blocker was built for; "
                "rebuild the blocker with the lower threshold"
            )

    # -- query-time SQL protocol -------------------------------------------------

    def prepare_query(self, query: str) -> None:
        """Load the per-query tables (default: ``QUERY_TOKENS(token)``)."""
        self.load_query_tokens(query)

    def scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        """The single-SELECT scorer as ``(sql, params)``, if expressible.

        The statement must produce ``(tid, score)`` rows over the tables
        :meth:`prepare_query` loaded.  Predicates that cannot score in one
        statement return ``None`` and override :meth:`query_scores` instead.
        """
        return None

    def query_scores(self, query: str) -> List[tuple]:
        """Run the query-time SQL; returns ``(tid, score)`` rows (unordered)."""
        self.prepare_query(query)
        pair = self.scores_sql()
        if pair is None:  # pragma: no cover - subclass contract violation
            raise NotImplementedError(
                f"{type(self).__name__} must implement scores_sql() or "
                "override query_scores()"
            )
        sql, params = pair
        return self.backend.query(sql, params or None)

    def prepare_batch(self, queries: Sequence[str]) -> None:
        """Load the per-batch tables (default: the ``QUERY_BATCH`` schema)."""
        token_tables.load_query_batch(self.backend, queries, self.tokenizer)

    def batch_scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        """The batched scorer as ``(sql, params)`` producing
        ``(qid, tid, score)`` rows, or ``None`` when the family has no
        batched statement (falls back to one statement per query)."""
        return None

    def query_scores_batch(self, queries: Sequence[str]) -> List[List[tuple]]:
        """Score a batch of queries; returns per-query ``(tid, score)`` rows.

        With a per-family batched statement available (and the fast path on),
        the whole batch runs as **one** SQL execution grouped by ``qid``.
        """
        queries = list(queries)
        self._last_batch_sql = False
        if not queries:
            return []
        if self.fastpath:
            self.prepare_batch(queries)
            pair = self.batch_scores_sql()
            if pair is not None:
                sql, params = pair
                rows = self.backend.query(sql, params or None)
                buckets: List[List[tuple]] = [[] for _ in queries]
                for qid, tid, score in rows:
                    buckets[int(qid)].append((tid, score))
                self._last_batch_sql = True
                return buckets
        return [self.query_scores(query) for query in queries]

    def _batch_topk_rows(
        self, queries: Sequence[str], k: int
    ) -> Optional[List[List[tuple]]]:
        """Batched top-k with the per-query cut inside the SQL.

        Wraps the family's batch statement in ``ROW_NUMBER() OVER (PARTITION
        BY qid ORDER BY score DESC, tid)`` so only ``k`` rows per query cross
        the SQL boundary -- exactly the rows the Python-side sort-and-trim
        would keep, in the same order.  Requires window-function support
        (SQLite; the in-memory engine falls back to the plain batch path).
        """
        if (
            not self.fastpath
            or not self.single_statement
            or self._blocker is not None
            or self._restriction is not None
            or not getattr(self.backend, "supports_window_functions", False)
        ):
            return None
        self.prepare_batch(queries)
        pair = self.batch_scores_sql()
        if pair is None:
            return None
        sql, params = pair
        wrapped = (
            "SELECT Y.qid, Y.tid, Y.score FROM "
            "(SELECT X.qid, X.tid, X.score, "
            "ROW_NUMBER() OVER (PARTITION BY X.qid "
            "                   ORDER BY X.score DESC, X.tid) AS rn "
            f"FROM ({sql}) X WHERE X.score IS NOT NULL) Y "
            f"WHERE Y.rn <= {int(k)} "
            "ORDER BY Y.qid, Y.rn"
        )
        rows = self.backend.query(wrapped, params or None)
        buckets: List[List[tuple]] = [[] for _ in queries]
        for qid, tid, score in rows:
            buckets[int(qid)].append((tid, score))
        self._last_batch_sql = True
        return buckets

    # -- query time --------------------------------------------------------------

    def rank(self, query: str, limit: Optional[int] = None) -> List[Match]:
        """Tuples ranked by decreasing score, ties broken by tuple id.

        With a ``limit`` (and no blocker/restriction in play) the ordering
        and the cut run *inside* the SQL statement -- ``ORDER BY score DESC,
        tid LIMIT k`` -- so only ``k`` rows ever cross the SQL boundary.  The
        pushed path returns exactly the rows of the unpushed one: both order
        by ``(-score, tid)`` over the same SQL-computed scores.
        """
        self._require_preprocessed()
        if (
            limit is not None
            and self.fastpath
            and self._blocker is None
            and self._restriction is None
        ):
            pushed = self._rank_pushdown(query, limit)
            if pushed is not None:
                return pushed
        rows = [
            Match(int(tid), float(score))
            for tid, score in self.query_scores(query)
            if score is not None
        ]
        rows = self._apply_candidate_filter(query, rows)
        self.last_sql_stats = SQLFastPathStats(
            rows_scored=len(rows), base_size=len(self._strings)
        )
        rows.sort(key=lambda st: (-st.score, st.tid))
        if limit is not None:
            rows = rows[:limit]
        return rows

    def _rank_pushdown(self, query: str, limit: int) -> Optional[List[Match]]:
        """ORDER BY/LIMIT pushed into the scoring SQL (single-SELECT families)."""
        if limit <= 0:
            return []
        if not self.single_statement:
            return None
        self.prepare_query(query)
        pair = self.scores_sql()
        if pair is None:
            return None
        sql, params = pair
        wrapped = (
            f"SELECT X.tid, X.score FROM ({sql}) X "
            f"WHERE X.score IS NOT NULL "
            f"ORDER BY X.score DESC, X.tid LIMIT {int(limit)}"
        )
        rows = self.backend.query(wrapped, params or None)
        # The SQL consumed the full candidate set internally; only the
        # returned rows are observable, which is what the stats report.
        self.last_num_candidates = len(rows)
        self.last_sql_stats = SQLFastPathStats(
            rows_scored=len(rows),
            base_size=len(self._strings),
            fastpath=("order-by-limit",),
        )
        return [Match(int(tid), float(score)) for tid, score in rows]

    def top_k(self, query: str, k: int) -> List[Match]:
        """The ``k`` most similar tuples (the declarative top-k fast path)."""
        if k < 0:
            raise ValueError("k must be non-negative")
        if k == 0:
            return []
        return self.rank(query, limit=k)

    def select(self, query: str, threshold: float) -> List[Match]:
        """Approximate selection with a similarity threshold."""
        self._check_blocker_threshold(threshold)
        return [scored for scored in self.rank(query) if scored.score >= threshold]

    def run_many(
        self,
        queries: Sequence[str],
        op: str = "rank",
        k: Optional[int] = None,
        threshold: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[List[Match]]:
        """Execute a query workload through the batched SQL path.

        ``op`` is ``"rank"`` (optionally with ``limit``), ``"top_k"`` (with
        ``k``) or ``"select"`` (with ``threshold``); semantics match calling
        the corresponding single-query method per query, but scoring runs as
        one SQL statement for the whole batch where the family supports it.
        """
        queries = list(queries)
        if op == "top_k":
            if k is None or k < 0:
                raise ValueError("op='top_k' requires a non-negative k")
            limit = k
        elif op == "select":
            if threshold is None:
                raise ValueError("op='select' requires a threshold")
            self._check_blocker_threshold(threshold)
        elif op != "rank":
            raise ValueError(
                f"unknown batch op {op!r}; expected 'rank', 'top_k' or 'select'"
            )
        self._require_preprocessed()
        per_query_rows = None
        in_sql_cut = False
        if limit is not None and queries:
            self._last_batch_sql = False
            per_query_rows = self._batch_topk_rows(queries, limit)
            in_sql_cut = per_query_rows is not None
        if per_query_rows is None:
            per_query_rows = self.query_scores_batch(queries)
        batched = getattr(self, "_last_batch_sql", False)
        results: List[List[Match]] = []
        per_query_candidates: List[int] = []
        total_rows = 0
        for query, raw in zip(queries, per_query_rows):
            rows = [
                Match(int(tid), float(score))
                for tid, score in raw
                if score is not None
            ]
            rows = self._apply_candidate_filter(query, rows)
            per_query_candidates.append(len(rows))
            total_rows += len(rows)
            rows.sort(key=lambda st: (-st.score, st.tid))
            if op == "select":
                rows = [match for match in rows if match.score >= threshold]
            elif limit is not None:
                rows = rows[:limit]
            results.append(rows)
        # One scalar cannot describe a batch: expose the per-qid counts and
        # reset the single-query counter so a later reader does not mistake
        # the batch's last (or a previous sequential call's) value for a
        # meaningful per-query statistic.
        self.last_batch_candidates = per_query_candidates
        self.last_num_candidates = None
        markers = []
        if batched:
            markers.append("batch")
        if in_sql_cut:
            markers.append("order-by-limit")
        self.last_sql_stats = SQLFastPathStats(
            rows_scored=total_rows,
            base_size=len(self._strings) * max(len(queries), 1),
            fastpath=tuple(markers),
        )
        return results

    def score(self, query: str, tid: int) -> float:
        """Similarity between ``query`` and tuple ``tid`` (0.0 if not scored).

        Sees the same candidates as :meth:`rank` (blocker and restriction
        applied) but skips the sort and caches the last query's rows, so
        scoring many tuples against one query (e.g. join verification) runs
        the SQL once.
        """
        self._require_preprocessed()
        cache = self._score_cache
        if cache is None or cache[0] != query:
            rows = [
                Match(int(t), float(s))
                for t, s in self.query_scores(query)
                if s is not None
            ]
            rows = self._apply_candidate_filter(query, rows)
            self._score_cache = cache = (query, {m.tid: m.score for m in rows})
        return cache[1].get(tid, 0.0)

    # -- helpers ----------------------------------------------------------------

    def load_query_tokens(self, query: str) -> None:
        token_tables.load_query_tokens(self.backend, query, self.tokenizer)

    @property
    def is_preprocessed(self) -> bool:
        return self._preprocessed

    @property
    def base_strings(self) -> List[str]:
        return list(self._strings)

    def _require_preprocessed(self) -> None:
        if not self._preprocessed:
            raise RuntimeError(
                f"{type(self).__name__} must preprocess() a base relation before querying"
            )
        if self.tables_stale():
            # Another fit rebuilt a shared feature this predicate depends on
            # (or the shared state was cleared): re-materialize before
            # answering from the wrong tables.  Near-free when the core and
            # untouched features survive.
            self.preprocess(self._strings)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(backend={self.backend.name})"
