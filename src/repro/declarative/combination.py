"""Declarative realizations of the combination predicates (Appendix B.4).

These predicates tokenize at two levels (words, then q-grams of each word).
The shared core therefore holds *word* tokens here (its own namespaced core,
independent of the q-gram cores of the other families); word-level q-grams,
idf weights and min-hash signatures are shared features on that core, so the
four combination predicates pay word preprocessing once.

* :class:`DeclarativeSoftTFIDF` follows Figure 4.7: Jaro-Winkler similarities
  between base and query words are computed with the ``JAROWINKLER`` UDF, the
  per-query-word maxima are materialized and the final score is a single
  aggregation.  The batched variant computes the word-similarity tables once
  over the *distinct words of the whole batch* -- words shared between
  queries are matched once -- before a per-``qid`` final aggregation.
* :class:`DeclarativeGESJaccard` and :class:`DeclarativeGESApx` implement the
  *filtering step* of Appendix B.4.1 / B.4.2 in SQL (q-gram Jaccard or
  min-hash similarity between words); candidates whose over-estimated score
  reaches the threshold are then verified with the exact GES computation,
  playing the role of the UDF in the original study.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.backends.base import SQLBackend
from repro.core.predicates.combination import GES
from repro.declarative.base import DeclarativePredicate
from repro.text.minhash import MinHasher
from repro.text.tokenize import Tokenizer, WordTokenizer, qgrams

__all__ = [
    "DeclarativeSoftTFIDF",
    "DeclarativeGES",
    "DeclarativeGESJaccard",
    "DeclarativeGESApx",
]


class _DeclarativeCombinationBase(DeclarativePredicate):
    """Shared word-level preprocessing for the combination predicates."""

    family = "combination"

    def __init__(
        self,
        backend: Optional[SQLBackend] = None,
        tokenizer: Optional[Tokenizer] = None,
        q: int = 2,
        **kwargs,
    ):
        super().__init__(backend=backend, tokenizer=tokenizer or WordTokenizer(), **kwargs)
        self.q = q

    # -- shared word-level features ----------------------------------------------

    def _require_idf_tables(self) -> None:
        """BASE_IDF / BASE_IDFAVG over word tokens (shared features)."""
        self.require("idf")
        self.require("idfavg")

    def _require_word_qgrams(self) -> None:
        """BASE_QGRAMS(tid, token, qgram) and BASE_TOKENSIZE(tid, token, len).

        Variant-named per ``q`` so instances with different q-gram sizes can
        share a backend without rebuilding each other's tables.
        """
        feature, suffix = self.core.variant("wordqgrams", self.q)
        self._qgrams_table = f"BASE_QGRAMS{suffix}"
        self._tokensize_table = f"BASE_TOKENSIZE{suffix}"
        qgrams_table, tokensize_table = self._qgrams_table, self._tokensize_table

        def _build(backend, core) -> None:
            rows = []
            seen = set()
            for tid, text in enumerate(self._strings):
                for word in set(self.tokenizer.tokenize(text)):
                    for gram in set(qgrams(word, self.q)):
                        key = (tid, word, gram)
                        if key not in seen:
                            seen.add(key)
                            rows.append(key)
            core.table(
                backend, qgrams_table, ["tid INTEGER", "token TEXT", "qgram TEXT"]
            )
            backend.insert_rows(core.name(qgrams_table), rows)
            core.index(backend, qgrams_table, "qgram")
            core.table(
                backend, tokensize_table, ["tid INTEGER", "token TEXT", "len INTEGER"]
            )
            backend.execute(
                f"INSERT INTO {core.name(tokensize_table)} (tid, token, len) "
                f"SELECT tid, token, COUNT(*) FROM {core.name(qgrams_table)} "
                "GROUP BY tid, token"
            )

        self.require(feature, sig=self.q, builder=_build)

    # -- query-side tables -------------------------------------------------------

    def _load_query_word_tables(self, query: str) -> List[str]:
        """QUERY_TOKENS (distinct words) and QUERY_QGRAMS(token, qgram)."""
        backend = self.backend
        words = list(dict.fromkeys(self.tokenizer.tokenize(query)))
        backend.recreate_table("QUERY_TOKENS", ["token TEXT"])
        backend.insert_rows("QUERY_TOKENS", [(word,) for word in words])
        backend.recreate_table("QUERY_QGRAMS", ["token TEXT", "qgram TEXT"])
        rows = []
        for word in words:
            for gram in set(qgrams(word, self.q)):
                rows.append((word, gram))
        backend.insert_rows("QUERY_QGRAMS", rows)
        return words

    def _load_batch_word_tables(self, queries: Sequence[str]) -> List[List[str]]:
        """The batched schema: distinct words and word q-grams per ``qid``."""
        backend = self.backend
        words_by_qid = [
            list(dict.fromkeys(self.tokenizer.tokenize(query))) for query in queries
        ]
        backend.recreate_table("QUERY_TOKENS", ["qid INTEGER", "token TEXT"])
        backend.insert_rows(
            "QUERY_TOKENS",
            [(qid, word) for qid, words in enumerate(words_by_qid) for word in words],
        )
        backend.recreate_table(
            "QUERY_QGRAMS", ["qid INTEGER", "token TEXT", "qgram TEXT"]
        )
        rows = []
        for qid, words in enumerate(words_by_qid):
            for word in words:
                for gram in set(qgrams(word, self.q)):
                    rows.append((qid, word, gram))
        backend.insert_rows("QUERY_QGRAMS", rows)
        return words_by_qid

    def _load_query_idf(self) -> None:
        """QUERY_IDF with the average-idf fallback for unseen tokens
        (Appendix B.4), plus SUM_IDF."""
        backend = self.backend
        idf, avg = self.tbl("BASE_IDF"), self.tbl("BASE_IDFAVG")
        backend.recreate_table("QUERY_IDF", ["token TEXT", "idf REAL"])
        backend.execute(
            "INSERT INTO QUERY_IDF (token, idf) "
            f"SELECT S.token, R.idf FROM QUERY_TOKENS S, {idf} R WHERE S.token = R.token "
            "UNION "
            f"SELECT S.token, A.idfavg FROM QUERY_TOKENS S, {avg} A "
            f"WHERE S.token NOT IN (SELECT I.token FROM {idf} I)"
        )
        backend.recreate_table("SUM_IDF", ["sumidf REAL"])
        backend.execute("INSERT INTO SUM_IDF (sumidf) SELECT SUM(idf) FROM QUERY_IDF")

    def _load_batch_idf(self) -> None:
        """Per-``qid`` QUERY_IDF / SUM_IDF over the batched word tables."""
        backend = self.backend
        idf, avg = self.tbl("BASE_IDF"), self.tbl("BASE_IDFAVG")
        backend.recreate_table("QUERY_IDF", ["qid INTEGER", "token TEXT", "idf REAL"])
        backend.execute(
            "INSERT INTO QUERY_IDF (qid, token, idf) "
            f"SELECT S.qid, S.token, R.idf FROM QUERY_TOKENS S, {idf} R "
            "WHERE S.token = R.token "
            "UNION "
            f"SELECT S.qid, S.token, A.idfavg FROM QUERY_TOKENS S, {avg} A "
            f"WHERE S.token NOT IN (SELECT I.token FROM {idf} I)"
        )
        backend.recreate_table("SUM_IDF", ["qid INTEGER", "sumidf REAL"])
        backend.execute(
            "INSERT INTO SUM_IDF (qid, sumidf) "
            "SELECT qid, SUM(idf) FROM QUERY_IDF GROUP BY qid"
        )


class DeclarativeSoftTFIDF(_DeclarativeCombinationBase):
    """SoftTFIDF with Jaro-Winkler word matching (Figure 4.7)."""

    name = "SoftTFIDF"

    def __init__(self, *args, theta: float = 0.8, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 <= theta <= 1.0:
            raise ValueError("theta must be within [0, 1]")
        self.theta = theta

    def weight_phase(self) -> None:
        self._require_idf_tables()
        # Document-side normalized tf-idf over words: the shared cosweights
        # feature (identical formulas to Cosine, applied to word tokens).
        self.require("cosweights")

    def _materialize_word_matches(self, word_source: str) -> None:
        """CLOSE_SIM_SCORES -> MAXSIM -> MAXTOKEN over the given word set.

        ``word_source`` is a subquery producing the distinct query words to
        match; batching passes the union over all queries so every distinct
        word is Jaro-Winkler-matched exactly once per batch.
        """
        backend = self.backend
        backend.recreate_table(
            "CLOSE_SIM_SCORES",
            ["tid INTEGER", "token1 TEXT", "token2 TEXT", "sim REAL"],
        )
        backend.execute(
            "INSERT INTO CLOSE_SIM_SCORES (tid, token1, token2, sim) "
            "SELECT R1.tid, R1.token, R2.token, JAROWINKLER(R1.token, R2.token) "
            f"FROM {self.tbl('BASE_TOKENS_DIST')} R1, {word_source} R2 "
            f"WHERE JAROWINKLER(R1.token, R2.token) > {self.theta}"
        )
        backend.recreate_table(
            "MAXSIM", ["tid INTEGER", "token2 TEXT", "maxsim REAL"]
        )
        backend.execute(
            "INSERT INTO MAXSIM (tid, token2, maxsim) "
            "SELECT tid, token2, MAX(sim) FROM CLOSE_SIM_SCORES GROUP BY tid, token2"
        )
        backend.recreate_table(
            "MAXTOKEN",
            ["tid INTEGER", "token1 TEXT", "token2 TEXT", "maxsim REAL"],
        )
        backend.execute(
            "INSERT INTO MAXTOKEN (tid, token1, token2, maxsim) "
            "SELECT CS.tid, CS.token1, CS.token2, MS.maxsim "
            "FROM MAXSIM MS, CLOSE_SIM_SCORES CS "
            "WHERE CS.tid = MS.tid AND CS.token2 = MS.token2 AND MS.maxsim = CS.sim"
        )

    def prepare_query(self, query: str) -> None:
        self._load_query_word_tables(query)
        self._load_query_idf()
        # Normalized tf-idf weights of the query words.
        backend = self.backend
        backend.recreate_table("QUERY_WEIGHTS", ["token TEXT", "weight REAL"])
        backend.execute(
            "INSERT INTO QUERY_WEIGHTS (token, weight) "
            "SELECT I.token, I.idf / L.length "
            "FROM QUERY_IDF I, "
            "(SELECT SQRT(SUM(Q.idf * Q.idf)) AS length FROM QUERY_IDF Q) L"
        )
        self._materialize_word_matches("QUERY_TOKENS")

    def scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        return (
            "SELECT TM.tid, SUM(WQ.weight * WB.weight * TM.maxsim) AS score "
            f"FROM MAXTOKEN TM, QUERY_WEIGHTS WQ, {self.tbl('BASE_COSW')} WB "
            "WHERE TM.token2 = WQ.token AND TM.tid = WB.tid AND TM.token1 = WB.token "
            "GROUP BY TM.tid",
            (),
        )

    def prepare_batch(self, queries: Sequence[str]) -> None:
        self._load_batch_word_tables(queries)
        self._load_batch_idf()
        backend = self.backend
        backend.recreate_table(
            "QUERY_WEIGHTS", ["qid INTEGER", "token TEXT", "weight REAL"]
        )
        backend.execute(
            "INSERT INTO QUERY_WEIGHTS (qid, token, weight) "
            "SELECT I.qid, I.token, I.idf / L.length "
            "FROM QUERY_IDF I, "
            "(SELECT qid, SQRT(SUM(idf * idf)) AS length FROM QUERY_IDF GROUP BY qid) L "
            "WHERE I.qid = L.qid"
        )
        # Word matching runs once over the distinct words of the whole batch.
        self._materialize_word_matches("(SELECT DISTINCT token FROM QUERY_TOKENS)")

    def batch_scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        return (
            "SELECT WQ.qid, TM.tid, SUM(WQ.weight * WB.weight * TM.maxsim) AS score "
            f"FROM MAXTOKEN TM, QUERY_WEIGHTS WQ, {self.tbl('BASE_COSW')} WB "
            "WHERE TM.token2 = WQ.token AND TM.tid = WB.tid AND TM.token1 = WB.token "
            "GROUP BY WQ.qid, TM.tid",
            (),
        )


class DeclarativeGES(_DeclarativeCombinationBase):
    """Plain GES computed with a registered UDF (paper section 4.5).

    The paper computes the exact generalized edit similarity with a UDF
    installed in the database server rather than with pure SQL; this
    realization does the same: candidate generation (tuples sharing at least
    one word q-gram with the query) runs in SQL over ``BASE_QGRAMS`` /
    ``QUERY_QGRAMS`` and a ``GESSCORE`` UDF -- registered on either backend --
    scores each candidate tuple with equation 3.14.
    """

    name = "GES"

    def __init__(self, *args, cins: float = 0.5, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 <= cins <= 1.0:
            raise ValueError("cins must be within [0, 1]")
        self.cins = cins
        #: exact GES scorer backing the UDF.
        self._verifier: Optional[GES] = None
        #: word tokens of the query currently being scored (set per query so
        #: the UDF does not re-tokenize the query for every candidate row).
        self._query_words: List[str] = []
        self._batch_words: List[List[str]] = []

    def weight_phase(self) -> None:
        self._require_idf_tables()
        self._require_word_qgrams()
        self._verifier = GES(q=self.q, cins=self.cins).fit(self._strings)

    def _ges_udf(self, tid: object) -> float:
        assert self._verifier is not None
        return self._verifier.ges_score(
            self._query_words, self._verifier._word_lists[int(tid)]
        )

    def _ges_batch_udf(self, qid: object, tid: object) -> float:
        assert self._verifier is not None
        return self._verifier.ges_score(
            self._batch_words[int(qid)], self._verifier._word_lists[int(tid)]
        )

    def prepare_query(self, query: str) -> None:
        self._load_query_word_tables(query)
        self._query_words = self.tokenizer.tokenize(query)
        # (Re)bound per query: several GES instances may share one backend,
        # so the UDF must resolve against *this* predicate's verifier.
        self.backend.register_function("GESSCORE", 1, self._ges_udf)

    def scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        return (
            "SELECT C.tid, GESSCORE(C.tid) AS score "
            "FROM (SELECT DISTINCT BQ.tid AS tid "
            f"      FROM {self.tbl(self._qgrams_table)} BQ, QUERY_QGRAMS Q "
            "      WHERE BQ.qgram = Q.qgram) C",
            (),
        )

    def prepare_batch(self, queries: Sequence[str]) -> None:
        self._load_batch_word_tables(queries)
        self._batch_words = [self.tokenizer.tokenize(query) for query in queries]
        self.backend.register_function("GESSCOREQ", 2, self._ges_batch_udf)

    def batch_scores_sql(self) -> Optional[Tuple[str, Tuple]]:
        return (
            "SELECT C.qid, C.tid, GESSCOREQ(C.qid, C.tid) AS score "
            "FROM (SELECT DISTINCT Q.qid AS qid, BQ.tid AS tid "
            f"      FROM {self.tbl(self._qgrams_table)} BQ, QUERY_QGRAMS Q "
            "      WHERE BQ.qgram = Q.qgram) C",
            (),
        )


class DeclarativeGESJaccard(_DeclarativeCombinationBase):
    """GES with the q-gram Jaccard filtering step of Appendix B.4.1."""

    name = "GESJaccard"
    #: SQL filters, Python verifies -- scoring is not one SELECT statement.
    single_statement = False

    def __init__(self, *args, threshold: float = 0.8, cins: float = 0.5, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be within [0, 1]")
        self.threshold = threshold
        self.cins = cins
        #: exact GES scorer used for the post-filter verification (the role
        #: played by a UDF in the original study).
        self._verifier: Optional[GES] = None

    def weight_phase(self) -> None:
        self._require_idf_tables()
        self._require_word_qgrams()
        self._verifier = GES(q=self.q, cins=self.cins).fit(self._strings)

    def _filter_sql(self) -> str:
        """The filtering-step SELECT: over-estimated GES score per tuple."""
        q = self.q
        return (
            "SELECT MAXSIM.tid AS tid, "
            f"(1.0 - 1.0 / {q}) + (1.0 / SI.sumidf) * "
            f"SUM(I.idf * (2.0 / {q}) * MAXSIM.maxsim) AS score "
            "FROM (SELECT JS.tid, JS.token2, MAX(JS.sim) AS maxsim "
            "      FROM (SELECT BSIZE.tid AS tid, BSIZE.token AS token1, Q.token AS token2, "
            "                   COUNT(*) * 1.0 / (BSIZE.len + QSIZE.len - COUNT(*)) AS sim "
            f"            FROM {self.tbl(self._qgrams_table)} BQ, "
            f"                 {self.tbl(self._tokensize_table)} BSIZE, QUERY_QGRAMS Q, "
            "                 (SELECT token, COUNT(*) AS len FROM QUERY_QGRAMS GROUP BY token) QSIZE "
            "            WHERE BQ.qgram = Q.qgram AND BQ.tid = BSIZE.tid AND BQ.token = BSIZE.token "
            "                  AND Q.token = QSIZE.token "
            "            GROUP BY BSIZE.tid, BSIZE.token, Q.token, BSIZE.len, QSIZE.len) JS "
            "      GROUP BY JS.tid, JS.token2) MAXSIM, "
            "     QUERY_IDF I, SUM_IDF SI "
            "WHERE MAXSIM.token2 = I.token "
            "GROUP BY MAXSIM.tid, SI.sumidf "
            f"HAVING (1.0 - 1.0 / {q}) + (1.0 / SI.sumidf) * "
            f"SUM(I.idf * (2.0 / {q}) * MAXSIM.maxsim) >= {self.threshold}"
        )

    def _batch_filter_sql(self) -> str:
        """The filtering-step SELECT grouped by ``qid`` (one per batch)."""
        q = self.q
        return (
            "SELECT MAXSIM.qid AS qid, MAXSIM.tid AS tid, "
            f"(1.0 - 1.0 / {q}) + (1.0 / SI.sumidf) * "
            f"SUM(I.idf * (2.0 / {q}) * MAXSIM.maxsim) AS score "
            "FROM (SELECT JS.qid, JS.tid, JS.token2, MAX(JS.sim) AS maxsim "
            "      FROM (SELECT Q.qid AS qid, BSIZE.tid AS tid, BSIZE.token AS token1, "
            "                   Q.token AS token2, "
            "                   COUNT(*) * 1.0 / (BSIZE.len + QSIZE.len - COUNT(*)) AS sim "
            f"            FROM {self.tbl(self._qgrams_table)} BQ, "
            f"                 {self.tbl(self._tokensize_table)} BSIZE, QUERY_QGRAMS Q, "
            "                 (SELECT qid, token, COUNT(*) AS len FROM QUERY_QGRAMS "
            "                  GROUP BY qid, token) QSIZE "
            "            WHERE BQ.qgram = Q.qgram AND BQ.tid = BSIZE.tid AND BQ.token = BSIZE.token "
            "                  AND Q.qid = QSIZE.qid AND Q.token = QSIZE.token "
            "            GROUP BY Q.qid, BSIZE.tid, BSIZE.token, Q.token, BSIZE.len, QSIZE.len) JS "
            "      GROUP BY JS.qid, JS.tid, JS.token2) MAXSIM, "
            "     QUERY_IDF I, SUM_IDF SI "
            "WHERE MAXSIM.token2 = I.token AND MAXSIM.qid = I.qid AND MAXSIM.qid = SI.qid "
            "GROUP BY MAXSIM.qid, MAXSIM.tid, SI.sumidf "
            f"HAVING (1.0 - 1.0 / {q}) + (1.0 / SI.sumidf) * "
            f"SUM(I.idf * (2.0 / {q}) * MAXSIM.maxsim) >= {self.threshold}"
        )

    def _verify(self, query_words: List[str], tid: int) -> float:
        assert self._verifier is not None
        return self._verifier.ges_score(query_words, self._verifier._word_lists[tid])

    def prepare_query(self, query: str) -> None:
        self._load_query_word_tables(query)
        self._load_query_idf()

    def query_scores(self, query: str) -> List[tuple]:
        assert self._verifier is not None
        self.prepare_query(query)
        candidates = self.backend.query(self._filter_sql())
        query_words = self.tokenizer.tokenize(query)
        return [
            (int(tid), self._verify(query_words, int(tid)))
            for tid, _filter_score in candidates
        ]

    def prepare_batch(self, queries: Sequence[str]) -> None:
        self._load_batch_word_tables(queries)
        self._load_batch_idf()

    def query_scores_batch(self, queries: Sequence[str]) -> List[List[tuple]]:
        """One filtering statement for the whole batch, then exact verification."""
        queries = list(queries)
        self._last_batch_sql = False
        if not queries:
            return []
        if not self.fastpath:
            return [self.query_scores(query) for query in queries]
        assert self._verifier is not None
        self.prepare_batch(queries)
        candidates = self.backend.query(self._batch_filter_sql())
        self._last_batch_sql = True
        words_by_qid = [self.tokenizer.tokenize(query) for query in queries]
        buckets: List[List[tuple]] = [[] for _ in queries]
        for qid, tid, _filter_score in candidates:
            qid, tid = int(qid), int(tid)
            buckets[qid].append((tid, self._verify(words_by_qid[qid], tid)))
        return buckets


class DeclarativeGESApx(DeclarativeGESJaccard):
    """GES with the min-hash filtering step of Appendix B.4.2."""

    name = "GESapx"

    def __init__(self, *args, num_hashes: int = 5, seed: int = 20070411, **kwargs):
        super().__init__(*args, **kwargs)
        self.hasher = MinHasher(num_hashes=num_hashes, seed=seed)

    def weight_phase(self) -> None:
        super().weight_phase()
        sig = (self.q, self.hasher.num_hashes, self.hasher.seed)
        feature, suffix = self.core.variant("minhash", sig)
        self._minhash_table = f"BASE_MINHASH{suffix}"
        table = self._minhash_table

        # BASE_MINHASH(token, fid, value): min-hash signature per distinct word.
        def _build(backend, core) -> None:
            rows = []
            seen = set()
            for text in self._strings:
                for word in self.tokenizer.tokenize(text):
                    if word in seen:
                        continue
                    seen.add(word)
                    signature = self.hasher.signature(qgrams(word, self.q))
                    for fid, value in enumerate(signature):
                        rows.append((word, fid, value))
            core.table(backend, table, ["token TEXT", "fid INTEGER", "value INTEGER"])
            backend.insert_rows(core.name(table), rows)
            core.index(backend, table, "token")

        self.require(feature, sig=sig, builder=_build)

    def _load_query_minhash(self, keyed_words: List[tuple], batched: bool) -> None:
        """``QUERY_MINHASH`` rows; ``keyed_words`` holds ``(qid, word)`` pairs
        (``qid`` is dropped again for the single-query schema)."""
        backend = self.backend
        columns = ["token TEXT", "fid INTEGER", "value INTEGER"]
        if batched:
            columns.insert(0, "qid INTEGER")
        backend.recreate_table("QUERY_MINHASH", columns)
        rows = []
        for qid, word in keyed_words:
            signature = self.hasher.signature(qgrams(word, self.q))
            for fid, value in enumerate(signature):
                row = (word, fid, value)
                rows.append((qid,) + row if batched else row)
        backend.insert_rows("QUERY_MINHASH", rows)

    def _filter_sql(self) -> str:
        q = self.q
        num_hashes = self.hasher.num_hashes
        return (
            "SELECT MAXSIM.tid AS tid, "
            f"(1.0 - 1.0 / {q}) + (1.0 / SI.sumidf) * "
            f"SUM(I.idf * (2.0 / {q}) * MAXSIM.maxsim) AS score "
            "FROM (SELECT MH.tid, MH.token2, MAX(MH.sim) AS maxsim "
            "      FROM (SELECT D.tid AS tid, D.token AS token1, QS.token AS token2, "
            f"                  COUNT(*) * 1.0 / {num_hashes} AS sim "
            f"            FROM {self.tbl('BASE_TOKENS_DIST')} D, "
            f"                 {self.tbl(self._minhash_table)} BS, QUERY_MINHASH QS "
            "            WHERE D.token = BS.token AND BS.fid = QS.fid AND BS.value = QS.value "
            "            GROUP BY D.tid, D.token, QS.token) MH "
            "      GROUP BY MH.tid, MH.token2) MAXSIM, "
            "     QUERY_IDF I, SUM_IDF SI "
            "WHERE MAXSIM.token2 = I.token "
            "GROUP BY MAXSIM.tid, SI.sumidf "
            f"HAVING (1.0 - 1.0 / {q}) + (1.0 / SI.sumidf) * "
            f"SUM(I.idf * (2.0 / {q}) * MAXSIM.maxsim) >= {self.threshold}"
        )

    def _batch_filter_sql(self) -> str:
        q = self.q
        num_hashes = self.hasher.num_hashes
        return (
            "SELECT MAXSIM.qid AS qid, MAXSIM.tid AS tid, "
            f"(1.0 - 1.0 / {q}) + (1.0 / SI.sumidf) * "
            f"SUM(I.idf * (2.0 / {q}) * MAXSIM.maxsim) AS score "
            "FROM (SELECT MH.qid, MH.tid, MH.token2, MAX(MH.sim) AS maxsim "
            "      FROM (SELECT QS.qid AS qid, D.tid AS tid, D.token AS token1, "
            "                   QS.token AS token2, "
            f"                  COUNT(*) * 1.0 / {num_hashes} AS sim "
            f"            FROM {self.tbl('BASE_TOKENS_DIST')} D, "
            f"                 {self.tbl(self._minhash_table)} BS, QUERY_MINHASH QS "
            "            WHERE D.token = BS.token AND BS.fid = QS.fid AND BS.value = QS.value "
            "            GROUP BY QS.qid, D.tid, D.token, QS.token) MH "
            "      GROUP BY MH.qid, MH.tid, MH.token2) MAXSIM, "
            "     QUERY_IDF I, SUM_IDF SI "
            "WHERE MAXSIM.token2 = I.token AND MAXSIM.qid = I.qid AND MAXSIM.qid = SI.qid "
            "GROUP BY MAXSIM.qid, MAXSIM.tid, SI.sumidf "
            f"HAVING (1.0 - 1.0 / {q}) + (1.0 / SI.sumidf) * "
            f"SUM(I.idf * (2.0 / {q}) * MAXSIM.maxsim) >= {self.threshold}"
        )

    def prepare_query(self, query: str) -> None:
        words = self._load_query_word_tables(query)
        self._load_query_idf()
        self._load_query_minhash([(0, word) for word in words], batched=False)

    def prepare_batch(self, queries: Sequence[str]) -> None:
        words_by_qid = self._load_batch_word_tables(queries)
        self._load_batch_idf()
        self._load_query_minhash(
            [(qid, word) for qid, words in enumerate(words_by_qid) for word in words],
            batched=True,
        )
