"""Declarative realizations of the combination predicates (Appendix B.4).

These predicates tokenize at two levels (words, then q-grams of each word).
``BASE_TOKENS`` therefore holds *word* tokens here, and preprocessing
additionally materializes ``BASE_QGRAMS`` (q-grams per word), idf weights of
words and per-word q-gram counts.

* :class:`DeclarativeSoftTFIDF` follows Figure 4.7: Jaro-Winkler similarities
  between base and query words are computed with the ``JAROWINKLER`` UDF, the
  per-query-word maxima are materialized and the final score is a single
  aggregation.
* :class:`DeclarativeGESJaccard` and :class:`DeclarativeGESApx` implement the
  *filtering step* of Appendix B.4.1 / B.4.2 in SQL (q-gram Jaccard or
  min-hash similarity between words); candidates whose over-estimated score
  reaches the threshold are then verified with the exact GES computation,
  playing the role of the UDF in the original study.
"""

from __future__ import annotations

from typing import List, Optional

from repro.backends.base import SQLBackend
from repro.core.predicates.combination import GES
from repro.declarative.base import DeclarativePredicate
from repro.text.minhash import MinHasher
from repro.text.tokenize import Tokenizer, WordTokenizer, qgrams

__all__ = [
    "DeclarativeSoftTFIDF",
    "DeclarativeGES",
    "DeclarativeGESJaccard",
    "DeclarativeGESApx",
]


class _DeclarativeCombinationBase(DeclarativePredicate):
    """Shared word-level preprocessing for the combination predicates."""

    family = "combination"

    def __init__(
        self,
        backend: Optional[SQLBackend] = None,
        tokenizer: Optional[Tokenizer] = None,
        q: int = 2,
    ):
        super().__init__(backend=backend, tokenizer=tokenizer or WordTokenizer())
        self.q = q

    def _materialize_word_tables(self) -> None:
        """BASE_SIZE, BASE_IDF, BASE_IDFAVG over word tokens."""
        backend = self.backend
        backend.recreate_table("BASE_SIZE", ["size INTEGER"])
        backend.execute("INSERT INTO BASE_SIZE (size) SELECT COUNT(*) FROM BASE_TABLE")
        backend.recreate_table("BASE_IDF", ["token TEXT", "idf REAL"])
        backend.execute(
            "INSERT INTO BASE_IDF (token, idf) "
            "SELECT T.token, LOG(S.size) - LOG(COUNT(DISTINCT T.tid)) "
            "FROM BASE_TOKENS T, BASE_SIZE S GROUP BY T.token, S.size"
        )
        backend.recreate_table("BASE_IDFAVG", ["idfavg REAL"])
        backend.execute("INSERT INTO BASE_IDFAVG (idfavg) SELECT AVG(idf) FROM BASE_IDF")
        backend.recreate_table("BASE_TOKENS_DIST", ["tid INTEGER", "token TEXT"])
        backend.execute(
            "INSERT INTO BASE_TOKENS_DIST (tid, token) "
            "SELECT DISTINCT tid, token FROM BASE_TOKENS"
        )

    def _materialize_word_qgrams(self) -> None:
        """BASE_QGRAMS(tid, token, qgram) and BASE_TOKENSIZE(tid, token, len)."""
        backend = self.backend
        backend.recreate_table(
            "BASE_QGRAMS", ["tid INTEGER", "token TEXT", "qgram TEXT"]
        )
        rows = []
        seen = set()
        for tid, text in enumerate(self._strings):
            for word in set(self.tokenizer.tokenize(text)):
                for gram in set(qgrams(word, self.q)):
                    key = (tid, word, gram)
                    if key not in seen:
                        seen.add(key)
                        rows.append(key)
        backend.insert_rows("BASE_QGRAMS", rows)
        backend.recreate_table(
            "BASE_TOKENSIZE", ["tid INTEGER", "token TEXT", "len INTEGER"]
        )
        backend.execute(
            "INSERT INTO BASE_TOKENSIZE (tid, token, len) "
            "SELECT tid, token, COUNT(*) FROM BASE_QGRAMS GROUP BY tid, token"
        )

    def _load_query_word_tables(self, query: str) -> List[str]:
        """QUERY_TOKENS (distinct words) and QUERY_QGRAMS(token, qgram)."""
        backend = self.backend
        words = list(dict.fromkeys(self.tokenizer.tokenize(query)))
        backend.recreate_table("QUERY_TOKENS", ["token TEXT"])
        backend.insert_rows("QUERY_TOKENS", [(word,) for word in words])
        backend.recreate_table("QUERY_QGRAMS", ["token TEXT", "qgram TEXT"])
        rows = []
        for word in words:
            for gram in set(qgrams(word, self.q)):
                rows.append((word, gram))
        backend.insert_rows("QUERY_QGRAMS", rows)
        return words

    # QUERY_IDF with the average-idf fallback for unseen tokens (Appendix B.4).
    _QUERY_IDF_SQL = (
        "INSERT INTO QUERY_IDF (token, idf) "
        "SELECT S.token, R.idf FROM QUERY_TOKENS S, BASE_IDF R WHERE S.token = R.token "
        "UNION "
        "SELECT S.token, A.idfavg FROM QUERY_TOKENS S, BASE_IDFAVG A "
        "WHERE S.token NOT IN (SELECT I.token FROM BASE_IDF I)"
    )

    def _load_query_idf(self) -> None:
        backend = self.backend
        backend.recreate_table("QUERY_IDF", ["token TEXT", "idf REAL"])
        backend.execute(self._QUERY_IDF_SQL)
        backend.recreate_table("SUM_IDF", ["sumidf REAL"])
        backend.execute("INSERT INTO SUM_IDF (sumidf) SELECT SUM(idf) FROM QUERY_IDF")


class DeclarativeSoftTFIDF(_DeclarativeCombinationBase):
    """SoftTFIDF with Jaro-Winkler word matching (Figure 4.7)."""

    name = "SoftTFIDF"

    def __init__(self, *args, theta: float = 0.8, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 <= theta <= 1.0:
            raise ValueError("theta must be within [0, 1]")
        self.theta = theta

    def weight_phase(self) -> None:
        backend = self.backend
        self._materialize_word_tables()
        backend.recreate_table("BASE_TF", ["tid INTEGER", "token TEXT", "tf INTEGER"])
        backend.execute(
            "INSERT INTO BASE_TF (tid, token, tf) "
            "SELECT T.tid, T.token, COUNT(*) FROM BASE_TOKENS T GROUP BY T.tid, T.token"
        )
        backend.recreate_table("BASE_LENGTH", ["tid INTEGER", "len REAL"])
        backend.execute(
            "INSERT INTO BASE_LENGTH (tid, len) "
            "SELECT T.tid, SQRT(SUM(I.idf * I.idf * T.tf * T.tf)) "
            "FROM BASE_IDF I, BASE_TF T WHERE I.token = T.token GROUP BY T.tid"
        )
        backend.recreate_table(
            "BASE_WEIGHTS", ["tid INTEGER", "token TEXT", "weight REAL"]
        )
        backend.execute(
            "INSERT INTO BASE_WEIGHTS (tid, token, weight) "
            "SELECT T.tid, T.token, I.idf * T.tf / L.len "
            "FROM BASE_IDF I, BASE_TF T, BASE_LENGTH L "
            "WHERE I.token = T.token AND T.tid = L.tid"
        )

    def query_scores(self, query: str) -> List[tuple]:
        backend = self.backend
        self._load_query_word_tables(query)
        self._load_query_idf()

        # Normalized tf-idf weights of the query words.
        backend.recreate_table("QUERY_WEIGHTS", ["token TEXT", "weight REAL"])
        backend.execute(
            "INSERT INTO QUERY_WEIGHTS (token, weight) "
            "SELECT I.token, I.idf / L.length "
            "FROM QUERY_IDF I, "
            "(SELECT SQRT(SUM(Q.idf * Q.idf)) AS length FROM QUERY_IDF Q) L"
        )

        # Jaro-Winkler similarities above theta between base and query words.
        backend.recreate_table(
            "CLOSE_SIM_SCORES",
            ["tid INTEGER", "token1 TEXT", "token2 TEXT", "sim REAL"],
        )
        backend.execute(
            "INSERT INTO CLOSE_SIM_SCORES (tid, token1, token2, sim) "
            "SELECT R1.tid, R1.token, R2.token, JAROWINKLER(R1.token, R2.token) "
            "FROM BASE_TOKENS_DIST R1, QUERY_TOKENS R2 "
            f"WHERE JAROWINKLER(R1.token, R2.token) > {self.theta}"
        )
        backend.recreate_table(
            "MAXSIM", ["tid INTEGER", "token2 TEXT", "maxsim REAL"]
        )
        backend.execute(
            "INSERT INTO MAXSIM (tid, token2, maxsim) "
            "SELECT tid, token2, MAX(sim) FROM CLOSE_SIM_SCORES GROUP BY tid, token2"
        )
        backend.recreate_table(
            "MAXTOKEN",
            ["tid INTEGER", "token1 TEXT", "token2 TEXT", "maxsim REAL"],
        )
        backend.execute(
            "INSERT INTO MAXTOKEN (tid, token1, token2, maxsim) "
            "SELECT CS.tid, CS.token1, CS.token2, MS.maxsim "
            "FROM MAXSIM MS, CLOSE_SIM_SCORES CS "
            "WHERE CS.tid = MS.tid AND CS.token2 = MS.token2 AND MS.maxsim = CS.sim"
        )
        return backend.query(
            "SELECT TM.tid, SUM(WQ.weight * WB.weight * TM.maxsim) AS score "
            "FROM MAXTOKEN TM, QUERY_WEIGHTS WQ, BASE_WEIGHTS WB "
            "WHERE TM.token2 = WQ.token AND TM.tid = WB.tid AND TM.token1 = WB.token "
            "GROUP BY TM.tid"
        )


class DeclarativeGES(_DeclarativeCombinationBase):
    """Plain GES computed with a registered UDF (paper section 4.5).

    The paper computes the exact generalized edit similarity with a UDF
    installed in the database server rather than with pure SQL; this
    realization does the same: candidate generation (tuples sharing at least
    one word q-gram with the query) runs in SQL over ``BASE_QGRAMS`` /
    ``QUERY_QGRAMS`` and a ``GESSCORE`` UDF -- registered on either backend --
    scores each candidate tuple with equation 3.14.
    """

    name = "GES"

    def __init__(self, *args, cins: float = 0.5, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 <= cins <= 1.0:
            raise ValueError("cins must be within [0, 1]")
        self.cins = cins
        #: exact GES scorer backing the UDF.
        self._verifier: Optional[GES] = None
        #: word tokens of the query currently being scored (set per query so
        #: the UDF does not re-tokenize the query for every candidate row).
        self._query_words: List[str] = []

    def weight_phase(self) -> None:
        self._materialize_word_tables()
        self._materialize_word_qgrams()
        self._verifier = GES(q=self.q, cins=self.cins).fit(self._strings)
        self.backend.register_function("GESSCORE", 1, self._ges_udf)

    def _ges_udf(self, tid: object) -> float:
        assert self._verifier is not None
        return self._verifier.ges_score(
            self._query_words, self._verifier._word_lists[int(tid)]
        )

    def query_scores(self, query: str) -> List[tuple]:
        self._load_query_word_tables(query)
        self._query_words = self.tokenizer.tokenize(query)
        return self.backend.query(
            "SELECT C.tid, GESSCORE(C.tid) AS score "
            "FROM (SELECT DISTINCT BQ.tid AS tid FROM BASE_QGRAMS BQ, QUERY_QGRAMS Q "
            "      WHERE BQ.qgram = Q.qgram) C"
        )


class DeclarativeGESJaccard(_DeclarativeCombinationBase):
    """GES with the q-gram Jaccard filtering step of Appendix B.4.1."""

    name = "GESJaccard"

    def __init__(self, *args, threshold: float = 0.8, cins: float = 0.5, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be within [0, 1]")
        self.threshold = threshold
        self.cins = cins
        #: exact GES scorer used for the post-filter verification (the role
        #: played by a UDF in the original study).
        self._verifier: Optional[GES] = None

    def weight_phase(self) -> None:
        self._materialize_word_tables()
        self._materialize_word_qgrams()
        self._verifier = GES(q=self.q, cins=self.cins).fit(self._strings)

    def _filter_sql(self) -> str:
        """The filtering-step SELECT: over-estimated GES score per tuple."""
        q = self.q
        return (
            "SELECT MAXSIM.tid AS tid, "
            f"(1.0 - 1.0 / {q}) + (1.0 / SI.sumidf) * "
            f"SUM(I.idf * (2.0 / {q}) * MAXSIM.maxsim) AS score "
            "FROM (SELECT JS.tid, JS.token2, MAX(JS.sim) AS maxsim "
            "      FROM (SELECT BSIZE.tid AS tid, BSIZE.token AS token1, Q.token AS token2, "
            "                   COUNT(*) * 1.0 / (BSIZE.len + QSIZE.len - COUNT(*)) AS sim "
            "            FROM BASE_QGRAMS BQ, BASE_TOKENSIZE BSIZE, QUERY_QGRAMS Q, "
            "                 (SELECT token, COUNT(*) AS len FROM QUERY_QGRAMS GROUP BY token) QSIZE "
            "            WHERE BQ.qgram = Q.qgram AND BQ.tid = BSIZE.tid AND BQ.token = BSIZE.token "
            "                  AND Q.token = QSIZE.token "
            "            GROUP BY BSIZE.tid, BSIZE.token, Q.token, BSIZE.len, QSIZE.len) JS "
            "      GROUP BY JS.tid, JS.token2) MAXSIM, "
            "     QUERY_IDF I, SUM_IDF SI "
            "WHERE MAXSIM.token2 = I.token "
            "GROUP BY MAXSIM.tid, SI.sumidf "
            f"HAVING (1.0 - 1.0 / {q}) + (1.0 / SI.sumidf) * "
            f"SUM(I.idf * (2.0 / {q}) * MAXSIM.maxsim) >= {self.threshold}"
        )

    def query_scores(self, query: str) -> List[tuple]:
        assert self._verifier is not None
        self._load_query_word_tables(query)
        self._load_query_idf()
        candidates = self.backend.query(self._filter_sql())
        query_words = self.tokenizer.tokenize(query)
        results = []
        for tid, _filter_score in candidates:
            tid = int(tid)
            exact = self._verifier.ges_score(
                query_words, self._verifier._word_lists[tid]
            )
            results.append((tid, exact))
        return results


class DeclarativeGESApx(DeclarativeGESJaccard):
    """GES with the min-hash filtering step of Appendix B.4.2."""

    name = "GESapx"

    def __init__(self, *args, num_hashes: int = 5, seed: int = 20070411, **kwargs):
        super().__init__(*args, **kwargs)
        self.hasher = MinHasher(num_hashes=num_hashes, seed=seed)

    def weight_phase(self) -> None:
        super().weight_phase()
        # BASE_MINHASH(token, fid, value): min-hash signature per distinct word.
        backend = self.backend
        backend.recreate_table(
            "BASE_MINHASH", ["token TEXT", "fid INTEGER", "value INTEGER"]
        )
        rows = []
        seen = set()
        for text in self._strings:
            for word in self.tokenizer.tokenize(text):
                if word in seen:
                    continue
                seen.add(word)
                signature = self.hasher.signature(qgrams(word, self.q))
                for fid, value in enumerate(signature):
                    rows.append((word, fid, value))
        backend.insert_rows("BASE_MINHASH", rows)

    def _load_query_minhash(self, words: List[str]) -> None:
        backend = self.backend
        backend.recreate_table(
            "QUERY_MINHASH", ["token TEXT", "fid INTEGER", "value INTEGER"]
        )
        rows = []
        for word in words:
            signature = self.hasher.signature(qgrams(word, self.q))
            for fid, value in enumerate(signature):
                rows.append((word, fid, value))
        backend.insert_rows("QUERY_MINHASH", rows)

    def _filter_sql(self) -> str:
        q = self.q
        num_hashes = self.hasher.num_hashes
        return (
            "SELECT MAXSIM.tid AS tid, "
            f"(1.0 - 1.0 / {q}) + (1.0 / SI.sumidf) * "
            f"SUM(I.idf * (2.0 / {q}) * MAXSIM.maxsim) AS score "
            "FROM (SELECT MH.tid, MH.token2, MAX(MH.sim) AS maxsim "
            "      FROM (SELECT D.tid AS tid, D.token AS token1, QS.token AS token2, "
            f"                  COUNT(*) * 1.0 / {num_hashes} AS sim "
            "            FROM BASE_TOKENS_DIST D, BASE_MINHASH BS, QUERY_MINHASH QS "
            "            WHERE D.token = BS.token AND BS.fid = QS.fid AND BS.value = QS.value "
            "            GROUP BY D.tid, D.token, QS.token) MH "
            "      GROUP BY MH.tid, MH.token2) MAXSIM, "
            "     QUERY_IDF I, SUM_IDF SI "
            "WHERE MAXSIM.token2 = I.token "
            "GROUP BY MAXSIM.tid, SI.sumidf "
            f"HAVING (1.0 - 1.0 / {q}) + (1.0 / SI.sumidf) * "
            f"SUM(I.idf * (2.0 / {q}) * MAXSIM.maxsim) >= {self.threshold}"
        )

    def query_scores(self, query: str) -> List[tuple]:
        assert self._verifier is not None
        words = self._load_query_word_tables(query)
        self._load_query_idf()
        self._load_query_minhash(words)
        candidates = self.backend.query(self._filter_sql())
        query_words = self.tokenizer.tokenize(query)
        results = []
        for tid, _filter_score in candidates:
            tid = int(tid)
            exact = self._verifier.ges_score(
                query_words, self._verifier._word_lists[tid]
            )
            results.append((tid, exact))
        return results
