"""Registry of declarative predicate realizations."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.declarative.aggregate import DeclarativeBM25, DeclarativeCosine
from repro.declarative.base import DeclarativePredicate
from repro.declarative.combination import (
    DeclarativeGESApx,
    DeclarativeGESJaccard,
    DeclarativeSoftTFIDF,
)
from repro.declarative.edit import DeclarativeEditDistance
from repro.declarative.hmm import DeclarativeHMM
from repro.declarative.language_model import DeclarativeLanguageModeling
from repro.declarative.overlap import (
    DeclarativeIntersectSize,
    DeclarativeJaccard,
    DeclarativeWeightedJaccard,
    DeclarativeWeightedMatch,
)

__all__ = [
    "DECLARATIVE_CLASSES",
    "make_declarative_predicate",
    "available_declarative_predicates",
]

DECLARATIVE_CLASSES: Dict[str, Type[DeclarativePredicate]] = {
    "intersect": DeclarativeIntersectSize,
    "jaccard": DeclarativeJaccard,
    "weighted_match": DeclarativeWeightedMatch,
    "weighted_jaccard": DeclarativeWeightedJaccard,
    "cosine": DeclarativeCosine,
    "bm25": DeclarativeBM25,
    "lm": DeclarativeLanguageModeling,
    "hmm": DeclarativeHMM,
    "edit_distance": DeclarativeEditDistance,
    "ges_jaccard": DeclarativeGESJaccard,
    "ges_apx": DeclarativeGESApx,
    "soft_tfidf": DeclarativeSoftTFIDF,
}


def available_declarative_predicates() -> List[str]:
    """Canonical names of every declarative predicate realization."""
    return sorted(DECLARATIVE_CLASSES)


def make_declarative_predicate(name: str, **kwargs) -> DeclarativePredicate:
    """Construct a declarative predicate by name.

    The names match :func:`repro.core.predicates.make_predicate` (except for
    plain ``ges``, whose exact form the paper computes with a UDF rather than
    declaratively); keyword arguments are forwarded to the constructor, e.g.
    ``make_declarative_predicate("bm25", backend=SQLiteBackend())``.
    """
    key = name.strip().lower().replace(" ", "_").replace("-", "_")
    try:
        cls = DECLARATIVE_CLASSES[key]
    except KeyError as exc:
        raise ValueError(
            f"unknown declarative predicate {name!r}; "
            f"available: {available_declarative_predicates()}"
        ) from exc
    return cls(**kwargs)
