"""Declarative-predicate registry (delegates name resolution to the engine).

The class table below is the data source for the *declarative* (pure SQL /
UDF) realizations; name/alias resolution lives in the merged
:mod:`repro.engine.registry`, shared with
:mod:`repro.core.predicates.registry`, so the two factories accept exactly
the same names -- the registry-drift the two tables used to have is gone.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.declarative.aggregate import DeclarativeBM25, DeclarativeCosine
from repro.declarative.base import DeclarativePredicate
from repro.declarative.combination import (
    DeclarativeGES,
    DeclarativeGESApx,
    DeclarativeGESJaccard,
    DeclarativeSoftTFIDF,
)
from repro.declarative.edit import DeclarativeEditDistance
from repro.declarative.hmm import DeclarativeHMM
from repro.declarative.language_model import DeclarativeLanguageModeling
from repro.declarative.overlap import (
    DeclarativeIntersectSize,
    DeclarativeJaccard,
    DeclarativeWeightedJaccard,
    DeclarativeWeightedMatch,
)

__all__ = [
    "DECLARATIVE_CLASSES",
    "make_declarative_predicate",
    "available_declarative_predicates",
]

DECLARATIVE_CLASSES: Dict[str, Type[DeclarativePredicate]] = {
    "intersect": DeclarativeIntersectSize,
    "jaccard": DeclarativeJaccard,
    "weighted_match": DeclarativeWeightedMatch,
    "weighted_jaccard": DeclarativeWeightedJaccard,
    "cosine": DeclarativeCosine,
    "bm25": DeclarativeBM25,
    "lm": DeclarativeLanguageModeling,
    "hmm": DeclarativeHMM,
    "edit_distance": DeclarativeEditDistance,
    "ges": DeclarativeGES,
    "ges_jaccard": DeclarativeGESJaccard,
    "ges_apx": DeclarativeGESApx,
    "soft_tfidf": DeclarativeSoftTFIDF,
}


def available_declarative_predicates() -> List[str]:
    """Canonical names of every declarative predicate realization."""
    return sorted(DECLARATIVE_CLASSES)


def make_declarative_predicate(name: str, **kwargs) -> DeclarativePredicate:
    """Construct a declarative predicate by name or alias.

    The names and aliases match :func:`repro.core.predicates.make_predicate`
    exactly (plain ``ges`` runs its exact scoring through a registered UDF,
    as in the original study); keyword arguments are forwarded to the
    constructor, e.g. ``make_declarative_predicate("bm25", backend="sqlite")``.
    """
    from repro.engine.registry import make

    return make(name, realization="declarative", **kwargs)
