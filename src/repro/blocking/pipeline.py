"""Composable blocking pipelines.

A :class:`BlockingPipeline` chains several blockers into one: every stage
sees only what the previous stages let through, so the candidate set shrinks
monotonically.  The conventional arrangement runs the cheap exact filters
first (length, then prefix) and the approximate LSH stage last, but any order
works.  Per-stage :class:`~repro.blocking.base.BlockingStats` are kept so the
pipeline can report where the reduction came from.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.blocking.base import Blocker, BlockingStats

__all__ = ["BlockingPipeline"]


class BlockingPipeline(Blocker):
    """Chain of blockers applied in sequence.

    The pipeline is itself a :class:`Blocker`: it can be handed to predicates,
    joiners and deduplicators anywhere a single blocker is accepted.  It is
    exact iff every stage is exact.
    """

    name = "pipeline"

    def __init__(self, stages: Sequence[Blocker]):
        super().__init__(stages[0].tokenizer if stages else None)
        if not stages:
            raise ValueError("a BlockingPipeline needs at least one stage")
        self.stages: List[Blocker] = list(stages)
        self.exact = all(stage.exact for stage in self.stages)
        self.semantics = (
            "jaccard"
            if any(stage.semantics == "jaccard" for stage in self.stages)
            else "any"
        )
        self.name = "+".join(stage.name for stage in self.stages)

    def _fit(self, token_sets: List[FrozenSet[str]]) -> None:
        for stage in self.stages:
            stage.fit(token_sets)

    # -- hooks ----------------------------------------------------------------

    def probe_tokens(self, query_tokens: Set[str]) -> Set[str]:
        """Smallest sufficient probe set across stages.

        Each stage's probe set is sufficient on its own *when computed from
        the full query*, so the pipeline picks the smallest one rather than
        chaining them (a prefix of a prefix would over-prune).
        """
        tokens = query_tokens
        for stage in self.stages:
            candidate = stage.probe_tokens(query_tokens)
            if len(candidate) < len(tokens):
                tokens = candidate
        return tokens

    def _prune(self, query_tokens: Set[str], candidates: Set[int]) -> Set[int]:
        survivors = candidates
        for stage in self.stages:
            if not survivors:
                break
            survivors = stage.prune(query_tokens, survivors)
        return survivors

    def supports_threshold(self, threshold: float) -> bool:
        return all(stage.supports_threshold(threshold) for stage in self.stages)

    def partners(self, tid: int) -> Optional[Set[int]]:
        block: Optional[Set[int]] = None
        for stage in self.stages:
            stage_block = stage.partners(tid)
            if stage_block is None:
                continue
            block = set(stage_block) if block is None else block & stage_block
            if len(block) <= 1:
                break
        return block

    # -- statistics -----------------------------------------------------------

    def stage_stats(self) -> List[Tuple[str, BlockingStats]]:
        """``(stage name, stats)`` per stage, in pipeline order."""
        return [(stage.name, stage.stats) for stage in self.stages]

    def reset_stats(self) -> None:
        super().reset_stats()
        for stage in self.stages:
            stage.reset_stats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockingPipeline({self.name}, n={self._num_tuples})"
