"""MinHash-LSH banding: approximate blocking for similarity self-joins.

Built on :class:`repro.text.minhash.MinHasher`: every tuple's token set gets
a min-hash signature of ``num_bands * rows_per_band`` values; the signature
is cut into bands of ``rows_per_band`` consecutive values and each band is
hashed into a bucket.  Two tuples become candidates iff they collide in at
least one band, which happens with probability

    ``P(candidate) = 1 - (1 - s^rows) ^ bands``

for Jaccard similarity ``s`` -- the classic S-curve.  More rows sharpen the
curve (fewer false candidates), more bands shift it left (fewer false
dismissals).  Unlike the length/prefix filters this blocker is *approximate*:
it can drop true matches, with probability given by the S-curve at the match's
similarity.  :func:`MinHashLSH.candidate_probability` evaluates the curve so
callers can pick parameters for a target recall.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.blocking.base import Blocker
from repro.text.minhash import MinHasher, MinHashSignature, stable_token_hash
from repro.text.tokenize import Tokenizer

__all__ = ["MinHashLSH"]

_BandKey = Tuple[int, ...]


class MinHashLSH(Blocker):
    """Locality-sensitive hashing over min-hash signatures (banding scheme).

    Parameters
    ----------
    num_bands, rows_per_band:
        Banding layout; the signature length is their product.  The defaults
        (``16 x 4 = 64`` hashes) put the S-curve threshold around
        ``(1/16)^(1/4) ~ 0.5``, matching the mid-range thresholds used in the
        paper's selection experiments.
    seed:
        Seed for the underlying :class:`MinHasher` (deterministic by default,
        mirroring the paper's stored ``BASE_HASHFUNC`` table).
    """

    name = "lsh"
    exact = False

    def __init__(
        self,
        num_bands: int = 16,
        rows_per_band: int = 4,
        tokenizer: Optional[Tokenizer] = None,
        seed: int = 20070411,
    ):
        super().__init__(tokenizer)
        if num_bands < 1 or rows_per_band < 1:
            raise ValueError("num_bands and rows_per_band must be >= 1")
        self.num_bands = num_bands
        self.rows_per_band = rows_per_band
        self._hasher = MinHasher(num_hashes=num_bands * rows_per_band, seed=seed)
        self._token_hash_cache: Dict[str, int] = {}
        self._buckets: List[Dict[_BandKey, List[int]]] = []
        self._band_keys: List[List[_BandKey]] = []

    @property
    def num_hashes(self) -> int:
        return self._hasher.num_hashes

    def candidate_probability(self, similarity: float) -> float:
        """S-curve: probability a pair at Jaccard ``similarity`` collides."""
        if not 0.0 <= similarity <= 1.0:
            raise ValueError("similarity must be within [0, 1]")
        return 1.0 - (1.0 - similarity**self.rows_per_band) ** self.num_bands

    # -- signatures -----------------------------------------------------------

    def _signature(self, tokens: Iterable[str]) -> MinHashSignature:
        cache = self._token_hash_cache
        hashed = set()
        for token in tokens:
            value = cache.get(token)
            if value is None:
                value = cache[token] = stable_token_hash(token)
            hashed.add(value)
        return self._hasher.signature_from_hashes(hashed)

    def _keys(self, signature: MinHashSignature) -> List[_BandKey]:
        rows = self.rows_per_band
        return [
            tuple(signature[band * rows : (band + 1) * rows])
            for band in range(self.num_bands)
        ]

    # -- fitting --------------------------------------------------------------

    def _fit(self, token_sets: List[FrozenSet[str]]) -> None:
        self._buckets = [{} for _ in range(self.num_bands)]
        self._band_keys = []
        for tid, tokens in enumerate(token_sets):
            keys = self._keys(self._signature(tokens))
            self._band_keys.append(keys)
            for band, key in enumerate(keys):
                self._buckets[band].setdefault(key, []).append(tid)

    # -- hooks ----------------------------------------------------------------

    def query_candidates(self, query_tokens: Set[str]) -> Set[int]:
        """All tuples colliding with the query in at least one band."""
        self._require_fitted()
        result: Set[int] = set()
        for band, key in enumerate(self._keys(self._signature(query_tokens))):
            result.update(self._buckets[band].get(key, ()))
        return result

    def _prune(self, query_tokens: Set[str], candidates: Set[int]) -> Set[int]:
        return candidates & self.query_candidates(query_tokens)

    def partners(self, tid: int) -> Optional[Set[int]]:
        self._require_fitted()
        block: Set[int] = {tid}
        for band, key in enumerate(self._band_keys[tid]):
            block.update(self._buckets[band].get(key, ()))
        return block

    def blocks(self) -> Optional[List[List[int]]]:
        """All LSH buckets holding at least two tuples."""
        self._require_fitted()
        return [
            list(tids)
            for buckets in self._buckets
            for tids in buckets.values()
            if len(tids) >= 2
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MinHashLSH(bands={self.num_bands}, rows={self.rows_per_band}, "
            f"n={self._num_tuples})"
        )
