"""Construct blockers from compact specification strings.

The CLI (``--blocker``) and programmatic callers describe blockers with a
``+``-separated spec, e.g. ``"length"``, ``"length+prefix"`` or
``"length+lsh"``.  Multi-stage specs become a
:class:`~repro.blocking.pipeline.BlockingPipeline` in the given order.
"""

from __future__ import annotations

from typing import Optional

from repro.blocking.base import Blocker
from repro.blocking.length import LengthFilter
from repro.blocking.lsh import MinHashLSH
from repro.blocking.pipeline import BlockingPipeline
from repro.blocking.prefix import PrefixFilter
from repro.text.tokenize import Tokenizer

__all__ = ["BLOCKER_NAMES", "THRESHOLD_STAGE_NAMES", "make_blocker"]

#: Names accepted in a blocker spec (besides ``none``).
BLOCKER_NAMES = ("length", "prefix", "lsh")

#: Spec stage names (including aliases) whose pruning bounds derive from a
#: selection threshold -- the exact filters.  Other modules consult this
#: instead of keeping their own copy.
THRESHOLD_STAGE_NAMES = frozenset({"length", "len", "prefix", "pf"})


def make_blocker(
    spec: Optional[str],
    threshold: Optional[float] = None,
    lsh_bands: int = 16,
    lsh_rows: int = 4,
    tokenizer: Optional[Tokenizer] = None,
    seed: int = 20070411,
) -> Optional[Blocker]:
    """Build a blocker (or pipeline) from a ``+``-separated spec string.

    ``None``, ``""`` and ``"none"`` yield ``None`` (no blocking).  The exact
    filters require ``threshold`` because their pruning bounds derive from it.

    >>> make_blocker("length+prefix", threshold=0.6).name
    'length+prefix'
    """
    if spec is None or spec.strip().lower() in ("", "none"):
        return None
    stages = []
    for part in spec.split("+"):
        name = part.strip().lower()
        if name in THRESHOLD_STAGE_NAMES and threshold is None:
            raise ValueError(f"the {name!r} blocker needs a similarity threshold")
        if name in ("length", "len"):
            stages.append(LengthFilter(threshold, tokenizer=tokenizer))
        elif name in ("prefix", "pf"):
            stages.append(PrefixFilter(threshold, tokenizer=tokenizer))
        elif name in ("lsh", "minhash", "minhash_lsh"):
            stages.append(
                MinHashLSH(
                    num_bands=lsh_bands,
                    rows_per_band=lsh_rows,
                    tokenizer=tokenizer,
                    seed=seed,
                )
            )
        else:
            raise ValueError(
                f"unknown blocker {name!r}; expected one of {', '.join(BLOCKER_NAMES)}"
            )
    if len(stages) == 1:
        return stages[0]
    return BlockingPipeline(stages)
