"""Prefix filtering over weight-ordered tokens.

Order the vocabulary globally from rarest to most frequent (ascending
document frequency).  For Jaccard ``>= t`` a match must share at least
``ceil(t * |X|)`` distinct tokens with the query, so it is enough to consider
the first

    ``p(X) = |X| - ceil(t * |X|) + 1``

tokens of each set under that order (its *prefix*):

* **Probe side** (selections / joins): if a candidate shares *none* of the
  query's ``p(Q)`` prefix tokens, its overlap with the query is at most
  ``ceil(t * |Q|) - 1 < t * |Q|``, so it cannot reach the threshold.  Probing
  only the prefix tokens in the inverted index is therefore exact -- and
  because the prefix holds the *rarest* tokens, their postings are short.
* **Pair side** (self-joins): the classic prefix-filtering lemma (AllPairs /
  PPJoin): if ``J(Q, D) >= t`` then the prefixes of ``Q`` and ``D`` intersect.
  :meth:`PrefixFilter.partners` exploits this with a dedicated inverted index
  over prefix tokens only.

Exactness holds for Jaccard (and any similarity with
``sim >= t  =>  overlap >= t * max(|Q|, |D|)``); for other predicates the
filter is a heuristic.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Set

from repro.blocking.base import Blocker
from repro.text.tokenize import Tokenizer

__all__ = ["PrefixFilter"]

_EPS = 1e-9


class PrefixFilter(Blocker):
    """Exact prefix filtering for Jaccard-style thresholds.

    Parameters
    ----------
    threshold:
        The similarity threshold; determines the prefix lengths.  ``0``
        disables pruning (the prefix is the whole token set).
    """

    name = "prefix"
    exact = True
    semantics = "jaccard"

    def __init__(self, threshold: float, tokenizer: Optional[Tokenizer] = None):
        super().__init__(tokenizer)
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be within [0, 1]")
        self.threshold = threshold
        self._document_frequency: Dict[str, int] = {}
        self._prefixes: List[FrozenSet[str]] = []
        self._prefix_postings: Dict[str, List[int]] = {}

    def prefix_length(self, size: int) -> int:
        """``p(X) = |X| - ceil(t * |X|) + 1`` (at least 1 for non-empty sets)."""
        if size == 0:
            return 0
        if self.threshold <= 0.0:
            return size
        needed = math.ceil(self.threshold * size - _EPS)
        return max(1, size - needed + 1)

    def _order_key(self, token: str):
        """Global token order: ascending document frequency, ties by token."""
        return (self._document_frequency.get(token, 0), token)

    def prefix_of(self, tokens: Set[str]) -> List[str]:
        """The rarest-first prefix of a token set at the configured threshold."""
        ordered = sorted(tokens, key=self._order_key)
        return ordered[: self.prefix_length(len(ordered))]

    def _fit(self, token_sets: List[FrozenSet[str]]) -> None:
        frequency: Dict[str, int] = {}
        for tokens in token_sets:
            for token in tokens:
                frequency[token] = frequency.get(token, 0) + 1
        self._document_frequency = frequency
        self._prefixes = []
        self._prefix_postings = {}
        for tid, tokens in enumerate(token_sets):
            prefix = self.prefix_of(set(tokens))
            self._prefixes.append(frozenset(prefix))
            for token in prefix:
                self._prefix_postings.setdefault(token, []).append(tid)

    # -- hooks ----------------------------------------------------------------

    def probe_tokens(self, query_tokens: Set[str]) -> Set[str]:
        self._require_fitted()
        if self.threshold <= 0.0:
            return query_tokens
        return set(self.prefix_of(query_tokens))

    def supports_threshold(self, threshold: float) -> bool:
        return threshold >= self.threshold - _EPS

    def partners(self, tid: int) -> Optional[Set[int]]:
        self._require_fitted()
        if self.threshold <= 0.0:
            return None
        block: Set[int] = {tid}
        for token in self._prefixes[tid]:
            block.update(self._prefix_postings.get(token, ()))
        return block

    def blocks(self) -> Optional[List[List[int]]]:
        """One block per prefix token: all tuples carrying it in their prefix."""
        self._require_fitted()
        return [list(tids) for tids in self._prefix_postings.values()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PrefixFilter(threshold={self.threshold}, n={self._num_tuples})"
