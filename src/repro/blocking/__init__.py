"""Blocking & candidate pruning for approximate selections, joins and dedup.

The candidate-generation layer between the inverted index and the similarity
predicates.  The seed implementation treated every tuple sharing *any* token
with the query as a candidate; on realistic vocabularies that makes
selections, joins and duplicate detection quadratic in all but name.  This
package provides pluggable blockers behind the common
:class:`~repro.blocking.base.Blocker` interface:

* :class:`~repro.blocking.length.LengthFilter` -- exact token-count bounds
  derived from the similarity threshold;
* :class:`~repro.blocking.prefix.PrefixFilter` -- exact prefix filtering over
  rarest-first ordered tokens (AllPairs/PPJoin-style);
* :class:`~repro.blocking.lsh.MinHashLSH` -- approximate MinHash-LSH banding
  built on :class:`repro.text.minhash.MinHasher`;
* :class:`~repro.blocking.pipeline.BlockingPipeline` -- chains blockers and
  reports per-stage candidate-reduction statistics;
* :func:`~repro.blocking.factory.make_blocker` -- builds any of the above
  from a spec string such as ``"length+prefix"`` (used by the CLI).

Integration points: ``InvertedIndex.candidates(..., blocker=...)``,
``Predicate.set_blocker``, ``ApproximateJoiner(blocker=...)`` /
``Deduplicator(blocker=...)`` and the CLI's ``--blocker`` / ``--lsh-bands``
flags.  ``benchmarks/bench_blocking.py`` measures speedup and recall against
the unblocked baseline.
"""

from repro.blocking.base import Blocker, BlockingStats
from repro.blocking.factory import BLOCKER_NAMES, make_blocker
from repro.blocking.length import LengthFilter
from repro.blocking.lsh import MinHashLSH
from repro.blocking.pipeline import BlockingPipeline
from repro.blocking.prefix import PrefixFilter

__all__ = [
    "Blocker",
    "BlockingStats",
    "LengthFilter",
    "PrefixFilter",
    "MinHashLSH",
    "BlockingPipeline",
    "make_blocker",
    "BLOCKER_NAMES",
]
