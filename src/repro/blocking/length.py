"""Length filtering: token-count bounds derived from the threshold.

For any overlap-fraction similarity bounded by
``sim(Q, D) <= min(|Q|, |D|) / max(|Q|, |D|)`` over distinct token sets
(Jaccard is the canonical case: ``J(Q, D) <= min/max``), a pair can only
reach ``sim >= t`` when the candidate's distinct-token count lies within

    ``ceil(t * |Q|)  <=  |D|  <=  floor(|Q| / t)``.

The filter is *exact* for Jaccard: it never drops a candidate whose score can
reach the threshold, so thresholded selections and self-joins return exactly
the same matches as the unblocked baseline -- just without scoring tuples of
hopelessly different size.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Set, Tuple

from repro.blocking.base import Blocker
from repro.text.tokenize import Tokenizer

__all__ = ["LengthFilter"]

#: Slack subtracted before ``ceil`` / added before ``floor`` so floating-point
#: noise in ``t * |Q|`` can only ever *loosen* the bounds (exactness first).
_EPS = 1e-9


class LengthFilter(Blocker):
    """Exact token-count pruning for Jaccard-style thresholds.

    Parameters
    ----------
    threshold:
        The similarity threshold the selection/join will be run at; the
        length bounds are derived from it.  ``0`` disables pruning.
    """

    name = "length"
    exact = True
    semantics = "jaccard"

    def __init__(self, threshold: float, tokenizer: Optional[Tokenizer] = None):
        super().__init__(tokenizer)
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be within [0, 1]")
        self.threshold = threshold
        self._sizes: List[int] = []
        self._sorted_sizes: List[int] = []
        self._tids_by_size: List[int] = []

    def _fit(self, token_sets: List[frozenset]) -> None:
        self._sizes = [len(tokens) for tokens in token_sets]
        order = sorted(range(len(self._sizes)), key=lambda tid: (self._sizes[tid], tid))
        self._tids_by_size = order
        self._sorted_sizes = [self._sizes[tid] for tid in order]

    # -- bounds ---------------------------------------------------------------

    def bounds(self, size: int) -> Tuple[float, float]:
        """Inclusive ``(low, high)`` candidate-size bounds for a query of ``size``."""
        if self.threshold <= 0.0 or size == 0:
            return (0, math.inf)
        low = math.ceil(self.threshold * size - _EPS)
        high = math.floor(size / self.threshold + _EPS)
        return (low, high)

    # -- hooks ----------------------------------------------------------------

    def _prune(self, query_tokens: Set[str], candidates: Set[int]) -> Set[int]:
        if self.threshold <= 0.0:
            return candidates
        low, high = self.bounds(len(query_tokens))
        sizes = self._sizes
        return {tid for tid in candidates if low <= sizes[tid] <= high}

    def supports_threshold(self, threshold: float) -> bool:
        return threshold >= self.threshold - _EPS

    def partners(self, tid: int) -> Optional[Set[int]]:
        self._require_fitted()
        if self.threshold <= 0.0:
            return None
        low, high = self.bounds(self._sizes[tid])
        left = bisect_left(self._sorted_sizes, low)
        right = bisect_right(self._sorted_sizes, high)
        block = set(self._tids_by_size[left:right])
        block.add(tid)
        return block

    def blocks(self) -> Optional[List[List[int]]]:
        """One block per distinct length: all tuples within its upper bound.

        Every compatible pair shares the block anchored at its *smaller*
        length, so iterating blocks covers all pairs the filter admits.
        """
        self._require_fitted()
        by_size: Dict[int, List[int]] = {}
        for tid, size in enumerate(self._sizes):
            by_size.setdefault(size, []).append(tid)
        output: List[List[int]] = []
        for size in sorted(by_size):
            _, high = self.bounds(size)
            left = bisect_left(self._sorted_sizes, size)
            right = bisect_right(self._sorted_sizes, high)
            output.append(list(self._tids_by_size[left:right]))
        return output

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LengthFilter(threshold={self.threshold}, n={self._num_tuples})"
