"""Blocker interface and candidate-reduction statistics.

A *blocker* is a pluggable candidate-pruning strategy sitting between the
inverted index and the similarity predicates.  The paper's selection and join
operators spend almost all of their time scoring candidate tuples, and the
seed implementation considered every tuple sharing *any* token with the query
a candidate -- on realistic vocabularies that degenerates toward comparing
everything with everything.  Blockers cut that candidate set down, either

* **exactly** -- dropping only candidates that provably cannot reach the
  similarity threshold (:class:`~repro.blocking.length.LengthFilter`,
  :class:`~repro.blocking.prefix.PrefixFilter`), or
* **approximately** -- keeping candidates that are *probably* similar
  (:class:`~repro.blocking.lsh.MinHashLSH`), trading a bounded amount of
  recall for much larger reductions.

Every blocker answers three questions:

1. :meth:`Blocker.probe_tokens` -- which query tokens are worth probing in the
   inverted index at all (prefix filtering shrinks this set);
2. :meth:`Blocker.prune` -- which of the candidates produced by the index can
   still reach the threshold (length filtering and LSH shrink this set);
3. :meth:`Blocker.partners` -- for similarity *self-joins*, which tuples of
   the indexed relation may pair with a given tuple (used by
   :meth:`repro.core.join.ApproximateJoiner.self_join` to probe only within
   blocks and to skip singleton blocks entirely).

:class:`BlockingStats` counts candidates before and after pruning so
pipelines and benchmarks can report the achieved reduction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from repro.text.tokenize import QgramTokenizer, Tokenizer

__all__ = ["BlockingStats", "Blocker"]


@dataclass
class BlockingStats:
    """Candidate-reduction counters accumulated across queries.

    ``candidates_in`` counts candidates handed to :meth:`Blocker.prune`;
    ``candidates_out`` counts the survivors.  One "candidate" is one
    (query, tuple) pair that would otherwise be scored.
    """

    probes: int = 0
    candidates_in: int = 0
    candidates_out: int = 0

    def record(self, before: int, after: int) -> None:
        self.probes += 1
        self.candidates_in += before
        self.candidates_out += after

    @property
    def pruned(self) -> int:
        """Number of candidates eliminated by the blocker."""
        return self.candidates_in - self.candidates_out

    @property
    def reduction_ratio(self) -> float:
        """``candidates_in / candidates_out`` (``inf`` if everything pruned)."""
        if self.candidates_out == 0:
            return float("inf") if self.candidates_in else 1.0
        return self.candidates_in / self.candidates_out

    def reset(self) -> None:
        self.probes = 0
        self.candidates_in = 0
        self.candidates_out = 0

    def publish(self, metrics) -> None:
        """Accumulate into a :class:`~repro.obs.metrics.MetricsRegistry`."""
        metrics.inc("blocker_probes", self.probes)
        metrics.inc("blocker_candidates_in", self.candidates_in)
        metrics.inc("blocker_candidates_out", self.candidates_out)


class Blocker(ABC):
    """Base class of all candidate blockers.

    Parameters
    ----------
    tokenizer:
        Tokenizer used by :meth:`fit_strings` and when a predicate without its
        own token lists hosts the blocker.  Defaults to the paper's 2-gram
        tokenizer so blockers agree with the default predicate tokenization.

    Subclasses implement :meth:`_fit` (and usually override one or more of
    :meth:`probe_tokens`, :meth:`_prune`, :meth:`partners`, :meth:`blocks`).
    The default implementations are conservative no-ops, so a blocker only
    has to override the hooks it can actually accelerate.
    """

    #: Registry name of the blocker (used by CLI flags and reports).
    name: str = "blocker"
    #: ``True`` when pruning is lossless: the blocker never drops a candidate
    #: whose similarity can reach the threshold it was configured with.
    exact: bool = True
    #: Similarity semantics the exactness guarantee is stated for: ``"any"``
    #: (threshold-independent, e.g. LSH) or ``"jaccard"`` (bounds derived
    #: from a Jaccard-style overlap fraction).  Attaching a ``"jaccard"``
    #: blocker to a predicate with different score semantics turns it into a
    #: heuristic and triggers a warning.
    semantics: str = "any"

    def __init__(self, tokenizer: Optional[Tokenizer] = None):
        self.tokenizer = tokenizer or QgramTokenizer(q=2)
        self.stats = BlockingStats()
        self._num_tuples = 0
        self._fitted = False

    # -- preprocessing --------------------------------------------------------

    def fit(self, token_lists: Sequence[Sequence[str]]) -> "Blocker":
        """Index the base relation's token lists for pruning.

        Predicates hosting a blocker call this with *their own* token lists so
        that blocker and predicate agree on tokenization (required for the
        exact filters to be exact).
        """
        token_sets = [frozenset(tokens) for tokens in token_lists]
        self._num_tuples = len(token_sets)
        self.stats.reset()
        self._fit(token_sets)
        self._fitted = True
        return self

    def fit_strings(self, strings: Sequence[str]) -> "Blocker":
        """Convenience: tokenize ``strings`` with :attr:`tokenizer` and fit."""
        return self.fit(self.tokenizer.tokenize_many(list(strings)))

    @abstractmethod
    def _fit(self, token_sets: List[frozenset]) -> None:
        """Build the blocker's internal structures from the token sets."""

    # -- query-time hooks -----------------------------------------------------

    def probe_tokens(self, query_tokens: Set[str]) -> Set[str]:
        """Subset of ``query_tokens`` that must be probed in the index.

        The default probes everything; prefix filtering returns only the
        rarest tokens that can still witness a threshold-reaching match.
        """
        return query_tokens

    def prune(self, query_tokens: Set[str], candidates: Set[int]) -> Set[int]:
        """Drop candidates that cannot (or are unlikely to) reach the threshold.

        Wraps :meth:`_prune` with statistics bookkeeping.
        """
        self._require_fitted()
        before = len(candidates)
        survivors = self._prune(query_tokens, candidates)
        self.stats.record(before, len(survivors))
        return survivors

    def _prune(self, query_tokens: Set[str], candidates: Set[int]) -> Set[int]:
        return candidates

    def partners(self, tid: int) -> Optional[Set[int]]:
        """Tuples that may pair with ``tid`` in a self-join (incl. ``tid``).

        ``None`` means the blocker places no restriction.  A result of
        ``{tid}`` marks a *singleton block*: the self-join skips probing the
        tuple altogether.
        """
        return None

    def supports_threshold(self, threshold: float) -> bool:
        """Whether pruning stays lossless at the given selection threshold.

        Exact blockers derive their bounds from a configured threshold; a
        selection run at a *lower* threshold could match pairs the blocker
        prunes.  Threshold-independent blockers always return ``True``.
        """
        return True

    def blocks(self) -> Optional[List[List[int]]]:
        """Explicit block structure (groups of mutually comparable tuples).

        ``None`` when the blocker has no materialized block structure (the
        pairwise :meth:`partners` view is then the only interface).
        """
        return None

    # -- introspection --------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    @property
    def num_tuples(self) -> int:
        return self._num_tuples

    def reset_stats(self) -> None:
        self.stats.reset()

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(
                f"{type(self).__name__} must be fit() on the base relation first"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "fitted" if self._fitted else "unfitted"
        return f"{type(self).__name__}({status}, n={self._num_tuples})"
