"""Experiment runner: accuracy of a predicate over a generated dataset.

Mirrors the paper's accuracy methodology (section 5.2): for each query tuple
drawn from the dataset, the full unpruned ranking produced by the predicate
is compared against the query's ground-truth cluster; MAP and mean maximum F1
are reported over the query workload.

Experiments execute through :class:`repro.engine.SimilarityEngine`, so any
predicate can be evaluated in either realization (``realization="direct"`` /
``"declarative"``) on either SQL backend, and the whole query workload runs
as one :meth:`~repro.engine.query.Query.run_many` batch that pays
preprocessing once.  On the declarative realization the batch additionally
executes through the per-family batched SQL (one grouped statement per
workload instead of one per query) over the engine's shared token/weight
cores, so evaluating several declarative predicates back to back re-uses
both the tokenization and the common weight tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.predicates.base import Predicate
from repro.datagen.generator import GeneratedDataset
from repro.declarative.base import DeclarativePredicate
from repro.engine import Query, SimilarityEngine
from repro.eval.metrics import average_precision, max_f1

__all__ = ["QueryOutcome", "AccuracyResult", "ExperimentRunner"]


@dataclass(frozen=True)
class QueryOutcome:
    """Accuracy of a single query."""

    query_tid: int
    query_text: str
    average_precision: float
    max_f1: float
    num_relevant: int
    num_retrieved: int


@dataclass(frozen=True)
class AccuracyResult:
    """Aggregated accuracy of one predicate over one dataset."""

    predicate_name: str
    dataset_name: str
    mean_average_precision: float
    mean_max_f1: float
    num_queries: int
    outcomes: Sequence[QueryOutcome] = field(repr=False, default=())

    def summary_row(self) -> Dict[str, object]:
        """A flat dict suitable for report tables."""
        return {
            "predicate": self.predicate_name,
            "dataset": self.dataset_name,
            "MAP": round(self.mean_average_precision, 4),
            "maxF1": round(self.mean_max_f1, 4),
            "queries": self.num_queries,
        }


class ExperimentRunner:
    """Runs accuracy experiments for predicates over generated datasets.

    ``engine`` may be shared across runners/experiments so fitted predicate
    state is reused; a private engine is created otherwise.
    """

    def __init__(
        self,
        dataset: GeneratedDataset,
        dataset_name: str = "dataset",
        engine: Optional[SimilarityEngine] = None,
    ):
        self.dataset = dataset
        self.dataset_name = dataset_name
        self.engine = engine if engine is not None else SimilarityEngine()
        self._base_query: Optional[Query] = None

    def query_workload(self, num_queries: int, seed: int = 0) -> List[int]:
        """Sample the query tuple ids (clean and erroneous tuples mixed)."""
        return self.dataset.sample_query_tids(num_queries, seed=seed)

    def _query_for(
        self,
        predicate: Union[Predicate, DeclarativePredicate, str],
        realization: str,
        backend: str,
        **predicate_kwargs,
    ) -> Query:
        if self._base_query is None:
            self._base_query = self.engine.from_strings(self.dataset.strings)
        query = self._base_query.predicate(predicate, **predicate_kwargs)
        if isinstance(predicate, str):
            query = query.realization(realization).backend(backend)
        return query

    def evaluate(
        self,
        predicate: Union[Predicate, DeclarativePredicate, str],
        num_queries: int = 100,
        seed: int = 0,
        keep_outcomes: bool = False,
        realization: str = "direct",
        backend: str = "memory",
        **predicate_kwargs,
    ) -> AccuracyResult:
        """Fit ``predicate`` on the dataset and measure MAP / max F1.

        ``predicate`` may be a fitted or unfitted predicate instance (direct
        or declarative) or a registry name; names are resolved in the
        requested ``realization`` on the requested ``backend``.  Fitted
        predicate state is cached on the engine, so several experiments share
        one expensive preprocessing.
        """
        query = self._query_for(predicate, realization, backend, **predicate_kwargs)
        query_tids = self.query_workload(num_queries, seed=seed)
        texts = [self.dataset.records[tid].text for tid in query_tids]
        rankings = query.run_many(texts, op="rank")

        outcomes: List[QueryOutcome] = []
        ap_total = 0.0
        f1_total = 0.0
        for query_tid, text, ranking in zip(query_tids, texts, rankings):
            relevant = set(self.dataset.relevant_for(query_tid))
            ranked_tids = [match.tid for match in ranking]
            ap = average_precision(ranked_tids, relevant)
            f1 = max_f1(ranked_tids, relevant)
            ap_total += ap
            f1_total += f1
            if keep_outcomes:
                outcomes.append(
                    QueryOutcome(
                        query_tid=query_tid,
                        query_text=text,
                        average_precision=ap,
                        max_f1=f1,
                        num_relevant=len(relevant),
                        num_retrieved=len(ranked_tids),
                    )
                )
        count = len(query_tids) or 1
        fitted = query.fitted_predicate()
        return AccuracyResult(
            predicate_name=getattr(fitted, "name", type(fitted).__name__),
            dataset_name=self.dataset_name,
            mean_average_precision=ap_total / count,
            mean_max_f1=f1_total / count,
            num_queries=len(query_tids),
            outcomes=tuple(outcomes),
        )

    def evaluate_many(
        self,
        predicates: Sequence[Union[Predicate, DeclarativePredicate, str]],
        num_queries: int = 100,
        seed: int = 0,
        realization: str = "direct",
        backend: str = "memory",
    ) -> List[AccuracyResult]:
        """Evaluate several predicates on the same query workload."""
        return [
            self.evaluate(
                predicate,
                num_queries=num_queries,
                seed=seed,
                realization=realization,
                backend=backend,
            )
            for predicate in predicates
        ]
