"""Experiment runner: accuracy of a predicate over a generated dataset.

Mirrors the paper's accuracy methodology (section 5.2): for each query tuple
drawn from the dataset, the full unpruned ranking produced by the predicate
is compared against the query's ground-truth cluster; MAP and mean maximum F1
are reported over the query workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.predicates.base import Predicate
from repro.core.predicates.registry import make_predicate
from repro.datagen.generator import GeneratedDataset
from repro.eval.metrics import average_precision, max_f1

__all__ = ["QueryOutcome", "AccuracyResult", "ExperimentRunner"]


@dataclass(frozen=True)
class QueryOutcome:
    """Accuracy of a single query."""

    query_tid: int
    query_text: str
    average_precision: float
    max_f1: float
    num_relevant: int
    num_retrieved: int


@dataclass(frozen=True)
class AccuracyResult:
    """Aggregated accuracy of one predicate over one dataset."""

    predicate_name: str
    dataset_name: str
    mean_average_precision: float
    mean_max_f1: float
    num_queries: int
    outcomes: Sequence[QueryOutcome] = field(repr=False, default=())

    def summary_row(self) -> Dict[str, object]:
        """A flat dict suitable for report tables."""
        return {
            "predicate": self.predicate_name,
            "dataset": self.dataset_name,
            "MAP": round(self.mean_average_precision, 4),
            "maxF1": round(self.mean_max_f1, 4),
            "queries": self.num_queries,
        }


class ExperimentRunner:
    """Runs accuracy experiments for predicates over generated datasets."""

    def __init__(self, dataset: GeneratedDataset, dataset_name: str = "dataset"):
        self.dataset = dataset
        self.dataset_name = dataset_name

    def query_workload(self, num_queries: int, seed: int = 0) -> List[int]:
        """Sample the query tuple ids (clean and erroneous tuples mixed)."""
        return self.dataset.sample_query_tids(num_queries, seed=seed)

    def evaluate(
        self,
        predicate: Union[Predicate, str],
        num_queries: int = 100,
        seed: int = 0,
        keep_outcomes: bool = False,
        **predicate_kwargs,
    ) -> AccuracyResult:
        """Fit ``predicate`` on the dataset and measure MAP / max F1.

        ``predicate`` may be a fitted or unfitted :class:`Predicate`, a
        declarative predicate (anything with ``fit``/``rank``) or a predicate
        name.  Already-fitted predicates are reused as-is, which lets callers
        share one expensive preprocessing across several experiments.
        """
        if isinstance(predicate, str):
            predicate = make_predicate(predicate, **predicate_kwargs)
        if not getattr(predicate, "is_fitted", False) and not getattr(
            predicate, "is_preprocessed", False
        ):
            predicate.fit(self.dataset.strings)

        query_tids = self.query_workload(num_queries, seed=seed)
        outcomes: List[QueryOutcome] = []
        ap_total = 0.0
        f1_total = 0.0
        for query_tid in query_tids:
            record = self.dataset.records[query_tid]
            relevant = set(self.dataset.relevant_for(query_tid))
            ranking = [scored.tid for scored in predicate.rank(record.text)]
            ap = average_precision(ranking, relevant)
            f1 = max_f1(ranking, relevant)
            ap_total += ap
            f1_total += f1
            if keep_outcomes:
                outcomes.append(
                    QueryOutcome(
                        query_tid=query_tid,
                        query_text=record.text,
                        average_precision=ap,
                        max_f1=f1,
                        num_relevant=len(relevant),
                        num_retrieved=len(ranking),
                    )
                )
        count = len(query_tids) or 1
        return AccuracyResult(
            predicate_name=getattr(predicate, "name", type(predicate).__name__),
            dataset_name=self.dataset_name,
            mean_average_precision=ap_total / count,
            mean_max_f1=f1_total / count,
            num_queries=len(query_tids),
            outcomes=tuple(outcomes),
        )

    def evaluate_many(
        self,
        predicates: Sequence[Union[Predicate, str]],
        num_queries: int = 100,
        seed: int = 0,
    ) -> List[AccuracyResult]:
        """Evaluate several predicates on the same query workload."""
        return [
            self.evaluate(predicate, num_queries=num_queries, seed=seed)
            for predicate in predicates
        ]
