"""Evaluation machinery: accuracy metrics, experiment runner, timing, pruning.

* :mod:`repro.eval.metrics` -- average precision, MAP, precision/recall and
  maximum F1 (section 5.2).
* :mod:`repro.eval.runner` -- runs a query workload for a predicate over a
  generated dataset and aggregates accuracy metrics against the ground-truth
  clusters.
* :mod:`repro.eval.timing` -- preprocessing- and query-time measurement split
  into the phases reported by Figures 5.2/5.3.
* :mod:`repro.eval.pruning` -- the IDF-threshold token pruning enhancement of
  section 5.6.
* :mod:`repro.eval.report` / :mod:`repro.eval.figures` -- result tables
  (text / markdown / CSV) and ASCII charts used by the CLI and the benchmark
  harness.
"""

from repro.eval.metrics import (
    average_precision,
    max_f1,
    mean_average_precision,
    mean_max_f1,
    precision_at,
    precision_recall_curve,
    recall_at,
)
from repro.eval.runner import AccuracyResult, ExperimentRunner, QueryOutcome
from repro.eval.timing import PreprocessingTiming, QueryTiming, time_preprocessing, time_queries
from repro.eval.pruning import IdfPruner, prune_rate_threshold
from repro.eval.report import ResultSink, markdown_table, text_table, to_csv
from repro.eval.figures import bar_chart, grouped_bar_chart, line_chart

__all__ = [
    "ResultSink",
    "text_table",
    "markdown_table",
    "to_csv",
    "bar_chart",
    "grouped_bar_chart",
    "line_chart",
    "average_precision",
    "mean_average_precision",
    "max_f1",
    "mean_max_f1",
    "precision_at",
    "recall_at",
    "precision_recall_curve",
    "ExperimentRunner",
    "AccuracyResult",
    "QueryOutcome",
    "PreprocessingTiming",
    "QueryTiming",
    "time_preprocessing",
    "time_queries",
    "IdfPruner",
    "prune_rate_threshold",
]
