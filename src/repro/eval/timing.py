"""Timing harness for the performance experiments (paper section 5.5).

The paper splits *preprocessing* into a tokenization phase and a weight
calculation phase (Figure 5.2) and reports *query time* as the average over a
query workload (Figure 5.3), plus its growth with base-table size
(Figure 5.4).  :func:`time_preprocessing` and :func:`time_queries` produce
exactly those measurements for any predicate that follows the
``tokenize_phase`` / ``weight_phase`` / ``rank`` protocol -- including the
declarative realizations: predicate names are resolved through the merged
engine registry, so ``realization="declarative"`` (with an optional
``backend``) times the SQL realization of the same predicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro.core.predicates.base import Predicate
from repro.declarative.base import DeclarativePredicate
from repro.obs.clock import perf_clock

__all__ = [
    "PreprocessingTiming",
    "QueryTiming",
    "time_preprocessing",
    "time_queries",
]


@dataclass(frozen=True)
class PreprocessingTiming:
    """Preprocessing time split into the two phases of Figure 5.2 (seconds)."""

    predicate_name: str
    num_tuples: int
    tokenization_seconds: float
    weights_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.tokenization_seconds + self.weights_seconds

    def to_record(self) -> dict:
        """Plain-dict form matching the benchmark JSON schema's result rows."""
        return {
            "predicate": self.predicate_name,
            "num_tuples": self.num_tuples,
            "tokenization_seconds": self.tokenization_seconds,
            "weights_seconds": self.weights_seconds,
            "total_seconds": self.total_seconds,
        }


@dataclass(frozen=True)
class QueryTiming:
    """Query-time statistics over a workload (seconds)."""

    predicate_name: str
    num_tuples: int
    num_queries: int
    total_seconds: float

    @property
    def average_seconds(self) -> float:
        return self.total_seconds / self.num_queries if self.num_queries else 0.0

    @property
    def average_milliseconds(self) -> float:
        return self.average_seconds * 1000.0

    def to_record(self) -> dict:
        """Plain-dict form matching the benchmark JSON schema's result rows."""
        return {
            "predicate": self.predicate_name,
            "num_tuples": self.num_tuples,
            "num_queries": self.num_queries,
            "total_seconds": self.total_seconds,
            "average_milliseconds": self.average_milliseconds,
        }


def _resolve(
    predicate: Union[Predicate, DeclarativePredicate, str],
    realization: str = "direct",
    backend: object = None,
    num_shards: int = 1,
    executor: object = "serial",
    **kwargs,
) -> Union[Predicate, DeclarativePredicate]:
    if isinstance(predicate, str):
        from repro.engine.registry import make

        if num_shards > 1 and realization == "direct":
            from repro.shard import ShardedPredicate

            name, frozen = predicate, dict(kwargs)
            return ShardedPredicate(
                factory=lambda: make(name, realization="direct", **frozen),
                num_shards=num_shards,
                executor=executor,
            )
        return make(predicate, realization=realization, backend=backend, **kwargs)
    if num_shards > 1:
        raise ValueError(
            "sharded timing requires a predicate name (instances own their state)"
        )
    return predicate


def time_preprocessing(
    predicate: Union[Predicate, DeclarativePredicate, str],
    strings: Sequence[str],
    realization: str = "direct",
    backend: object = None,
    **predicate_kwargs,
) -> PreprocessingTiming:
    """Measure the tokenization and weight phases of preprocessing."""
    predicate = _resolve(predicate, realization, backend, **predicate_kwargs)
    predicate._strings = list(strings)
    declarative = isinstance(predicate, DeclarativePredicate)
    # For declarative predicates the tokenization phase acquires the shared
    # core (BASE_TABLE + BASE_TOKENS + the common statistics tables); on an
    # already-prepared backend it measures as near-zero, which is exactly the
    # amortization the shared-core design buys.
    started = perf_clock()
    predicate.tokenize_phase()
    tokenized = perf_clock()
    predicate.weight_phase()
    finished = perf_clock()
    if declarative:
        predicate._preprocessed = True
    else:
        predicate._fitted = True

    return PreprocessingTiming(
        predicate_name=getattr(predicate, "name", type(predicate).__name__),
        num_tuples=len(strings),
        tokenization_seconds=tokenized - started,
        weights_seconds=finished - tokenized,
    )


def time_queries(
    predicate: Union[Predicate, DeclarativePredicate, str],
    strings: Sequence[str],
    queries: Sequence[str],
    realization: str = "direct",
    backend: object = None,
    num_shards: int = 1,
    executor: object = "serial",
    **predicate_kwargs,
) -> QueryTiming:
    """Measure average query (ranking) time over a workload.

    The predicate is fit first (not included in the measurement) unless it is
    already fitted on the given relation.  With ``num_shards > 1`` (direct
    realization, predicate given by name) the workload is timed over sharded
    execution with the given executor (see :mod:`repro.shard`) -- results are
    exact, so this measures the scheduling overhead/speedup in isolation.
    """
    predicate = _resolve(
        predicate,
        realization,
        backend,
        num_shards=num_shards,
        executor=executor,
        **predicate_kwargs,
    )
    fitted = getattr(predicate, "is_fitted", False) or getattr(
        predicate, "is_preprocessed", False
    )
    base = getattr(predicate, "base_strings", None)
    if not fitted or (base is not None and base != list(strings)):
        predicate.fit(strings)

    started = perf_clock()
    for query in queries:
        predicate.rank(query)
    elapsed = perf_clock() - started
    return QueryTiming(
        predicate_name=getattr(predicate, "name", type(predicate).__name__),
        num_tuples=len(strings),
        num_queries=len(queries),
        total_seconds=elapsed,
    )
