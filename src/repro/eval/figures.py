"""Plain-text charts for benchmark reports.

The paper presents several results as figures (bar charts of MAP and timing,
line charts of scalability).  The benchmark harness runs in a terminal, so
this module renders the same information as ASCII charts:

* :func:`bar_chart` -- horizontal bars with labels and values;
* :func:`grouped_bar_chart` -- one bar per (group, series) pair, used for the
  per-error-class accuracy figure;
* :func:`line_chart` -- a simple multi-series scatter/line plot over a numeric
  x axis, used for the scalability figure.

The functions are deterministic pure-string builders so they are easy to test
and safe to embed in persisted reports.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

__all__ = ["bar_chart", "grouped_bar_chart", "line_chart"]


def _format_value(value: float) -> str:
    if abs(value) >= 1000 or value == int(value):
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:.2f}"
    return f"{value:.3f}"


def bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    title: str = "",
) -> str:
    """Horizontal bar chart of label -> value.

    Bars are scaled to the maximum value; negative values are clamped to zero
    (the benchmark metrics are all non-negative).
    """
    if width < 1:
        raise ValueError("width must be positive")
    lines: List[str] = [title] if title else []
    if not values:
        lines.append("(no data)")
        return "\n".join(lines)
    label_width = max(len(label) for label in values)
    maximum = max(max(values.values()), 0.0)
    for label, value in values.items():
        clamped = max(value, 0.0)
        bar_length = int(round(width * clamped / maximum)) if maximum > 0 else 0
        bar = "#" * bar_length
        lines.append(f"{label.ljust(label_width)} | {bar} {_format_value(value)}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    width: int = 40,
    title: str = "",
) -> str:
    """Bar chart with one section per group (e.g. one per dataset class)."""
    sections: List[str] = [title] if title else []
    all_values = [
        value for series in groups.values() for value in series.values()
    ]
    maximum = max(all_values, default=0.0)
    for group, series in groups.items():
        sections.append(f"[{group}]")
        if not series:
            sections.append("  (no data)")
            continue
        label_width = max(len(label) for label in series)
        for label, value in series.items():
            clamped = max(value, 0.0)
            bar_length = int(round(width * clamped / maximum)) if maximum > 0 else 0
            sections.append(
                f"  {label.ljust(label_width)} | {'#' * bar_length} {_format_value(value)}"
            )
    return "\n".join(sections)


def line_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 15,
    title: str = "",
) -> str:
    """Multi-series character plot over a shared numeric x/y range.

    Each series is a sequence of ``(x, y)`` points; points are marked with the
    first letter of the series name (collisions keep the earlier mark).  Axis
    extents are annotated below the plot.
    """
    if width < 2 or height < 2:
        raise ValueError("width and height must be at least 2")
    points = [(x, y) for values in series.values() for x, y in values]
    lines: List[str] = [title] if title else []
    if not points:
        lines.append("(no data)")
        return "\n".join(lines)
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for name, values in series.items():
        mark = name[0].upper() if name else "*"
        for x, y in values:
            column = int(round((x - x_low) / x_span * (width - 1)))
            row = height - 1 - int(round((y - y_low) / y_span * (height - 1)))
            if grid[row][column] == " ":
                grid[row][column] = mark
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(
        f"x: [{_format_value(x_low)} .. {_format_value(x_high)}]  "
        f"y: [{_format_value(y_low)} .. {_format_value(y_high)}]"
    )
    legend = ", ".join(f"{name[0].upper() if name else '*'}={name}" for name in series)
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
