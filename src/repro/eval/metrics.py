"""Accuracy metrics from information retrieval (paper section 5.2).

Given a ranked list of tuple ids returned for a query and the set of tuple
ids that are *relevant* (the query's ground-truth cluster), we compute:

* :func:`average_precision` -- the mean of the precision values measured at
  the rank of each relevant record retrieved, divided by the total number of
  relevant records (equation 5.1);
* :func:`max_f1` -- the maximum F1 score over all prefixes of the ranking
  (equation 5.2);
* :func:`precision_at` / :func:`recall_at` / :func:`precision_recall_curve`
  -- the building blocks.

``mean_average_precision`` / ``mean_max_f1`` aggregate over a query workload.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

__all__ = [
    "precision_at",
    "recall_at",
    "average_precision",
    "max_f1",
    "precision_recall_curve",
    "mean_average_precision",
    "mean_max_f1",
]


def _as_set(relevant: Iterable[int]) -> Set[int]:
    relevant_set = set(relevant)
    return relevant_set


def precision_at(ranking: Sequence[int], relevant: Iterable[int], rank: int) -> float:
    """Precision among the first ``rank`` results (1-based rank)."""
    if rank <= 0:
        raise ValueError("rank must be positive")
    relevant_set = _as_set(relevant)
    top = ranking[:rank]
    if not top:
        return 0.0
    hits = sum(1 for tid in top if tid in relevant_set)
    return hits / len(top)


def recall_at(ranking: Sequence[int], relevant: Iterable[int], rank: int) -> float:
    """Recall among the first ``rank`` results (1-based rank)."""
    if rank <= 0:
        raise ValueError("rank must be positive")
    relevant_set = _as_set(relevant)
    if not relevant_set:
        return 0.0
    top = ranking[:rank]
    hits = sum(1 for tid in top if tid in relevant_set)
    return hits / len(relevant_set)


def average_precision(ranking: Sequence[int], relevant: Iterable[int]) -> float:
    """Average precision of a ranking (equation 5.1).

    The denominator is the *total* number of relevant records, so relevant
    records that are never retrieved count against the score.
    """
    relevant_set = _as_set(relevant)
    if not relevant_set:
        return 0.0
    hits = 0
    precision_sum = 0.0
    for rank, tid in enumerate(ranking, start=1):
        if tid in relevant_set:
            hits += 1
            precision_sum += hits / rank
    return precision_sum / len(relevant_set)


def precision_recall_curve(
    ranking: Sequence[int], relevant: Iterable[int]
) -> List[Tuple[float, float]]:
    """``(precision, recall)`` after each rank position."""
    relevant_set = _as_set(relevant)
    curve: List[Tuple[float, float]] = []
    hits = 0
    for rank, tid in enumerate(ranking, start=1):
        if tid in relevant_set:
            hits += 1
        precision = hits / rank
        recall = hits / len(relevant_set) if relevant_set else 0.0
        curve.append((precision, recall))
    return curve


def max_f1(ranking: Sequence[int], relevant: Iterable[int]) -> float:
    """Maximum F1 over all prefixes of the ranking (equation 5.2)."""
    best = 0.0
    for precision, recall in precision_recall_curve(ranking, relevant):
        if precision + recall == 0.0:
            continue
        f1 = 2.0 * precision * recall / (precision + recall)
        if f1 > best:
            best = f1
    return best


def mean_average_precision(
    rankings: Sequence[Sequence[int]], relevants: Sequence[Iterable[int]]
) -> float:
    """MAP over a query workload."""
    if len(rankings) != len(relevants):
        raise ValueError("rankings and relevants must have the same length")
    if not rankings:
        return 0.0
    return sum(
        average_precision(ranking, relevant)
        for ranking, relevant in zip(rankings, relevants)
    ) / len(rankings)


def mean_max_f1(
    rankings: Sequence[Sequence[int]], relevants: Sequence[Iterable[int]]
) -> float:
    """Mean maximum F1 over a query workload."""
    if len(rankings) != len(relevants):
        raise ValueError("rankings and relevants must have the same length")
    if not rankings:
        return 0.0
    return sum(
        max_f1(ranking, relevant) for ranking, relevant in zip(rankings, relevants)
    ) / len(rankings)
