"""Report formatting and export for experiment results.

The benchmark harness and the examples need to present accuracy/timing
results as text tables and to persist them (CSV / markdown) so that runs can
be compared.  This module keeps that presentation logic in one place:

* :func:`text_table` -- fixed-width table for terminals;
* :func:`markdown_table` -- GitHub-flavoured markdown;
* :func:`to_csv` -- RFC-4180-ish CSV without external dependencies;
* :class:`ResultSink` -- collects rows incrementally and renders/saves them.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Sequence, Union

__all__ = ["text_table", "markdown_table", "to_csv", "ResultSink"]

Cell = Union[str, int, float, None]


def _stringify(value: Cell, float_format: str = "{:.4g}") -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def text_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    float_format: str = "{:.4g}",
) -> str:
    """Fixed-width text table (first column left-aligned, rest right-aligned)."""
    materialized = [[_stringify(value, float_format) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = [
        "  ".join(
            header.ljust(widths[i]) if i == 0 else header.rjust(widths[i])
            for i, header in enumerate(headers)
        ),
        "  ".join("-" * width for width in widths),
    ]
    for row in materialized:
        lines.append(
            "  ".join(
                value.ljust(widths[i]) if i == 0 else value.rjust(widths[i])
                for i, value in enumerate(row)
            )
        )
    return "\n".join(lines)


def markdown_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    float_format: str = "{:.4g}",
) -> str:
    """GitHub-flavoured markdown table."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_stringify(value, float_format) for value in row) + " |"
        )
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> str:
    """Render rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(["" if value is None else value for value in row])
    return buffer.getvalue()


class ResultSink:
    """Accumulates result rows and renders them in several formats.

    Rows are mappings; the column set is the union of keys in insertion
    order, so heterogeneous rows are handled gracefully (missing values
    render as empty cells).
    """

    def __init__(self, title: str = ""):
        self.title = title
        self._columns: List[str] = []
        self._rows: List[Dict[str, Cell]] = []

    def add(self, row: Mapping[str, Cell]) -> None:
        """Append one result row."""
        for key in row:
            if key not in self._columns:
                self._columns.append(key)
        self._rows.append(dict(row))

    def extend(self, rows: Iterable[Mapping[str, Cell]]) -> None:
        for row in rows:
            self.add(row)

    @property
    def columns(self) -> List[str]:
        return list(self._columns)

    @property
    def rows(self) -> List[List[Cell]]:
        return [[row.get(column) for column in self._columns] for row in self._rows]

    def __len__(self) -> int:
        return len(self._rows)

    # -- rendering ----------------------------------------------------------------

    def to_text(self, float_format: str = "{:.4g}") -> str:
        table = text_table(self._columns, self.rows, float_format)
        return f"{self.title}\n\n{table}" if self.title else table

    def to_markdown(self, float_format: str = "{:.4g}") -> str:
        table = markdown_table(self._columns, self.rows, float_format)
        return f"### {self.title}\n\n{table}" if self.title else table

    def to_csv(self) -> str:
        return to_csv(self._columns, self.rows)

    def save(self, path: Union[str, Path]) -> Path:
        """Save as text / markdown / CSV depending on the file extension."""
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix == ".csv":
            content = self.to_csv()
        elif suffix in (".md", ".markdown"):
            content = self.to_markdown()
        else:
            content = self.to_text()
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")
        return path
