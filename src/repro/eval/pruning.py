"""IDF-based token pruning (paper section 5.6).

The enhancement drops tokens whose idf falls below
``MIN(idf) + rate * (MAX(idf) - MIN(idf))`` -- i.e. very frequent, stopword-
like q-grams -- *before* any weights are computed, so the probability
distributions of the remaining tokens stay consistent.  The paper reports
that moderate rates (0.2--0.3) keep or even improve accuracy (especially for
the unweighted overlap predicates) while cutting preprocessing and query cost
substantially.

:class:`IdfPruner` computes the pruned vocabulary for a relation and exposes a
wrapped tokenizer that filters pruned tokens, which can be passed to any
token-based predicate.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.core.predicates.base import Predicate
from repro.core.predicates.registry import make_predicate
from repro.text.tokenize import QgramTokenizer, Tokenizer

__all__ = ["prune_rate_threshold", "PrunedTokenizer", "IdfPruner"]


def prune_rate_threshold(idf_values: Iterable[float], rate: float) -> float:
    """``MIN(idf) + rate * (MAX(idf) - MIN(idf))`` over the vocabulary."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be within [0, 1]")
    values = list(idf_values)
    if not values:
        return 0.0
    lowest, highest = min(values), max(values)
    return lowest + rate * (highest - lowest)


class PrunedTokenizer(Tokenizer):
    """A tokenizer wrapper that removes a fixed set of pruned tokens.

    Unknown attribute access is forwarded to the wrapped tokenizer so that
    predicates depending on tokenizer parameters (e.g. the q-gram length)
    keep working.
    """

    def __init__(self, inner: Tokenizer, pruned_tokens: Set[str]):
        object.__setattr__(self, "inner", inner)
        object.__setattr__(self, "pruned_tokens", frozenset(pruned_tokens))

    def tokenize(self, text: str) -> List[str]:
        return [
            token
            for token in self.inner.tokenize(text)
            if token not in self.pruned_tokens
        ]

    @property
    def name(self) -> str:
        return f"pruned({self.inner.name}, dropped={len(self.pruned_tokens)})"

    def __getattr__(self, attribute: str):
        return getattr(object.__getattribute__(self, "inner"), attribute)


class IdfPruner:
    """Compute and apply IDF-threshold pruning for a base relation."""

    def __init__(self, rate: float, tokenizer: Optional[Tokenizer] = None):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        self.rate = rate
        self.tokenizer = tokenizer or QgramTokenizer(q=2)
        self._idf: Dict[str, float] = {}
        self._pruned: Set[str] = set()
        self._threshold: float = 0.0
        self._fitted = False

    # -- fitting -----------------------------------------------------------------

    def fit(self, strings: Sequence[str]) -> "IdfPruner":
        """Compute the idf table and the pruned vocabulary for ``strings``."""
        document_frequency: Counter = Counter()
        for text in strings:
            document_frequency.update(set(self.tokenizer.tokenize(text)))
        total = len(strings)
        self._idf = {
            token: math.log(total) - math.log(df)
            for token, df in document_frequency.items()
        }
        self._threshold = prune_rate_threshold(self._idf.values(), self.rate)
        if self.rate == 0.0:
            self._pruned = set()
        else:
            self._pruned = {
                token for token, idf in self._idf.items() if idf < self._threshold
            }
        self._fitted = True
        return self

    # -- results -----------------------------------------------------------------

    @property
    def threshold(self) -> float:
        self._require_fitted()
        return self._threshold

    @property
    def pruned_tokens(self) -> Set[str]:
        self._require_fitted()
        return set(self._pruned)

    @property
    def vocabulary_size(self) -> int:
        self._require_fitted()
        return len(self._idf)

    @property
    def retained_fraction(self) -> float:
        """Fraction of the vocabulary that survives pruning."""
        self._require_fitted()
        if not self._idf:
            return 1.0
        return 1.0 - len(self._pruned) / len(self._idf)

    def idf_table(self) -> Dict[str, float]:
        self._require_fitted()
        return dict(self._idf)

    def idf_histogram(self, num_bins: int = 10) -> List[int]:
        """Histogram of idf values over the vocabulary (Figure 5.6)."""
        self._require_fitted()
        if num_bins <= 0:
            raise ValueError("num_bins must be positive")
        if not self._idf:
            return [0] * num_bins
        values = list(self._idf.values())
        lowest, highest = min(values), max(values)
        width = (highest - lowest) / num_bins or 1.0
        bins = [0] * num_bins
        for value in values:
            index = min(int((value - lowest) / width), num_bins - 1)
            bins[index] += 1
        return bins

    def pruned_tokenizer(self) -> PrunedTokenizer:
        """A tokenizer that drops the pruned tokens (pass to any predicate)."""
        self._require_fitted()
        return PrunedTokenizer(self.tokenizer, self._pruned)

    def apply(
        self,
        predicate: Union[Predicate, str],
        strings: Sequence[str],
        **predicate_kwargs,
    ) -> Predicate:
        """Fit ``predicate`` on ``strings`` with the pruned tokenizer installed."""
        if not self._fitted:
            self.fit(strings)
        if isinstance(predicate, str):
            predicate = make_predicate(
                predicate, tokenizer=self.pruned_tokenizer(), **predicate_kwargs
            )
        else:
            predicate.tokenizer = self.pruned_tokenizer()
        return predicate.fit(strings)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("IdfPruner must be fit() before use")
