"""Process-wide named counters and fixed-bucket histograms.

The engine's per-call stats dataclasses (:class:`~repro.core.topk.
PruningStats`, :class:`~repro.declarative.base.SQLFastPathStats`,
:class:`~repro.engine.plan.RunManyStats`, :class:`~repro.blocking.base.
BlockingStats`, :class:`~repro.shard.predicate.ShardStats`) describe *one*
operation and are overwritten by the next; the :class:`MetricsRegistry`
accumulates them into long-lived counters and latency histograms a serving
front (or the planned cost model) can read at any time.

Conventions:

* counters are monotone totals (``queries_total``, ``cache_hits``,
  ``sql_statements_total``, ``postings_opened``, ``postings_skipped``,
  ``shard_tasks``, ...);
* histograms observe seconds into fixed buckets
  (``latency.fit``, ``latency.execute.direct|declarative|sharded``);
* gauges are point-in-time levels that go up *and* down
  (``serve.queue_depth``, ``serve.active_requests``) -- the serving layer's
  admission controller is the main writer.

:data:`GLOBAL_METRICS` is the default registry every engine publishes into;
pass ``SimilarityEngine(metrics=MetricsRegistry())`` for an isolated one.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Dict, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "GLOBAL_METRICS",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Upper bounds (seconds) of the default latency buckets: 100 µs .. 10 s,
#: roughly log-spaced, plus an implicit overflow bucket.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotone named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time level that can rise and fall (queue depths etc.).

    Unlike :class:`Counter`, a gauge is not monotone: ``set`` overwrites the
    level and ``inc``/``dec`` move it.  ``high_water`` remembers the maximum
    level ever set, which is what capacity planning reads after a load run.
    """

    __slots__ = ("name", "value", "high_water")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self.high_water = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def inc(self, amount: float = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value}, high_water={self.high_water})"


class Histogram:
    """A fixed-bucket histogram of observed values (typically seconds).

    ``counts[i]`` counts observations ``<= buckets[i]``; the final slot is
    the overflow bucket.  Quantiles are bucket-resolution estimates: the
    upper bound of the bucket where the cumulative count crosses ``q``.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        if not buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.buckets, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (0 < q <= 1)."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be within (0, 1]")
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                if index < len(self.buckets):
                    return self.buckets[index]
                return float("inf")  # overflow bucket
        return float("inf")  # pragma: no cover - unreachable

    def to_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.6f})"


class MetricsRegistry:
    """Named counters and histograms, created on first use, thread-safe."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}  # guarded-by: _lock
        self._gauges: Dict[str, Gauge] = {}  # guarded-by: _lock
        self._histograms: Dict[str, Histogram] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    # -- access ------------------------------------------------------------------
    #
    # The getters run a lock-free fast path first: dict.get is GIL-atomic
    # and metric objects are only ever added (reset() is tests-only), so a
    # hit needs no lock and the hot engine paths never serialize on the
    # registry.  Creation falls into the locked setdefault.

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)  # repro-analysis: disable=RPL004 reason=GIL-atomic dict.get fast path; creation races fall through to the locked setdefault below
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)  # repro-analysis: disable=RPL004 reason=GIL-atomic dict.get fast path; creation races fall through to the locked setdefault below
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge(name))
        return gauge

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        histogram = self._histograms.get(name)  # repro-analysis: disable=RPL004 reason=GIL-atomic dict.get fast path; creation races fall through to the locked setdefault below
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    name, Histogram(name, buckets or DEFAULT_LATENCY_BUCKETS)
                )
        return histogram

    def inc(self, name: str, amount: float = 1) -> None:
        """Increment the named counter (created at zero if missing)."""
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""
        self.histogram(name).observe(value)

    def value(self, name: str) -> float:
        """Current value of a counter (0 if it was never incremented)."""
        counter = self._counters.get(name)  # repro-analysis: disable=RPL004 reason=GIL-atomic read of an insert-only dict; a racing creation just reads as 0
        return counter.value if counter is not None else 0

    def gauge_value(self, name: str) -> float:
        """Current level of a gauge (0 if it was never set)."""
        gauge = self._gauges.get(name)  # repro-analysis: disable=RPL004 reason=GIL-atomic read of an insert-only dict; a racing creation just reads as 0
        return gauge.value if gauge is not None else 0

    # -- snapshots ---------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (see :mod:`repro.obs.export`)."""
        # Unlike the single-key reads above, iterating the dicts while
        # another thread inserts raises RuntimeError (dict mutated during
        # iteration) -- snapshots take the lock (RPL004).
        with self._lock:
            return {
                "counters": {
                    name: counter.value
                    for name, counter in sorted(self._counters.items())
                },
                "gauges": {
                    name: {"value": gauge.value, "high_water": gauge.high_water}
                    for name, gauge in sorted(self._gauges.items())
                },
                "histograms": {
                    name: histogram.to_dict()
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        """Drop every counter, gauge and histogram (tests; not live engines)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide default registry (every engine without an explicit
#: ``metrics=`` publishes here).
GLOBAL_METRICS = MetricsRegistry()
