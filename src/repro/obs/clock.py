"""The one sanctioned monotonic clock of the codebase.

Every duration the library measures -- span timings, metrics histograms, the
evaluation harness, the benchmarks -- goes through :func:`perf_clock`, so a
test (or a deterministic trace) can swap the clock in one place instead of
monkeypatching ``time.perf_counter`` call sites scattered across modules.
CI greps for bare ``time.perf_counter()`` calls outside this package to keep
it that way.
"""

from __future__ import annotations

import time

__all__ = ["perf_clock"]

#: Monotonic high-resolution clock (seconds as float).  Import this instead
#: of ``time.perf_counter``; it is the only place the stdlib clock is named.
perf_clock = time.perf_counter
