"""Observability: span-tree tracing, a metrics registry, and JSON export.

This package is the instrumentation seam of the engine.  The pieces:

* :mod:`repro.obs.clock` -- :func:`perf_clock`, the single sanctioned
  monotonic clock (bare ``time.perf_counter()`` is banned elsewhere);
* :mod:`repro.obs.trace` -- :class:`Tracer` / :class:`Span` span trees with
  an injectable clock, the zero-cost :data:`NOOP_TRACER`, and the
  :class:`Observability` holder the engine threads through its layers;
* :mod:`repro.obs.metrics` -- :class:`MetricsRegistry` counters and
  fixed-bucket histograms, with the process-wide :data:`GLOBAL_METRICS`;
* :mod:`repro.obs.export` -- the versioned JSON schemas for traces, metrics
  snapshots and benchmark reports.

Quick start::

    from repro import SimilarityEngine
    from repro.obs import Tracer

    engine = SimilarityEngine(tracer=Tracer())
    query = engine.from_strings(rows).predicate("bm25")
    traced = query.trace("Morgn Stanley", op="top_k", k=5)
    print(traced.span.describe())
"""

from repro.obs.clock import perf_clock
from repro.obs.export import (
    SCHEMA,
    bench_envelope,
    metrics_to_json,
    trace_to_json,
    write_json,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    GLOBAL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import NOOP_TRACER, NullTracer, Observability, Span, Tracer

__all__ = [
    "perf_clock",
    "Span",
    "Tracer",
    "NullTracer",
    "NOOP_TRACER",
    "Observability",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "GLOBAL_METRICS",
    "DEFAULT_LATENCY_BUCKETS",
    "SCHEMA",
    "trace_to_json",
    "metrics_to_json",
    "bench_envelope",
    "write_json",
]
