"""Span trees: hierarchical, attributed timings of one query execution.

A :class:`Tracer` hands out context-manager spans that nest into a tree
mirroring the execution layers of the engine::

    engine.query
    ├─ fit | cache_hit
    └─ execute.direct | execute.declarative | execute.sharded
       ├─ postings.scan                  (direct: max-score counters)
       ├─ shard[i].task / shard[i].skipped   (sharded: per-shard workers)
       └─ sql.statement                  (declarative: emitted SQL)

Spans carry free-form attributes (predicate name, ``k``, candidate and
pruning counters, rendered SQL) and monotonic-clock durations.  The clock is
injectable, so tests assert exact durations instead of sleeping.

Two properties make the tracer safe to leave permanently wired in:

* :data:`NOOP_TRACER` is the default.  Its ``span()`` returns a shared,
  stateless null span whose ``__enter__``/``__exit__``/``set``/``add`` do
  nothing, so the disabled path costs a single method call per span -- the
  benchmark suite asserts the overhead stays within noise of untraced code.
* Spans serialize to plain dicts (:meth:`Span.to_dict` /
  :meth:`Span.from_dict`), which is how shard workers running in other
  processes report their sub-spans back: the worker builds a record, the
  parent re-attaches it under the live execute span.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

from repro.obs.clock import perf_clock

__all__ = ["Span", "Tracer", "NullTracer", "NOOP_TRACER", "Observability"]


class Span:
    """One node of a span tree: a named, attributed, timed unit of work."""

    __slots__ = ("name", "start", "end", "attributes", "children")

    def __init__(
        self,
        name: str,
        start: float = 0.0,
        end: float = 0.0,
        attributes: Optional[Dict[str, object]] = None,
    ):
        self.name = name
        self.start = start
        self.end = end
        self.attributes: Dict[str, object] = dict(attributes) if attributes else {}
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        """Elapsed clock time, in the tracer clock's units (seconds)."""
        return max(0.0, self.end - self.start)

    def set(self, **attributes) -> "Span":
        """Set (or overwrite) attributes; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    def add(self, key: str, amount: float = 1) -> "Span":
        """Increment a numeric attribute (missing counts as 0)."""
        self.attributes[key] = self.attributes.get(key, 0) + amount
        return self

    def attach(self, child: "Span") -> "Span":
        """Append a completed child span (e.g. one shipped from a worker)."""
        self.children.append(child)
        return child

    # -- queries over the tree ---------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and every descendant."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span (depth-first) whose name matches exactly."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, prefix: str) -> List["Span"]:
        """Every span (depth-first) whose name starts with ``prefix``."""
        return [span for span in self.walk() if span.name.startswith(prefix)]

    def sum_attribute(self, key: str) -> float:
        """Sum of a numeric attribute over this span and every descendant."""
        total = 0
        for span in self.walk():
            value = span.attributes.get(key)
            if value is not None:
                total += value
        return total

    # -- serialization (cross-process span propagation) --------------------------

    def to_dict(self) -> dict:
        """Plain-dict record: picklable, JSON-serializable, rebuildable."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        span = cls(
            record["name"],
            start=record.get("start", 0.0),
            end=record.get("end", 0.0),
            attributes=record.get("attributes"),
        )
        for child in record.get("children", ()):
            span.children.append(cls.from_dict(child))
        return span

    # -- rendering ---------------------------------------------------------------

    def describe(self, indent: int = 0) -> str:
        """Human-readable tree (one line per span, durations in ms)."""
        attributes = ", ".join(
            f"{key}={value!r}" for key, value in sorted(self.attributes.items())
        )
        line = "  " * indent + (
            f"{self.name}  [{self.duration * 1000.0:.3f} ms]"
            + (f"  {{{attributes}}}" if attributes else "")
        )
        lines = [line]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, duration={self.duration:.6f}, "
            f"attributes={self.attributes!r}, children={len(self.children)})"
        )


class Tracer:
    """Hands out nesting context-manager spans and keeps the finished roots.

    Parameters
    ----------
    clock:
        Zero-argument callable returning monotonically increasing floats.
        Defaults to :func:`repro.obs.clock.perf_clock`; tests inject a
        counter for deterministic durations.

    The span stack is thread-local, so a tracer shared across threads keeps
    each thread's nesting separate (shard *worker* spans do not rely on this:
    they travel back as records and re-attach in the parent thread).
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock if clock is not None else perf_clock
        self._local = threading.local()
        #: Root span of the most recently *completed* top-level span.
        self.last_root: Optional[Span] = None

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attributes) -> Iterator[Span]:
        """Open a span as a child of the current one (or as a new root)."""
        node = Span(name, start=self._clock(), attributes=attributes or None)
        stack = self._stack()
        if stack:
            stack[-1].children.append(node)
        stack.append(node)
        try:
            yield node
        finally:
            node.end = self._clock()
            stack.pop()
            if not stack:
                self.last_root = node


class _NullSpan:
    """Shared do-nothing span: the entire cost of disabled tracing."""

    __slots__ = ()

    name = "noop"
    start = 0.0
    end = 0.0
    duration = 0.0
    attributes: Dict[str, object] = {}
    children: List[Span] = []

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attributes) -> "_NullSpan":
        return self

    def add(self, key: str, amount: float = 1) -> "_NullSpan":
        return self

    def attach(self, child: Span) -> Span:
        return child


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: ``span()`` returns one shared null context manager."""

    enabled = False
    current = None
    last_root = None

    def span(self, name: str, **attributes) -> _NullSpan:
        return _NULL_SPAN


#: Process-wide disabled tracer; the default everywhere tracing is optional.
NOOP_TRACER = NullTracer()


class Observability:
    """The (tracer, metrics) pair threaded through the execution layers.

    Holds *mutable* references shared between the engine, its recording
    backends and its sharded predicates, so swapping the tracer on the holder
    (``obs.activate(...)``, used by ``Query.trace()`` and ``explain()``)
    reaches every layer without re-wiring anything.
    """

    __slots__ = ("tracer", "metrics")

    def __init__(self, tracer=None, metrics=None):
        from repro.obs.metrics import GLOBAL_METRICS

        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.metrics = metrics if metrics is not None else GLOBAL_METRICS

    @contextmanager
    def activate(self, tracer: Tracer) -> Iterator[Tracer]:
        """Temporarily swap the tracer (restored on exit, even on error)."""
        previous = self.tracer
        self.tracer = tracer
        try:
            yield tracer
        finally:
            self.tracer = previous

    def __reduce__(self):
        # Tracers hold thread-local state and registries hold locks; both are
        # per-process runtime state, so a pickled holder (e.g. inside a saved
        # engine snapshot) restores to the process defaults.
        return (Observability, ())
