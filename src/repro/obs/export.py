"""Shared JSON schemas for traces, metrics snapshots and benchmark reports.

Three artifact kinds leave the process as JSON, all versioned under one
schema string so downstream tooling can dispatch on shape:

* ``trace`` -- one span tree (:func:`trace_to_json`), from ``--trace`` or
  :meth:`Query.trace`;
* ``metrics`` -- a registry snapshot (:func:`metrics_to_json`), from
  ``--metrics-out``;
* ``bench`` -- a benchmark/timing report (:func:`bench_envelope`), the
  common envelope of ``eval/timing.py`` and every ``benchmarks/bench_*.py``
  BENCH_*.json file: ``{schema, benchmark, relation, config, results}``.
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span

__all__ = [
    "SCHEMA",
    "trace_to_json",
    "metrics_to_json",
    "bench_envelope",
    "write_json",
]

#: Version tag stamped on every exported artifact.
SCHEMA = "repro.obs/1"


def trace_to_json(root: Span) -> dict:
    """Wrap one span tree in the versioned trace envelope."""
    return {"schema": SCHEMA, "kind": "trace", "root": root.to_dict()}


def metrics_to_json(metrics: MetricsRegistry) -> dict:
    """Wrap a registry snapshot in the versioned metrics envelope."""
    payload = metrics.to_dict()
    payload.update({"schema": SCHEMA, "kind": "metrics"})
    return payload


def bench_envelope(
    benchmark: str,
    relation: Optional[dict],
    config: dict,
    results: Sequence[dict],
    **extra,
) -> dict:
    """The common benchmark-report envelope (BENCH_*.json shape).

    ``results`` is a list of flat dicts -- one per measured configuration --
    whose keys the individual benchmark defines; the envelope is what makes
    the files machine-comparable across benchmarks.  Every envelope records
    the scoring-kernel backend that was active when it was produced
    (``numpy``/``python``), so BENCH_*.json numbers are attributable.
    """
    report = {
        "schema": SCHEMA,
        "kind": "bench",
        "benchmark": benchmark,
        "relation": dict(relation) if relation else {},
        "config": dict(config),
        "kernel": _kernel_backend(),
        "results": [dict(row) for row in results],
    }
    report.update(extra)
    return report


def _kernel_backend() -> str:
    # Imported lazily: repro.obs must stay importable without repro.core.
    try:
        from repro.core.kernels import active_backend
    except ImportError:  # pragma: no cover - defensive
        return "unknown"
    return active_backend()


def write_json(path: str, payload: dict) -> None:
    """Write one exported artifact with stable formatting."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
