"""Token weighting schemes and collection statistics.

Every weighted predicate in the paper is driven by statistics gathered over
the *base relation* during preprocessing:

* document frequency ``n_t`` (number of tuples containing a token),
* term frequency ``tf(t, D)`` within each tuple,
* tuple length in tokens and the average tuple length,
* collection frequency ``cf_t`` and total collection size ``cs``.

:class:`CollectionStatistics` computes all of these once from the tokenized
relation.  On top of it we provide the weighting schemes used by the paper:

* ``idf(t) = log(N) - log(n_t)`` -- plain inverse document frequency,
* ``rs(t) = log(N - n_t + 0.5) - log(n_t + 0.5)`` -- the Robertson-Sparck
  Jones weight (equation 3.5), used by WeightedMatch / WeightedJaccard and as
  the idf part of BM25,
* length-normalized tf-idf weights (section 3.2.1),
* BM25 document-side weights (section 3.2.2).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = [
    "CollectionStatistics",
    "idf_weights",
    "rs_weights",
    "tfidf_weights",
    "bm25_document_weights",
    "bm25_query_weights",
    "BM25Parameters",
]


@dataclass(frozen=True)
class BM25Parameters:
    """Independent parameters of the BM25 weighting scheme.

    Defaults follow section 5.3.2 of the paper (``k1=1.5``, ``k3=8``,
    ``b=0.675``), themselves taken from the TREC-4 Okapi experiments.
    """

    k1: float = 1.5
    k3: float = 8.0
    b: float = 0.675

    def __post_init__(self) -> None:
        if self.k1 < 0 or self.k3 < 0:
            raise ValueError("k1 and k3 must be non-negative")
        if not 0.0 <= self.b <= 1.0:
            raise ValueError("b must be within [0, 1]")


class CollectionStatistics:
    """Corpus-level statistics over a tokenized relation.

    Parameters
    ----------
    token_lists:
        One token list per tuple of the base relation, in tuple-id order.

    The object is immutable after construction; all derived statistics are
    computed eagerly because every weighting scheme needs most of them.
    """

    def __init__(self, token_lists: Sequence[Sequence[str]]):
        self._token_lists: List[List[str]] = [list(tokens) for tokens in token_lists]
        self._num_tuples = len(self._token_lists)
        self._term_frequencies: List[Counter] = [Counter(tokens) for tokens in self._token_lists]
        self._lengths: List[int] = [len(tokens) for tokens in self._token_lists]

        document_frequency: Counter = Counter()
        collection_frequency: Counter = Counter()
        for tf in self._term_frequencies:
            document_frequency.update(tf.keys())
            collection_frequency.update(tf)
        self._document_frequency: Dict[str, int] = dict(document_frequency)
        self._collection_frequency: Dict[str, int] = dict(collection_frequency)
        self._collection_size = sum(self._lengths)
        self._average_length = (
            self._collection_size / self._num_tuples if self._num_tuples else 0.0
        )
        self._pavg_table: Optional[Dict[str, float]] = None

    # -- raw statistics -----------------------------------------------------

    @property
    def num_tuples(self) -> int:
        """``N``: number of tuples in the base relation."""
        return self._num_tuples

    @property
    def vocabulary(self) -> Iterable[str]:
        """All distinct tokens appearing in the relation."""
        return self._document_frequency.keys()

    @property
    def collection_size(self) -> int:
        """``cs``: total number of token occurrences in the relation."""
        return self._collection_size

    @property
    def average_length(self) -> float:
        """``avgdl``: average number of tokens per tuple."""
        return self._average_length

    def length(self, tid: int) -> int:
        """``|D|``: number of tokens of tuple ``tid``."""
        return self._lengths[tid]

    def lengths(self) -> List[int]:
        return list(self._lengths)

    def term_frequency(self, tid: int, token: str) -> int:
        """``tf(t, D)`` for tuple ``tid``."""
        return self._term_frequencies[tid].get(token, 0)

    def term_frequencies(self, tid: int) -> Counter:
        """The full term-frequency Counter of tuple ``tid``."""
        return self._term_frequencies[tid]

    def document_frequency(self, token: str) -> int:
        """``n_t`` / ``df_t``: number of tuples containing ``token``."""
        return self._document_frequency.get(token, 0)

    def collection_frequency(self, token: str) -> int:
        """``cf_t``: total number of occurrences of ``token`` in the relation."""
        return self._collection_frequency.get(token, 0)

    def tokens(self, tid: int) -> List[str]:
        """The raw token list of tuple ``tid`` (duplicates preserved)."""
        return list(self._token_lists[tid])

    def __len__(self) -> int:
        return self._num_tuples

    # -- weighting schemes ---------------------------------------------------

    def idf(self, token: str) -> float:
        """``log(N) - log(n_t)``; unseen tokens get the average idf."""
        df = self.document_frequency(token)
        if df == 0:
            return self.average_idf()
        return math.log(self._num_tuples) - math.log(df)

    def average_idf(self) -> float:
        """Mean idf over the vocabulary, used for unseen query tokens."""
        if not self._document_frequency:
            return 0.0
        total = sum(
            math.log(self._num_tuples) - math.log(df)
            for df in self._document_frequency.values()
        )
        return total / len(self._document_frequency)

    def rs_weight(self, token: str) -> float:
        """Robertson-Sparck Jones weight ``w^(1)`` (equation 3.5)."""
        df = self.document_frequency(token)
        return math.log(self._num_tuples - df + 0.5) - math.log(df + 0.5)

    def idf_table(self) -> Dict[str, float]:
        """idf weight for every token in the vocabulary."""
        return {token: self.idf(token) for token in self._document_frequency}

    def rs_table(self) -> Dict[str, float]:
        """RS weight for every token in the vocabulary."""
        return {token: self.rs_weight(token) for token in self._document_frequency}

    def pavg_table(self) -> Dict[str, float]:
        """``p̂_avg(t)``: mean maximum-likelihood probability of ``t`` over the
        tuples containing it (Ponte-Croft language model, section 3.3.1).

        Computed lazily (only the LM predicate needs it) and cached, so the
        common weighting schemes do not pay the extra pass.  Exposing it here
        makes it part of the predicate-independent collection statistics that
        sharded execution computes globally and injects per shard.
        """
        if self._pavg_table is None:
            pml_sums: Dict[str, float] = {}
            for tid in range(self._num_tuples):
                length = self._lengths[tid] or 1
                for token, tf in self._term_frequencies[tid].items():
                    pml_sums[token] = pml_sums.get(token, 0.0) + tf / length
            self._pavg_table = {
                token: total / self._document_frequency[token]
                for token, total in pml_sums.items()
            }
        return self._pavg_table


def idf_weights(stats: CollectionStatistics, tokens: Iterable[str]) -> Dict[str, float]:
    """idf weight for each distinct token in ``tokens`` (unseen -> average idf)."""
    return {token: stats.idf(token) for token in set(tokens)}


def rs_weights(stats: CollectionStatistics, tokens: Iterable[str]) -> Dict[str, float]:
    """RS weight for each distinct token in ``tokens``.

    Tokens absent from the collection get ``log(N + 0.5) - log(0.5)``, the
    natural limit of equation 3.5 for ``n_t = 0``.
    """
    return {token: stats.rs_weight(token) for token in set(tokens)}


def tfidf_weights(
    token_frequency: Mapping[str, int],
    idf: Mapping[str, float],
    default_idf: float = 0.0,
) -> Dict[str, float]:
    """Length-normalized tf-idf weights for one string (section 3.2.1).

    ``w'(t, S) = tf(t, S) * idf(t)`` and the result is divided by the L2 norm
    of the ``w'`` vector so that cosine similarity reduces to a dot product.
    """
    raw = {
        token: tf * idf.get(token, default_idf)
        for token, tf in token_frequency.items()
    }
    norm = math.sqrt(sum(value * value for value in raw.values()))
    if norm == 0.0:
        return {token: 0.0 for token in raw}
    return {token: value / norm for token, value in raw.items()}


def bm25_document_weights(
    stats: CollectionStatistics,
    tid: int,
    params: BM25Parameters | None = None,
) -> Dict[str, float]:
    """BM25 document-side weights ``wd(t, D)`` for tuple ``tid`` (section 3.2.2)."""
    params = params or BM25Parameters()
    length = stats.length(tid)
    avgdl = stats.average_length or 1.0
    k_d = params.k1 * ((1.0 - params.b) + params.b * length / avgdl)
    weights: Dict[str, float] = {}
    for token, tf in stats.term_frequencies(tid).items():
        w1 = stats.rs_weight(token)
        weights[token] = w1 * (params.k1 + 1.0) * tf / (k_d + tf)
    return weights


def bm25_query_weights(
    query_frequency: Mapping[str, int],
    params: BM25Parameters | None = None,
) -> Dict[str, float]:
    """BM25 query-side weights ``wq(t, Q)`` (section 3.2.2)."""
    params = params or BM25Parameters()
    return {
        token: (params.k3 + 1.0) * tf / (params.k3 + tf)
        for token, tf in query_frequency.items()
    }
