"""Text substrate: tokenizers, string distances, token weighting and minhash.

This package contains everything the similarity predicates need that operates
purely on strings and token multisets:

* :mod:`repro.text.strings` -- character-level distances (Levenshtein, Jaro,
  Jaro-Winkler) and the derived edit similarity used by the paper.
* :mod:`repro.text.tokenize` -- q-gram and word tokenizers, including the
  paper's ``$``-padded q-gram scheme (section 5.3.3) and the two-level
  tokenization used by combination predicates.
* :mod:`repro.text.weights` -- collection statistics and token weighting
  schemes (idf, Robertson-Sparck Jones, normalized tf-idf, BM25).
* :mod:`repro.text.minhash` -- min-wise independent permutations used by the
  ``GESapx`` predicate.
"""

from repro.text.strings import (
    edit_similarity,
    jaro,
    jaro_winkler,
    levenshtein,
)
from repro.text.tokenize import (
    QgramTokenizer,
    WordTokenizer,
    TwoLevelTokenizer,
    qgrams,
    word_tokens,
)
from repro.text.weights import (
    CollectionStatistics,
    idf_weights,
    rs_weights,
    tfidf_weights,
)
from repro.text.minhash import MinHasher, minhash_similarity, stable_token_hash

__all__ = [
    "levenshtein",
    "edit_similarity",
    "jaro",
    "jaro_winkler",
    "qgrams",
    "word_tokens",
    "QgramTokenizer",
    "WordTokenizer",
    "TwoLevelTokenizer",
    "CollectionStatistics",
    "idf_weights",
    "rs_weights",
    "tfidf_weights",
    "MinHasher",
    "minhash_similarity",
    "stable_token_hash",
]
