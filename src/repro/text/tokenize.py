"""Tokenizers used by all similarity predicates.

The paper tokenizes strings either into *q-grams* (sequences of ``q``
consecutive characters) or into *word tokens*, and for combination predicates
into words first and then q-grams of each word ("two-level tokenization").

The q-gram scheme follows section 5.3.3 exactly: ``q - 1`` copies of a padding
symbol (``$`` by default) are substituted for every whitespace run and are also
prepended and appended to the string, and the string is upper-cased.  This way
"Department of Computer Science" and "Computer Science Department" share most
of their q-grams regardless of word order.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = [
    "normalize_string",
    "pad_string",
    "qgrams",
    "word_tokens",
    "Tokenizer",
    "QgramTokenizer",
    "WordTokenizer",
    "TwoLevelTokenizer",
    "token_counts",
]

_WHITESPACE_RE = re.compile(r"\s+")


def normalize_string(text: str, uppercase: bool = True) -> str:
    """Collapse whitespace runs and optionally upper-case the string."""
    collapsed = _WHITESPACE_RE.sub(" ", text.strip())
    return collapsed.upper() if uppercase else collapsed


def pad_string(text: str, q: int, pad_char: str = "$") -> str:
    """Return ``text`` padded for q-gram extraction per paper section 5.3.3.

    ``q - 1`` pad characters are placed at the beginning and end of the string
    and substituted for each whitespace run.

    >>> pad_string("db lab", 3)
    '$$DB$$LAB$$'
    """
    if q < 1:
        raise ValueError("q must be >= 1")
    if len(pad_char) != 1:
        raise ValueError("pad_char must be a single character")
    pad = pad_char * (q - 1)
    body = _WHITESPACE_RE.sub(pad, normalize_string(text))
    return f"{pad}{body}{pad}"


def qgrams(text: str, q: int = 2, pad_char: str = "$") -> list[str]:
    """Extract q-grams from ``text`` using the paper's padding scheme.

    The result is a list (with duplicates preserved, because term frequencies
    matter for the weighted predicates).

    >>> qgrams("ab", 2)
    ['$A', 'AB', 'B$']
    """
    padded = pad_string(text, q, pad_char)
    if len(padded) < q:
        return [padded] if padded else []
    return [padded[i : i + q] for i in range(len(padded) - q + 1)]


def word_tokens(text: str, uppercase: bool = True) -> list[str]:
    """Split ``text`` into word tokens on whitespace.

    Punctuation is kept attached to words (matching the SQL word tokenizer in
    Appendix A.2, which splits purely on spaces).
    """
    normalized = normalize_string(text, uppercase=uppercase)
    if not normalized:
        return []
    return normalized.split(" ")


def token_counts(tokens: Iterable[str]) -> Counter:
    """Return a ``Counter`` of term frequencies for a token sequence."""
    return Counter(tokens)


@dataclass(frozen=True)
class Tokenizer:
    """Base class for tokenizers.

    Subclasses implement :meth:`tokenize`.  Tokenizers are small frozen value
    objects so they can be shared between predicates, stored in experiment
    configurations and compared for equality in tests.
    """

    def tokenize(self, text: str) -> list[str]:
        raise NotImplementedError

    def tokenize_many(self, texts: Sequence[str]) -> list[list[str]]:
        """Tokenize every string in ``texts``; convenience for preprocessing."""
        return [self.tokenize(text) for text in texts]

    @property
    def name(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class QgramTokenizer(Tokenizer):
    """q-gram tokenizer with the paper's padding scheme (default ``q=2``)."""

    q: int = 2
    pad_char: str = "$"

    def __post_init__(self) -> None:
        if self.q < 1:
            raise ValueError("q must be >= 1")
        if len(self.pad_char) != 1:
            raise ValueError("pad_char must be a single character")

    def tokenize(self, text: str) -> list[str]:
        return qgrams(text, self.q, self.pad_char)

    @property
    def name(self) -> str:
        return f"qgram(q={self.q})"


@dataclass(frozen=True)
class WordTokenizer(Tokenizer):
    """Whitespace word tokenizer (upper-cases by default)."""

    uppercase: bool = True

    def tokenize(self, text: str) -> list[str]:
        return word_tokens(text, uppercase=self.uppercase)

    @property
    def name(self) -> str:
        return "word"


@dataclass(frozen=True)
class TwoLevelTokenizer(Tokenizer):
    """Two-level tokenization used by combination predicates.

    :meth:`tokenize` returns the *word* tokens (the outer level); use
    :meth:`word_qgrams` to obtain the q-grams of an individual word token
    (the inner level, Appendix A.3).
    """

    q: int = 2
    pad_char: str = "$"
    word_tokenizer: WordTokenizer = field(default_factory=WordTokenizer)

    def tokenize(self, text: str) -> list[str]:
        return self.word_tokenizer.tokenize(text)

    def word_qgrams(self, word: str) -> list[str]:
        return qgrams(word, self.q, self.pad_char)

    def tokenize_nested(self, text: str) -> list[tuple[str, list[str]]]:
        """Return ``(word, qgrams_of_word)`` pairs for every word in ``text``."""
        return [(word, self.word_qgrams(word)) for word in self.tokenize(text)]

    @property
    def name(self) -> str:
        return f"two-level(q={self.q})"
