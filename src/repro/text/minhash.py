"""Min-wise independent permutations (min-hash) for set-similarity estimation.

The ``GESapx`` combination predicate (section 4.5) replaces the exact Jaccard
similarity between the q-gram sets of two word tokens with a min-hash
estimate.  A :class:`MinHasher` draws ``num_hashes`` random hash functions of
the form ``h_i(x) = (a_i * x + b_i) mod p`` over token hashes; the signature
of a set is the element-wise minimum of each hash over the set, and the
estimated Jaccard similarity of two sets is the fraction of signature
positions that agree.

The hash functions are seeded deterministically so that preprocessing is
reproducible across runs (mirroring the paper's stored ``BASE_HASHFUNC``
table).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "MinHasher",
    "MinHashSignature",
    "minhash_similarity",
    "stable_token_hash",
]

# A Mersenne prime comfortably larger than any 32-bit token hash.
_PRIME = (1 << 61) - 1


def stable_token_hash(token: str) -> int:
    """Deterministic 32-bit hash of a token (independent of PYTHONHASHSEED)."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") & 0xFFFFFFFF


#: Backwards-compatible private alias (pre-blocking callers used this name).
_stable_token_hash = stable_token_hash


MinHashSignature = Tuple[int, ...]


@dataclass(frozen=True)
class _HashFunction:
    a: int
    b: int

    def __call__(self, value: int) -> int:
        return (self.a * value + self.b) % _PRIME


class MinHasher:
    """Family of min-wise independent permutations over token sets.

    Parameters
    ----------
    num_hashes:
        Signature length.  The paper uses 5 hash functions for GESapx and
        notes diminishing returns beyond that.
    seed:
        Seed for drawing the hash-function coefficients; fixed by default for
        reproducible preprocessing.
    """

    def __init__(self, num_hashes: int = 5, seed: int = 20070411):
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        self._num_hashes = num_hashes
        self._seed = seed
        rng = random.Random(seed)
        self._functions: List[_HashFunction] = [
            _HashFunction(a=rng.randrange(1, _PRIME), b=rng.randrange(0, _PRIME))
            for _ in range(num_hashes)
        ]

    @property
    def num_hashes(self) -> int:
        return self._num_hashes

    @property
    def seed(self) -> int:
        return self._seed

    def signature(self, tokens: Iterable[str]) -> MinHashSignature:
        """Min-hash signature of a token set.

        Duplicates are ignored (min-hash operates on sets).  An empty set
        yields a signature of ``_PRIME`` sentinels which never collides with a
        non-empty signature position.
        """
        hashed = {stable_token_hash(token) for token in tokens}
        return self.signature_from_hashes(hashed)

    def signature_from_hashes(self, hashed: Iterable[int]) -> MinHashSignature:
        """Signature over pre-hashed token values (see :func:`stable_token_hash`).

        Callers that hash many overlapping token sets (e.g. LSH blocking over
        a whole relation) can hash each distinct token once and reuse the
        values across tuples.
        """
        values = set(hashed)
        if not values:
            return tuple([_PRIME] * self._num_hashes)
        return tuple(
            min(function(value) for value in values) for function in self._functions
        )

    def similarity(self, left: Iterable[str], right: Iterable[str]) -> float:
        """Estimated Jaccard similarity between two token sets."""
        return minhash_similarity(self.signature(left), self.signature(right))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MinHasher(num_hashes={self._num_hashes}, seed={self._seed})"


def minhash_similarity(left: Sequence[int], right: Sequence[int]) -> float:
    """Fraction of matching positions between two equal-length signatures."""
    if len(left) != len(right):
        raise ValueError("signatures must have the same length")
    if not left:
        return 0.0
    matches = sum(1 for a, b in zip(left, right) if a == b and a != _PRIME)
    return matches / len(left)
