"""Character-level string similarity functions.

These are the building blocks for the edit-based and combination predicates of
the paper (chapter 3.4 and 3.5):

* :func:`levenshtein` -- classic unit-cost edit distance.
* :func:`edit_similarity` -- the paper's normalized edit similarity
  ``1 - tc(Q, D) / max(|Q|, |D|)`` (equation 3.13).
* :func:`jaro` and :func:`jaro_winkler` -- the census-style name matching
  similarities used as the word-level matcher inside SoftTFIDF.

All functions are pure Python with no third-party dependencies so that they
can also be registered as UDFs on the SQL backends.
"""

from __future__ import annotations

__all__ = [
    "levenshtein",
    "levenshtein_within",
    "edit_similarity",
    "jaro",
    "jaro_winkler",
    "ngram_overlap",
]


def levenshtein(a: str, b: str) -> int:
    """Return the unit-cost Levenshtein edit distance between two strings.

    Insertions, deletions and substitutions each cost 1; copies cost 0.

    >>> levenshtein("kitten", "sitting")
    3
    >>> levenshtein("", "abc")
    3
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the shorter string in the inner loop for a smaller row.
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    current = [0] * (len(b) + 1)
    for i, ca in enumerate(a, start=1):
        current[0] = i
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current[j] = min(
                previous[j] + 1,       # deletion
                current[j - 1] + 1,    # insertion
                previous[j - 1] + cost,  # substitution / copy
            )
        previous, current = current, previous
    return previous[len(b)]


def levenshtein_within(a: str, b: str, max_distance: int) -> int | None:
    """Return ``levenshtein(a, b)`` if it is ``<= max_distance``, else ``None``.

    This is the banded variant used by the q-gram filtering step of the
    edit-distance predicate: candidate tuples only need their exact distance
    when it can fall under the selection threshold, so the dynamic program is
    restricted to a diagonal band of width ``2 * max_distance + 1``.
    """
    if max_distance < 0:
        return None
    if a == b:
        return 0
    if abs(len(a) - len(b)) > max_distance:
        return None
    if not a or not b:
        distance = max(len(a), len(b))
        return distance if distance <= max_distance else None
    if len(a) < len(b):
        a, b = b, a

    infinity = max_distance + 1
    previous = [j if j <= max_distance else infinity for j in range(len(b) + 1)]
    current = [infinity] * (len(b) + 1)
    for i, ca in enumerate(a, start=1):
        lo = max(1, i - max_distance)
        hi = min(len(b), i + max_distance)
        current[lo - 1] = i if (lo - 1) == 0 and i <= max_distance else infinity
        for j in range(lo, hi + 1):
            cb = b[j - 1]
            cost = 0 if ca == cb else 1
            best = previous[j - 1] + cost
            if previous[j] + 1 < best:
                best = previous[j] + 1
            if current[j - 1] + 1 < best:
                best = current[j - 1] + 1
            current[j] = best
        if hi + 1 <= len(b):
            current[hi + 1] = infinity
        previous, current = current, [infinity] * (len(b) + 1)
    distance = previous[len(b)]
    return distance if distance <= max_distance else None


def edit_similarity(a: str, b: str) -> float:
    """Normalized edit similarity, equation 3.13 of the paper.

    ``sim_edit(Q, D) = 1 - tc(Q, D) / max(|Q|, |D|)`` where ``tc`` is the
    unit-cost Levenshtein distance.  Two empty strings are defined to have
    similarity 1.0.

    >>> edit_similarity("stanley", "stanley")
    1.0
    >>> round(edit_similarity("stanley", "stanle"), 3)
    0.857
    """
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein(a, b) / longest


def jaro(a: str, b: str) -> float:
    """Jaro similarity between two strings.

    The Jaro similarity counts matching characters within a sliding window of
    half the longer string's length and penalizes transpositions.  Returns a
    value in ``[0, 1]``; identical strings score 1.0 and strings with no
    matching characters score 0.0.
    """
    if a == b:
        return 1.0
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return 0.0
    match_window = max(la, lb) // 2 - 1
    if match_window < 0:
        match_window = 0
    a_matched = [False] * la
    b_matched = [False] * lb

    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - match_window)
        hi = min(lb, i + match_window + 1)
        for j in range(lo, hi):
            if b_matched[j] or b[j] != ca:
                continue
            a_matched[i] = True
            b_matched[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i, ca in enumerate(a):
        if not a_matched[i]:
            continue
        while not b_matched[j]:
            j += 1
        if ca != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    m = float(matches)
    return (m / la + m / lb + (m - transpositions) / m) / 3.0


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1, max_prefix: int = 4) -> float:
    """Jaro-Winkler similarity: Jaro boosted by a common-prefix bonus.

    ``jw = jaro + prefix_len * prefix_scale * (1 - jaro)`` where
    ``prefix_len`` is the length of the common prefix capped at
    ``max_prefix``.  The standard scaling factor is 0.1.

    >>> jaro_winkler("martha", "marhta") > jaro("martha", "marhta")
    True
    """
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError("prefix_scale must be in [0, 0.25] to keep the score <= 1")
    base = jaro(a, b)
    prefix_len = 0
    for ca, cb in zip(a, b):
        if ca != cb or prefix_len >= max_prefix:
            break
        prefix_len += 1
    return base + prefix_len * prefix_scale * (1.0 - base)


def ngram_overlap(a: str, b: str, n: int = 2) -> float:
    """Dice-style character n-gram overlap, used only as a sanity baseline.

    Returns ``2 * |common n-grams| / (|ngrams(a)| + |ngrams(b)|)``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if a == b:
        return 1.0
    grams_a = [a[i : i + n] for i in range(max(0, len(a) - n + 1))]
    grams_b = [b[i : i + n] for i in range(max(0, len(b) - n + 1))]
    if not grams_a or not grams_b:
        return 0.0
    from collections import Counter

    common = sum((Counter(grams_a) & Counter(grams_b)).values())
    return 2.0 * common / (len(grams_a) + len(grams_b))
