"""A small synchronous client for the serving layer (stdlib ``http.client``).

Used by the load-generator benchmark and the end-to-end tests; also the
reference for how to talk to the server from any HTTP client::

    client = ServeClient("127.0.0.1", 8077)
    corpus_id = client.register_corpus(["AT&T Inc.", "IBM Corp."])
    matches = client.top_k(corpus_id, "AT&T Incorporated", k=5)

Error envelopes (rejections, timeouts, bad requests) raise
:class:`ServeError` carrying the HTTP status and machine-readable error
code, so load generators can count 429s separately from failures.

Resilience is **opt-in**: with ``retries=0`` (the default) the client
behaves exactly as before -- one stale-keep-alive reconnect, no other
retries -- because a generic client must not silently re-send requests.
With ``retries=N`` it retries connection failures and the two transient
server answers (429 rejected, 503 draining / breaker open) up to ``N``
times, sleeping the server's ``Retry-After`` hint when one is given and a
seeded exponential backoff (:class:`~repro.resilience.retry.RetryPolicy`)
otherwise.  4xx/5xx responses other than 429/503 never retry: they are
deterministic answers, not transient weather.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Callable, List, Optional, Sequence

from repro.core.predicates.base import Match
from repro.resilience import RetryPolicy
from repro.serve.protocol import matches_from_payload

__all__ = ["ServeClient", "ServeError"]

#: The HTTP statuses that signal "try again later" rather than "you lose".
_RETRYABLE_STATUSES = (429, 503)


class ServeError(Exception):
    """A non-200 response from the server.

    ``retry_after`` is the server's back-off hint in seconds (from the
    envelope or the ``Retry-After`` header), ``None`` when absent.
    """

    def __init__(
        self,
        status: int,
        error: str,
        message: str,
        retry_after: Optional[float] = None,
    ):
        super().__init__(f"[{status} {error}] {message}")
        self.status = status
        self.error = error
        self.message = message
        self.retry_after = retry_after


class ServeClient:
    """One keep-alive HTTP connection to a serve endpoint (not thread-safe;
    give each client thread its own instance).

    ``timeout`` bounds each socket read; ``connect_timeout`` (defaulting to
    ``timeout``) bounds connection establishment separately, so a client
    talking to a dead host fails in connect time instead of read time.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        connect_timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = connect_timeout if connect_timeout is not None else timeout
        self.retries = int(retries)
        self._sleep = sleep
        self._policy = RetryPolicy(
            max_attempts=self.retries + 1, backoff=backoff, max_backoff=2.0
        )
        self._connection = http.client.HTTPConnection(
            host, port, timeout=self.connect_timeout
        )

    def close(self) -> None:
        self._connection.close()

    # -- raw transport -----------------------------------------------------------

    def _connect(self) -> None:
        """Establish the socket under ``connect_timeout``, read under ``timeout``."""
        self._connection.connect()
        if self._connection.sock is not None:
            self._connection.sock.settimeout(self.timeout)

    def _round_trip(self, method: str, path: str, body, headers) -> dict:
        """One request/response exchange, decoding error envelopes."""
        if self._connection.sock is None:
            self._connect()
        try:
            self._connection.request(method, path, body=body, headers=headers)
            response = self._connection.getresponse()
            raw = response.read()
        except (ConnectionError, http.client.HTTPException):
            # Stale keep-alive (e.g. server restarted): retry once fresh.
            # This reconnect predates the opt-in retry loop and is always on.
            self._connection.close()
            self._connect()
            self._connection.request(method, path, body=body, headers=headers)
            response = self._connection.getresponse()
            raw = response.read()
        envelope = json.loads(raw.decode("utf-8"))
        if envelope.get("kind") == "error":
            retry_after = envelope.get("retry_after")
            if retry_after is None:
                header = response.getheader("Retry-After")
                retry_after = float(header) if header is not None else None
            raise ServeError(
                envelope.get("status", response.status),
                envelope.get("error", "unknown"),
                envelope.get("message", ""),
                retry_after=retry_after,
            )
        return envelope

    def request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        """One round trip; returns the decoded envelope, raising on errors.

        With ``retries > 0``, connection errors / timeouts and 429/503
        envelopes are retried with backoff, honoring ``Retry-After``.
        """
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        attempt = 0
        while True:
            try:
                return self._round_trip(method, path, body, headers)
            except ServeError as exc:
                if attempt >= self.retries or exc.status not in _RETRYABLE_STATUSES:
                    raise
                delay = (
                    exc.retry_after
                    if exc.retry_after is not None
                    else self._policy.delay(attempt + 1)
                )
            except (ConnectionError, TimeoutError, http.client.HTTPException):
                self._connection.close()
                if attempt >= self.retries:
                    raise
                delay = self._policy.delay(attempt + 1)
            attempt += 1
            self._sleep(delay)

    # -- endpoints ---------------------------------------------------------------

    def health(self) -> dict:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def register_corpus(self, strings: Sequence[str]) -> str:
        envelope = self.request("POST", "/corpora", {"strings": list(strings)})
        return envelope["corpus_id"]

    def query(self, corpus_id: str, text: str, **options) -> dict:
        """Raw query round trip; returns the full result envelope."""
        payload = {"corpus_id": corpus_id, "text": text}
        payload.update(options)
        return self.request("POST", "/query", payload)

    def top_k(self, corpus_id: str, text: str, k: int, **options) -> List[Match]:
        envelope = self.query(corpus_id, text, op="top_k", k=k, **options)
        return matches_from_payload(envelope["matches"])

    def rank(
        self, corpus_id: str, text: str, limit: Optional[int] = None, **options
    ) -> List[Match]:
        envelope = self.query(corpus_id, text, op="rank", limit=limit, **options)
        return matches_from_payload(envelope["matches"])

    def select(
        self, corpus_id: str, text: str, threshold: float, **options
    ) -> List[Match]:
        envelope = self.query(
            corpus_id, text, op="select", threshold=threshold, **options
        )
        return matches_from_payload(envelope["matches"])

    def shutdown(self) -> dict:
        return self.request("POST", "/shutdown")
