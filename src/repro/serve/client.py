"""A small synchronous client for the serving layer (stdlib ``http.client``).

Used by the load-generator benchmark and the end-to-end tests; also the
reference for how to talk to the server from any HTTP client::

    client = ServeClient("127.0.0.1", 8077)
    corpus_id = client.register_corpus(["AT&T Inc.", "IBM Corp."])
    matches = client.top_k(corpus_id, "AT&T Incorporated", k=5)

Error envelopes (rejections, timeouts, bad requests) raise
:class:`ServeError` carrying the HTTP status and machine-readable error
code, so load generators can count 429s separately from failures.
"""

from __future__ import annotations

import http.client
import json
from typing import List, Optional, Sequence

from repro.core.predicates.base import Match
from repro.serve.protocol import matches_from_payload

__all__ = ["ServeClient", "ServeError"]


class ServeError(Exception):
    """A non-200 response from the server."""

    def __init__(self, status: int, error: str, message: str):
        super().__init__(f"[{status} {error}] {message}")
        self.status = status
        self.error = error
        self.message = message


class ServeClient:
    """One keep-alive HTTP connection to a serve endpoint (not thread-safe;
    give each client thread its own instance)."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self._connection = http.client.HTTPConnection(host, port, timeout=timeout)

    def close(self) -> None:
        self._connection.close()

    # -- raw transport -----------------------------------------------------------

    def request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        """One round trip; returns the decoded envelope, raising on errors."""
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        try:
            self._connection.request(method, path, body=body, headers=headers)
            response = self._connection.getresponse()
            raw = response.read()
        except (ConnectionError, http.client.HTTPException):
            # Stale keep-alive (e.g. server restarted): retry once fresh.
            self._connection.close()
            self._connection.connect()
            self._connection.request(method, path, body=body, headers=headers)
            response = self._connection.getresponse()
            raw = response.read()
        envelope = json.loads(raw.decode("utf-8"))
        if envelope.get("kind") == "error":
            raise ServeError(
                envelope.get("status", response.status),
                envelope.get("error", "unknown"),
                envelope.get("message", ""),
            )
        return envelope

    # -- endpoints ---------------------------------------------------------------

    def health(self) -> dict:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def register_corpus(self, strings: Sequence[str]) -> str:
        envelope = self.request("POST", "/corpora", {"strings": list(strings)})
        return envelope["corpus_id"]

    def query(self, corpus_id: str, text: str, **options) -> dict:
        """Raw query round trip; returns the full result envelope."""
        payload = {"corpus_id": corpus_id, "text": text}
        payload.update(options)
        return self.request("POST", "/query", payload)

    def top_k(self, corpus_id: str, text: str, k: int, **options) -> List[Match]:
        envelope = self.query(corpus_id, text, op="top_k", k=k, **options)
        return matches_from_payload(envelope["matches"])

    def rank(
        self, corpus_id: str, text: str, limit: Optional[int] = None, **options
    ) -> List[Match]:
        envelope = self.query(corpus_id, text, op="rank", limit=limit, **options)
        return matches_from_payload(envelope["matches"])

    def select(
        self, corpus_id: str, text: str, threshold: float, **options
    ) -> List[Match]:
        envelope = self.query(
            corpus_id, text, op="select", threshold=threshold, **options
        )
        return matches_from_payload(envelope["matches"])

    def shutdown(self) -> dict:
        return self.request("POST", "/shutdown")
