"""Wire schema of the serving layer: request parsing and JSON envelopes.

Everything the server speaks is JSON under one version tag
(:data:`SERVE_SCHEMA`, styled after ``repro.obs/1``): query requests come in
as flat dicts, results leave as ``{"kind": "result", ...}`` envelopes whose
``matches`` entries mirror :class:`~repro.core.predicates.base.Match`
field-for-field, and every failure -- parse error, admission rejection,
deadline expiry -- is a ``{"kind": "error", ...}`` envelope carrying the
HTTP status the server responds with.

:class:`QueryRequest` is the validated form of one query.  Its
:meth:`~QueryRequest.batch_key` names the *plan* the request executes under
(corpus, predicate, realization, backend, sharding, operation and operation
parameters); the micro-batcher coalesces only requests whose batch keys are
equal, which is exactly the condition under which
:meth:`~repro.engine.query.Query.run_many` answers them in one execution
with results bit-identical to running each alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.predicates.base import Match

__all__ = [
    "SERVE_SCHEMA",
    "ProtocolError",
    "QueryRequest",
    "parse_query_request",
    "match_to_dict",
    "result_envelope",
    "error_envelope",
]

#: Version tag stamped on every request/response envelope.
SERVE_SCHEMA = "repro.serve/1"

#: Operations a request may name (the engine's single-query terminals).
_OPS = ("rank", "top_k", "select")


class ProtocolError(Exception):
    """A request the server refuses, with the HTTP status it answers with."""

    def __init__(self, message: str, status: int = 400, error: str = "bad_request"):
        super().__init__(message)
        self.status = int(status)
        self.error = error

    def envelope(self) -> dict:
        return error_envelope(self.status, self.error, str(self))


@dataclass(frozen=True)
class QueryRequest:
    """One validated similarity query bound for the engine.

    ``corpus_id`` names a relation previously registered with the service;
    the remaining fields select the plan (predicate / realization / backend /
    shards) and the operation.  ``timeout`` is the per-request deadline in
    seconds covering queue wait *and* execution.
    """

    corpus_id: str
    text: str
    op: str = "top_k"
    k: Optional[int] = None
    threshold: Optional[float] = None
    limit: Optional[int] = None
    predicate: str = "bm25"
    realization: Optional[str] = None
    backend: Optional[str] = None
    num_shards: int = 1
    executor: Optional[str] = None
    timeout: Optional[float] = None
    #: Server-side only (never on the wire): the absolute
    #: :class:`~repro.resilience.retry.Deadline` minted from ``timeout`` when
    #: the request was accepted.  Excluded from equality so identical wire
    #: requests still compare equal; ``batch_key`` enumerates fields
    #: explicitly, so coalescing is unaffected.
    deadline: Optional[object] = field(default=None, compare=False)

    def batch_key(self) -> Tuple:
        """Coalescing key: requests sharing it run as one ``run_many`` batch."""
        return (
            self.corpus_id,
            self.predicate,
            self.realization,
            self.backend,
            self.num_shards,
            self.executor,
            self.op,
            self.k,
            self.threshold,
            self.limit,
        )


def _require(payload: Dict, field: str) -> object:
    value = payload.get(field)
    if value is None:
        raise ProtocolError(f"missing required field {field!r}")
    return value


def parse_query_request(
    payload: object, default_timeout: Optional[float] = None
) -> QueryRequest:
    """Validate one ``POST /query`` body into a :class:`QueryRequest`."""
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    unknown = set(payload) - {
        "corpus_id",
        "text",
        "op",
        "k",
        "threshold",
        "limit",
        "predicate",
        "realization",
        "backend",
        "num_shards",
        "executor",
        "timeout",
    }
    if unknown:
        raise ProtocolError(f"unknown field(s): {sorted(unknown)}")
    corpus_id = _require(payload, "corpus_id")
    text = _require(payload, "text")
    if not isinstance(corpus_id, str):
        raise ProtocolError("corpus_id must be a string")
    if not isinstance(text, str):
        raise ProtocolError("text must be a string")
    op = payload.get("op", "top_k")
    if op not in _OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {list(_OPS)}")
    k = payload.get("k")
    threshold = payload.get("threshold")
    if op == "top_k" and (
        k is None or not isinstance(k, int) or isinstance(k, bool) or k < 0
    ):
        raise ProtocolError("op='top_k' requires a non-negative integer k")
    if op == "select":
        if threshold is None or isinstance(threshold, bool) or not isinstance(
            threshold, (int, float)
        ):
            raise ProtocolError("op='select' requires a numeric threshold")
        threshold = float(threshold)
    limit = payload.get("limit")
    if limit is not None and (not isinstance(limit, int) or isinstance(limit, bool)):
        raise ProtocolError("limit must be an integer")
    num_shards = payload.get("num_shards", 1)
    if not isinstance(num_shards, int) or isinstance(num_shards, bool) or num_shards < 1:
        raise ProtocolError("num_shards must be an integer >= 1")
    timeout = payload.get("timeout", default_timeout)
    if timeout is not None:
        if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
            raise ProtocolError("timeout must be a number of seconds")
        timeout = float(timeout)
        if timeout <= 0:
            raise ProtocolError("timeout must be positive")
    return QueryRequest(
        corpus_id=corpus_id,
        text=text,
        op=op,
        k=k,
        threshold=threshold,
        limit=limit,
        predicate=payload.get("predicate", "bm25"),
        realization=payload.get("realization"),
        backend=payload.get("backend"),
        num_shards=num_shards,
        executor=payload.get("executor"),
        timeout=timeout,
    )


def match_to_dict(match: Match) -> dict:
    """One result row of the wire format (mirrors ``Match`` exactly)."""
    return {"tid": match.tid, "score": match.score, "string": match.string}


def result_envelope(
    request: QueryRequest,
    matches: Sequence[Match],
    batch_size: int,
    seconds: float,
) -> dict:
    """A successful query response."""
    return {
        "schema": SERVE_SCHEMA,
        "kind": "result",
        "status": 200,
        "corpus_id": request.corpus_id,
        "op": request.op,
        "matches": [match_to_dict(match) for match in matches],
        "batch_size": int(batch_size),
        "seconds": float(seconds),
    }


def error_envelope(
    status: int, error: str, message: str, retry_after: Optional[float] = None
) -> dict:
    """A failure response (parse error, rejection, timeout, shutdown...).

    ``retry_after`` (seconds) rides along when the failure is known to be
    temporary -- a draining server or an open circuit breaker -- and the
    server surfaces it as the HTTP ``Retry-After`` header as well.
    """
    envelope = {
        "schema": SERVE_SCHEMA,
        "kind": "error",
        "status": int(status),
        "error": error,
        "message": message,
    }
    if retry_after is not None:
        envelope["retry_after"] = max(0.0, float(retry_after))
    return envelope


def matches_from_payload(rows: Sequence[dict]) -> List[Match]:
    """Rebuild ``Match`` objects from a result envelope (client side)."""
    return [
        Match(tid=row["tid"], score=row["score"], string=row.get("string"))
        for row in rows
    ]
