"""Request admission: a bounded waiting room in front of the engine.

The serving layer multiplexes many clients over CPU-bound engine work, so
unbounded acceptance just converts overload into unbounded latency.  The
:class:`AdmissionController` enforces the classic two-knob policy instead:

* at most ``max_concurrency`` requests execute at once (an
  :class:`asyncio.Semaphore`);
* at most ``max_queue`` requests wait for a slot -- the next one is rejected
  *immediately* with :class:`RejectedError` (HTTP 429), which is the
  backpressure signal that keeps queues short and tail latencies bounded;
* a waiter whose per-request deadline expires before a slot frees is failed
  with :class:`AdmissionTimeout` (HTTP 504).

Every transition is published: gauges ``serve.queue_depth`` and
``serve.active_requests`` track the instantaneous occupancy (with high-water
marks), counters ``serve.rejections_total`` / ``serve.timeouts_total`` count
the failures, and the ``latency.serve.admission_wait`` histogram records how
long admitted requests queued.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager
from typing import AsyncIterator, Optional

from repro.obs.clock import perf_clock
from repro.obs.trace import Observability

__all__ = ["AdmissionController", "RejectedError", "AdmissionTimeout"]


class RejectedError(Exception):
    """Queue full: the request was turned away without waiting (HTTP 429)."""

    status = 429
    error = "rejected"


class AdmissionTimeout(Exception):
    """The per-request deadline expired while queued (HTTP 504)."""

    status = 504
    error = "timeout"


class AdmissionController:
    """Bounded concurrency + bounded queue with immediate-reject overflow."""

    def __init__(
        self,
        max_concurrency: int = 4,
        max_queue: int = 16,
        obs: Optional[Observability] = None,
    ):
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_concurrency = int(max_concurrency)
        self.max_queue = int(max_queue)
        self.obs = obs if obs is not None else Observability()
        self._semaphore = asyncio.Semaphore(self.max_concurrency)
        self._waiting = 0
        self._active = 0
        # Set whenever no request is queued or executing; drain sleeps on
        # this instead of polling the counters.
        self._idle = asyncio.Event()
        self._idle.set()

    @property
    def waiting(self) -> int:
        """Requests currently queued for a slot."""
        return self._waiting

    @property
    def active(self) -> int:
        """Requests currently holding an execution slot."""
        return self._active

    async def wait_idle(self) -> None:
        """Block until no request is queued or holding a slot."""
        await self._idle.wait()

    def _update_idle(self) -> None:
        if self._active == 0 and self._waiting == 0:
            self._idle.set()
        else:
            self._idle.clear()

    @asynccontextmanager
    async def admit(self, timeout: Optional[float] = None) -> AsyncIterator[None]:
        """Hold an execution slot for the duration of the ``with`` body.

        Raises :class:`RejectedError` without waiting when the queue is
        full, :class:`AdmissionTimeout` when ``timeout`` seconds pass before
        a slot frees.
        """
        metrics = self.obs.metrics
        if self._waiting >= self.max_queue and self._semaphore.locked():
            metrics.inc("serve.rejections_total")
            raise RejectedError(
                f"queue full ({self._waiting} waiting, "
                f"{self.max_queue} allowed); retry later"
            )
        self._waiting += 1
        self._update_idle()
        metrics.gauge("serve.queue_depth").set(self._waiting)
        started = perf_clock()
        try:
            if timeout is None:
                await self._semaphore.acquire()
            else:
                try:
                    await asyncio.wait_for(self._semaphore.acquire(), timeout)
                except asyncio.TimeoutError:
                    metrics.inc("serve.timeouts_total")
                    raise AdmissionTimeout(
                        f"no execution slot within {timeout:.3f}s"
                    ) from None
        finally:
            self._waiting -= 1
            self._update_idle()
            metrics.gauge("serve.queue_depth").set(self._waiting)
        metrics.observe("latency.serve.admission_wait", perf_clock() - started)
        self._active += 1
        self._update_idle()
        metrics.gauge("serve.active_requests").set(self._active)
        try:
            yield
        finally:
            self._active -= 1
            self._update_idle()
            metrics.gauge("serve.active_requests").set(self._active)
            self._semaphore.release()
