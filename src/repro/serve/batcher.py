"""Micro-batching: coalesce compatible requests into one engine execution.

Concurrent clients asking the same plan (same corpus, predicate, backend,
operation and parameters -- see
:meth:`~repro.serve.protocol.QueryRequest.batch_key`) do not need one engine
execution each: :meth:`Query.run_many` answers the whole set against one
shared fitted state, and on the declarative realization scores the entire
workload in one SQL statement.  The :class:`MicroBatcher` exploits that
window: the first request of a key opens a bucket and starts a timer; every
compatible request arriving within ``window`` seconds joins the bucket; the
bucket flushes when the timer fires or when it reaches ``max_batch``
entries, whichever comes first.  Each submitter awaits a future resolved
with its own slice of the batch result.

Coalescing changes *when* work runs, never *what* it computes: ``run_many``
executes the same per-query code paths as the single-query terminals, so a
batched answer is bit-identical to the answer the request would have gotten
alone (the serving test-suite and the benchmark smoke mode assert this).

Futures may be abandoned (the submitter's deadline expired and
``asyncio.wait_for`` cancelled the await); the flush checks ``fut.done()``
before resolving, so a late batch never trips over a cancelled waiter.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Awaitable, Callable, Hashable, List, Optional, Sequence, Tuple

from repro.obs.trace import Observability

__all__ = ["MicroBatcher"]

#: Histogram buckets for the ``serve.batch_size`` distribution.
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64)


class _Bucket:
    """Requests of one batch key waiting for their window to close."""

    __slots__ = ("items", "timer")

    def __init__(self) -> None:
        self.items: List[Tuple[object, asyncio.Future]] = []
        self.timer: Optional[asyncio.Task] = None


class MicroBatcher:
    """Coalesces ``submit()`` calls per key into windowed batch executions.

    Parameters
    ----------
    runner:
        ``async (key, requests) -> results`` executing one batch; must
        return exactly one result per request, in request order.
    window:
        Seconds the first request of a bucket waits for company.
    max_batch:
        Bucket size that triggers an immediate (early) flush.
    """

    def __init__(
        self,
        runner: Callable[[Hashable, Sequence[object]], Awaitable[Sequence[object]]],
        window: float = 0.005,
        max_batch: int = 16,
        obs: Optional[Observability] = None,
    ):
        if window < 0:
            raise ValueError("window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._runner = runner
        self.window = float(window)
        self.max_batch = int(max_batch)
        self.obs = obs if obs is not None else Observability()
        self._buckets: dict = {}
        self._flushes: set = set()

    @property
    def pending(self) -> int:
        """Requests currently waiting in open buckets."""
        return sum(len(bucket.items) for bucket in self._buckets.values())

    async def submit(self, key: Hashable, request: object) -> object:
        """Enqueue one request and await its individual result."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = _Bucket()
            self._buckets[key] = bucket
            bucket.timer = loop.create_task(self._window_flush(key, bucket))
        bucket.items.append((request, future))
        if len(bucket.items) >= self.max_batch:
            self._close_bucket(key, bucket)
        try:
            return await future
        except asyncio.CancelledError:
            # The submitter's deadline expired: ``asyncio.wait_for`` cancelled
            # this coroutine while the batch may still be running.  Cancelling
            # a task normally cancels the awaited future too, but make it
            # explicit so a late flush's ``done()`` check reliably skips the
            # abandoned waiter instead of tripping on InvalidStateError.
            future.cancel()
            raise

    async def flush_all(self) -> None:
        """Flush every open bucket now and wait for in-flight flushes (drain).

        Uses ``asyncio.wait`` rather than ``gather``: a *bounded* drain
        cancels this wait when its budget expires, and that cancellation
        must not propagate into the flush tasks themselves -- an abandoned
        drain still lets in-flight batches finish and resolve their waiters.
        """
        for key, bucket in list(self._buckets.items()):
            if self._buckets.get(key) is bucket:
                self._close_bucket(key, bucket)
        while self._flushes:
            await asyncio.wait(list(self._flushes))

    # -- internals ---------------------------------------------------------------

    def _close_bucket(self, key: Hashable, bucket: _Bucket) -> None:
        """Detach a bucket from the open set and start its flush task."""
        if self._buckets.get(key) is bucket:
            del self._buckets[key]
        if bucket.timer is not None and not bucket.timer.done():
            bucket.timer.cancel()
        task = asyncio.get_running_loop().create_task(self._flush(key, bucket))
        self._flushes.add(task)
        task.add_done_callback(self._flushes.discard)

    async def _window_flush(self, key: Hashable, bucket: _Bucket) -> None:
        try:
            await asyncio.sleep(self.window)
        except asyncio.CancelledError:
            return
        if self._buckets.get(key) is bucket:
            del self._buckets[key]
            bucket.timer = None
            await self._flush(key, bucket)

    async def _flush(self, key: Hashable, bucket: _Bucket) -> None:
        items = bucket.items
        if not items:
            return
        metrics = self.obs.metrics
        metrics.inc("serve.batches_total")
        metrics.inc("serve.batched_queries_total", len(items))
        metrics.histogram("serve.batch_size", BATCH_SIZE_BUCKETS).observe(len(items))
        requests = [request for request, _ in items]
        try:
            results = await self._runner(key, requests)
            if len(results) != len(requests):
                raise RuntimeError(
                    f"batch runner returned {len(results)} results "
                    f"for {len(requests)} requests"
                )
        except Exception as exc:  # resolve every waiter, never swallow
            for _, future in items:
                self._resolve(future, error=exc)
            return
        for (_, future), result in zip(items, results):
            self._resolve(future, result=result)

    @staticmethod
    def _resolve(
        future: asyncio.Future, result: object = None, error: Optional[BaseException] = None
    ) -> None:
        """Resolve one waiter, tolerating cancellation at any point.

        ``done()`` filters waiters whose deadlines expired mid-batch; the
        InvalidStateError guard covers the remaining sliver where a future is
        cancelled between that check and the set (belt and braces -- both run
        on the event loop, but the contract must not depend on it).
        """
        if future.done():
            return
        with contextlib.suppress(asyncio.InvalidStateError):
            # InvalidStateError: cancelled since the done() check above.
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(result)
