"""Similarity-as-a-service: the async serving layer over the engine.

The paper's engine answers one caller at a time; this package turns it into
a long-lived service multiplexing many concurrent clients:

* :mod:`repro.serve.admission` -- bounded queue + concurrency with
  immediate-reject backpressure (429) and deadline timeouts (504);
* :mod:`repro.serve.batcher` -- micro-batching of plan-compatible requests
  into single ``run_many`` executions (bit-identical results);
* :mod:`repro.serve.service` -- per-corpus engine lifecycle (content-hash
  interning, LRU eviction releasing warm state) and the request pipeline;
* :mod:`repro.serve.server` -- a stdlib-only asyncio HTTP/1.1 front with
  graceful drain on SIGTERM / ``POST /shutdown``;
* :mod:`repro.serve.client` -- the synchronous reference client, with
  opt-in bounded retries honoring ``Retry-After``;
* :mod:`repro.serve.protocol` -- the ``repro.serve/1`` JSON wire schema.

Degraded-mode behavior (per-corpus circuit breakers, request deadlines
propagated into the engine, fault injection via ``REPRO_FAULTS``) comes
from :mod:`repro.resilience` and is wired through
:class:`~repro.serve.service.SimilarityService`.

Start a server from the CLI (``repro serve --port 8077``) or embed the
service directly::

    from repro.serve import SimilarityService

    service = SimilarityService(max_concurrency=4, batch_window=0.002)
    corpus_id, _, _ = service.register_corpus(rows)
    envelope = await service.handle(
        {"corpus_id": corpus_id, "text": "AT&T", "op": "top_k", "k": 5}
    )
"""

from repro.serve.admission import AdmissionController, AdmissionTimeout, RejectedError
from repro.serve.batcher import MicroBatcher
from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import (
    SERVE_SCHEMA,
    ProtocolError,
    QueryRequest,
    parse_query_request,
)
from repro.serve.server import ServeServer, run_server
from repro.serve.service import SimilarityService, corpus_id_for

__all__ = [
    "AdmissionController",
    "AdmissionTimeout",
    "MicroBatcher",
    "ProtocolError",
    "QueryRequest",
    "RejectedError",
    "SERVE_SCHEMA",
    "ServeClient",
    "ServeError",
    "ServeServer",
    "SimilarityService",
    "corpus_id_for",
    "parse_query_request",
    "run_server",
]
