"""A long-lived HTTP/1.1 front for the similarity service (stdlib only).

The server is deliberately small: asyncio streams, a hand-rolled HTTP/1.1
request parser (request line, headers, ``Content-Length`` bodies,
keep-alive) and JSON in both directions -- no web framework, matching the
repository's no-new-dependencies rule.  Routes:

========  ============  ====================================================
method    path          behavior
========  ============  ====================================================
GET       /healthz      liveness + queue/corpus occupancy
GET       /metrics      ``repro.obs/1`` metrics snapshot of the registry
POST      /corpora      register a relation ``{"strings": [...]}``
POST      /query        one similarity query (see ``repro.serve.protocol``)
POST      /shutdown     begin a graceful drain, then stop
========  ============  ====================================================

Graceful shutdown (``POST /shutdown`` or SIGTERM/SIGINT when installed via
:func:`run_server`) follows the standard drain sequence: stop accepting new
connections, answer new requests on kept-alive connections with 503,
finish every admitted request, flush the micro-batcher, then release all
engine warm state (``SimilarityService.close`` -> ``clear_cache`` closes
engine-owned SQL backends and shard pools).  In-flight requests are never
dropped -- the drain test sends SIGTERM mid-request and asserts every
response still arrives.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import signal
from typing import Callable, Dict, Optional, Tuple

from repro.obs.export import metrics_to_json
from repro.serve.protocol import SERVE_SCHEMA, ProtocolError, error_envelope
from repro.serve.service import SimilarityService

__all__ = ["ServeServer", "run_server"]

#: Largest request body the server reads (guards the JSON parser).
MAX_BODY_BYTES = 32 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ServeServer:
    """Binds a :class:`SimilarityService` to a TCP port."""

    def __init__(
        self,
        service: SimilarityService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopping = asyncio.Event()
        self._connections: set = set()

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def serve_until_stopped(self) -> None:
        """Run until a drain is requested, then shut down cleanly."""
        if self._server is None:
            await self.start()
        await self._stopping.wait()
        await self.drain()

    def request_stop(self) -> None:
        """Signal-safe trigger for a graceful drain (SIGTERM handler)."""
        self._stopping.set()

    async def drain(self) -> None:
        """Stop accepting, finish in-flight work, release engine state."""
        self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.drain()
        await self._idle.wait()
        # Idle kept-alive connections sit blocked in readline(); cancel them
        # so the loop shuts down without unhandled-cancellation noise.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*list(self._connections), return_exceptions=True)
        self.service.close()

    # -- connection handling -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, path, headers, body = parsed
                self._inflight += 1
                self._idle.clear()
                try:
                    status, payload = await self._dispatch(method, path, body)
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
                keep_alive = headers.get("connection", "keep-alive") != "close"
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Drain cancels idle kept-alive connections; finishing normally
            # (instead of in the cancelled state) keeps asyncio's stream
            # done-callback from logging the cancellation as an error.
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError, asyncio.CancelledError):
                await writer.wait_closed()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket."""
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip().lower()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ConnectionError("request body too large")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _dispatch(self, method: str, path: str, body: bytes) -> Tuple[int, dict]:
        """Route one request; never raises (errors become envelopes)."""
        try:
            if path == "/healthz" and method == "GET":
                return 200, self._health_payload()
            if path == "/metrics" and method == "GET":
                return 200, metrics_to_json(self.service.obs.metrics)
            if path == "/corpora" and method == "POST":
                return self._register_corpus(self._parse_json(body))
            if path == "/query" and method == "POST":
                envelope = await self.service.handle(self._parse_json(body))
                return envelope["status"], envelope
            if path == "/shutdown" and method == "POST":
                self.request_stop()
                return 200, {"schema": SERVE_SCHEMA, "kind": "shutdown", "status": 200}
            if path in ("/healthz", "/metrics", "/corpora", "/query", "/shutdown"):
                raise ProtocolError(
                    f"{method} not allowed on {path}",
                    status=405,
                    error="method_not_allowed",
                )
            raise ProtocolError(f"no route {path!r}", status=404, error="not_found")
        except ProtocolError as exc:
            return exc.status, exc.envelope()
        except Exception as exc:  # a bug in a handler must not kill the server
            envelope = error_envelope(500, "internal", f"{type(exc).__name__}: {exc}")
            return 500, envelope

    def _health_payload(self) -> dict:
        service = self.service
        return {
            "schema": SERVE_SCHEMA,
            "kind": "health",
            "status": 200,
            "draining": service.draining,
            "active_requests": service.admission.active,
            "queued_requests": service.admission.waiting,
            "pending_batches": service.batcher.pending,
            "corpora": service.corpus_ids,
        }

    def _register_corpus(self, payload: object) -> Tuple[int, dict]:
        if self.service.draining:
            raise ProtocolError("server is draining", status=503, error="draining")
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        corpus_id, num_tuples, created = self.service.register_corpus(
            payload.get("strings")
        )
        return 200, {
            "schema": SERVE_SCHEMA,
            "kind": "corpus",
            "status": 200,
            "corpus_id": corpus_id,
            "num_tuples": num_tuples,
            "created": created,
        }

    @staticmethod
    def _parse_json(body: bytes) -> object:
        if not body:
            raise ProtocolError("empty request body")
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"invalid JSON body: {exc}") from None

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter, status: int, payload: dict, keep_alive: bool
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        # Temporary failures (open breaker, draining) carry a retry hint in
        # the envelope; surface it as the standard header too so plain HTTP
        # clients can back off without parsing the body.
        retry_after = payload.get("retry_after") if isinstance(payload, dict) else None
        retry_header = (
            f"Retry-After: {max(1, math.ceil(float(retry_after)))}\r\n"
            if retry_after is not None
            else ""
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{retry_header}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


def run_server(
    service: SimilarityService,
    host: str = "127.0.0.1",
    port: int = 0,
    install_signal_handlers: bool = True,
    on_listening: Optional[Callable[[str, int], None]] = None,
) -> None:
    """Blocking entry point: serve until SIGTERM/SIGINT or ``POST /shutdown``."""

    async def _main() -> None:
        server = ServeServer(service, host=host, port=port)
        bound_host, bound_port = await server.start()
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, RuntimeError):
                    loop.add_signal_handler(signum, server.request_stop)  # no-op on non-POSIX loops
        if on_listening is not None:
            on_listening(bound_host, bound_port)
        await server.serve_until_stopped()

    asyncio.run(_main())
