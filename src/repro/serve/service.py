"""The similarity service: corpora, engines and the request pipeline.

:class:`SimilarityService` is the asyncio front of the library -- everything
the HTTP server does is one call to :meth:`~SimilarityService.handle`.  One
request flows::

    handle(payload)
      parse            (protocol.parse_query_request -> 400 on bad input)
      serve.request    (span; also the latency.serve.request histogram)
      ├─ admission     (bounded queue + concurrency; 429 / 504 failures)
      └─ batch         (micro-batcher coalesces compatible requests...)
         └─ engine.query / run_many   (...into one engine execution)

Each registered corpus owns one :class:`~repro.engine.query.SimilarityEngine`
whose fitted-state caches make repeated queries cheap; the engines share the
service's :class:`~repro.obs.trace.Observability` holder by reference, so the
engine's own span tree (``engine.query -> fit/cache_hit -> execute.*``)
nests under the service's ``serve.batch`` span and one metrics registry sees
every layer.  Corpora are interned by content hash and evicted LRU beyond
``max_corpora`` -- eviction calls the engine's ``clear_cache()``, which
closes engine-owned SQL backends and shard worker pools (the warm-state
lifecycle the engine already defines).

Batches execute on worker threads (``asyncio.to_thread``) so the event loop
keeps accepting requests while the engine computes; a per-corpus lock
serializes executions on one engine, which keeps per-call stats objects
coherent and -- together with the engine's internal lock -- makes served
results bit-identical to direct engine calls under any interleaving.
"""

from __future__ import annotations

import asyncio
import hashlib
import logging
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.predicates.base import Match
from repro.engine.query import Query, SimilarityEngine
from repro.obs.clock import perf_clock
from repro.obs.trace import Observability, Span
from repro.resilience import (
    BreakerOpen,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FaultInjector,
    deadline_scope,
    faults_from_env,
)
from repro.serve.admission import AdmissionController, AdmissionTimeout, RejectedError
from repro.serve.batcher import MicroBatcher
from repro.serve.protocol import (
    ProtocolError,
    QueryRequest,
    error_envelope,
    parse_query_request,
    result_envelope,
)

__all__ = ["SimilarityService", "corpus_id_for"]

logger = logging.getLogger("repro.serve")


def corpus_id_for(strings: Sequence[str]) -> str:
    """Deterministic content id of a relation (same strings -> same id)."""
    digest = hashlib.sha1()
    for text in strings:
        digest.update(text.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:12]


@dataclass
class _CorpusEntry:
    """One registered relation: its strings, engine and execution lock."""

    corpus_id: str
    strings: List[str]
    engine: SimilarityEngine
    #: Isolates a persistently failing corpus: once tripped, its requests
    #: fail fast with 503 instead of burning worker threads, while healthy
    #: corpora on the same service keep executing.
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)
    #: Serializes batch executions on this corpus's engine so per-call stats
    #: and staged declarative tables never interleave across worker threads.
    lock: threading.Lock = field(default_factory=threading.Lock)


class SimilarityService:
    """Asyncio request pipeline over per-corpus similarity engines."""

    def __init__(
        self,
        max_concurrency: int = 4,
        max_queue: int = 16,
        default_timeout: Optional[float] = 30.0,
        batch_window: float = 0.005,
        batch_max: int = 16,
        max_corpora: int = 8,
        obs: Optional[Observability] = None,
        faults: Optional[FaultInjector] = None,
        breaker_threshold: int = 5,
        breaker_reset: float = 5.0,
        drain_timeout: Optional[float] = None,
    ):
        if max_corpora < 1:
            raise ValueError("max_corpora must be >= 1")
        self.obs = obs if obs is not None else Observability()
        self.default_timeout = default_timeout
        self.max_corpora = int(max_corpora)
        #: One injector shared with every corpus engine, so a ``REPRO_FAULTS``
        #: plan (or an explicitly passed injector) covers the whole pipeline
        #: -- ``serve.batch`` here, ``shard.task`` / ``sql.statement`` below
        #: -- with one consistent set of call counters.
        self.faults = faults if faults is not None else faults_from_env()
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_reset = float(breaker_reset)
        #: Upper bound on how long :meth:`drain` waits for in-flight work;
        #: ``None`` waits forever (the pre-existing behavior).  On expiry the
        #: remaining work is abandoned, logged and counted.
        self.drain_timeout = drain_timeout
        self.admission = AdmissionController(
            max_concurrency=max_concurrency, max_queue=max_queue, obs=self.obs
        )
        self.batcher = MicroBatcher(
            self._run_batch, window=batch_window, max_batch=batch_max, obs=self.obs
        )
        self._corpora: "OrderedDict[str, _CorpusEntry]" = OrderedDict()  # guarded-by: _corpora_lock
        self._corpora_lock = threading.Lock()
        self._draining = False

    # -- corpus lifecycle --------------------------------------------------------

    def register_corpus(self, strings: Sequence[str]) -> Tuple[str, int, bool]:
        """Intern a relation; returns ``(corpus_id, num_tuples, created)``.

        Registering the same strings twice is idempotent (same id, warm
        engine kept).  Beyond ``max_corpora`` the least recently used corpus
        is evicted and its engine's warm state released via ``clear_cache``.
        """
        if not isinstance(strings, (list, tuple)) or not all(
            isinstance(text, str) for text in strings
        ):
            raise ProtocolError("strings must be a JSON array of strings")
        if not strings:
            raise ProtocolError("strings must not be empty")
        corpus_id = corpus_id_for(strings)
        with self._corpora_lock:
            entry = self._corpora.get(corpus_id)
            if entry is not None:
                self._corpora.move_to_end(corpus_id)
                return corpus_id, len(entry.strings), False
            engine = SimilarityEngine(faults=self.faults)
            # Share the service's observability holder by reference so
            # tracer swaps and metrics reach every engine layer.
            engine.obs = self.obs
            self._corpora[corpus_id] = _CorpusEntry(
                corpus_id=corpus_id,
                strings=list(strings),
                engine=engine,
                breaker=CircuitBreaker(
                    failure_threshold=self.breaker_threshold,
                    reset_timeout=self.breaker_reset,
                ),
            )
            evicted = []
            while len(self._corpora) > self.max_corpora:
                _, stale = self._corpora.popitem(last=False)
                evicted.append(stale)
        for stale in evicted:
            with stale.lock:  # wait out any in-flight batch on this corpus
                stale.engine.clear_cache()
            self.obs.metrics.inc("serve.corpora_evicted_total")
        return corpus_id, len(strings), True

    def corpus(self, corpus_id: str) -> _CorpusEntry:
        """Look up a registered corpus (LRU touch); 404 when unknown."""
        with self._corpora_lock:
            entry = self._corpora.get(corpus_id)
            if entry is None:
                raise ProtocolError(
                    f"unknown corpus_id {corpus_id!r}; register it via POST /corpora",
                    status=404,
                    error="unknown_corpus",
                )
            self._corpora.move_to_end(corpus_id)
            return entry

    @property
    def corpus_ids(self) -> List[str]:
        with self._corpora_lock:
            return list(self._corpora)

    def close(self) -> None:
        """Release every engine's warm state (backends, pools, corpora)."""
        with self._corpora_lock:
            entries = list(self._corpora.values())
            self._corpora.clear()
        for entry in entries:
            with entry.lock:
                entry.engine.clear_cache()

    # -- request pipeline --------------------------------------------------------

    async def handle(self, payload: object) -> dict:
        """Serve one query request; always returns a response envelope.

        Failure ladder, outermost first: 400 (parse), 503 (draining or an
        open circuit breaker, both carrying ``retry_after``), 404 (unknown
        corpus), 429/504 (admission), 504 (deadline -- whether caught by
        ``wait_for`` on the event loop or by an in-engine ``check_deadline``),
        and finally 500: an unexpected engine exception becomes a JSON error
        envelope instead of tearing down the connection.
        """
        metrics = self.obs.metrics
        metrics.inc("serve.requests_total")
        started = perf_clock()
        try:
            request = parse_query_request(payload, self.default_timeout)
            if self._draining:
                raise ProtocolError(
                    "server is draining; retry against another instance",
                    status=503,
                    error="draining",
                )
            entry = self.corpus(request.corpus_id)  # 404 before queuing
            try:
                entry.breaker.allow()  # fast 503 before any engine work
            finally:
                self._publish_breaker(entry)
            # The deadline is minted here -- covering queue wait *and*
            # execution -- and rides the request into the batch, where
            # `deadline_scope` makes it ambient for the engine layers.
            request = replace(request, deadline=Deadline(request.timeout))
            matches, batch_size = await asyncio.wait_for(
                self._admit_and_run(request),
                timeout=request.timeout,
            )
        except ProtocolError as exc:
            envelope = exc.envelope()
        except BreakerOpen as exc:
            metrics.inc("serve.breaker_rejections_total")
            envelope = error_envelope(
                503, "breaker_open", str(exc), retry_after=exc.retry_after
            )
        except (RejectedError, AdmissionTimeout) as exc:
            envelope = error_envelope(exc.status, exc.error, str(exc))
        except (asyncio.TimeoutError, DeadlineExceeded):
            metrics.inc("serve.timeouts_total")
            budget = (
                f"request deadline of {request.timeout:.3f}s expired"
                if request.timeout is not None
                else "request deadline expired"
            )
            envelope = error_envelope(504, "timeout", budget)
        except Exception as exc:  # degraded mode: a bug answers 500, not a crash
            logger.exception("unexpected error serving request")
            envelope = error_envelope(
                500, "internal", f"{type(exc).__name__}: {exc}"
            )
        else:
            envelope = result_envelope(
                request, matches, batch_size, perf_clock() - started
            )
        elapsed = perf_clock() - started
        metrics.observe("latency.serve.request", elapsed)
        if envelope["status"] != 200:
            metrics.inc("serve.errors_total")
        return envelope

    def _publish_breaker(self, entry: _CorpusEntry) -> None:
        """Export the breaker state gauge (0 closed / 1 open / 2 half-open)."""
        self.obs.metrics.gauge(
            f"serve.breaker_state.{entry.corpus_id}"
        ).set(entry.breaker.state_value)

    async def _admit_and_run(
        self, request: QueryRequest
    ) -> Tuple[List[Match], int]:
        """Admission then batched execution, inside the ``serve.request`` span.

        The span is built by hand rather than as a context manager: the
        batch executes on a worker thread (its spans open on that thread's
        stack), so the request span adopts the finished batch span as a
        child record instead of nesting it live.
        """
        tracer = self.obs.tracer
        span = (
            Span(
                "serve.request",
                start=perf_clock(),
                attributes={
                    "corpus_id": request.corpus_id,
                    "op": request.op,
                    "predicate": request.predicate,
                },
            )
            if tracer.enabled
            else None
        )
        try:
            admit_started = perf_clock()
            async with self.admission.admit(timeout=request.timeout):
                if span is not None:
                    span.attach(
                        Span(
                            "serve.admission",
                            start=admit_started,
                            end=perf_clock(),
                        )
                    )
                matches, batch_span, batch_size = await self.batcher.submit(
                    request.batch_key(), request
                )
            if span is not None:
                span.set(batch_size=batch_size)
                if batch_span is not None:
                    span.attach(Span.from_dict(batch_span))
            return matches, batch_size
        finally:
            if span is not None:
                span.end = perf_clock()
                tracer.last_root = span

    # -- batch execution ---------------------------------------------------------

    async def _run_batch(
        self, key: Tuple, requests: Sequence[QueryRequest]
    ) -> List[Tuple[List[Match], Optional[dict], int]]:
        """Execute one coalesced batch off the event loop."""
        batches, batch_span = await asyncio.to_thread(
            self._execute_batch, requests
        )
        size = len(requests)
        return [(matches, batch_span, size) for matches in batches]

    def _execute_batch(
        self, requests: Sequence[QueryRequest]
    ) -> Tuple[List[List[Match]], Optional[dict]]:
        """Worker-thread body: one ``run_many`` for the whole bucket.

        All requests share one batch key, so the first request describes the
        plan for all of them.  ``run_many`` routes each query through the
        same code paths as the single-query terminals, which is what makes
        the split results bit-identical to individual calls.

        The batch executes under the *latest* of its waiters' deadlines
        (:meth:`Deadline.combine`): a batch may only be abandoned once every
        waiter is out of time, since stopping at the earliest deadline would
        discard work other waiters still need.  The corpus breaker records
        one verdict per batch -- engine failures count against it, deadline
        expiry does not (a slow request says nothing about corpus health).
        """
        first = requests[0]
        entry = self.corpus(first.corpus_id)
        tracer = self.obs.tracer
        batch_deadline = Deadline.combine(
            tuple(request.deadline for request in requests)
        )
        try:
            with entry.lock, deadline_scope(batch_deadline):
                if self.faults.active:
                    self.faults.check("serve.batch")
                with tracer.span(
                    "serve.batch",
                    corpus_id=first.corpus_id,
                    op=first.op,
                    predicate=first.predicate,
                    batch_size=len(requests),
                ) as span:
                    query = self._build_query(entry, first)
                    batches = query.run_many(
                        [request.text for request in requests],
                        op=first.op,
                        k=first.k,
                        threshold=first.threshold,
                        limit=first.limit,
                    )
        except DeadlineExceeded:
            raise
        except Exception:
            entry.breaker.record_failure()
            self._publish_breaker(entry)
            raise
        entry.breaker.record_success()
        self._publish_breaker(entry)
        record = span.to_dict() if tracer.enabled else None
        return batches, record

    @staticmethod
    def _build_query(entry: _CorpusEntry, request: QueryRequest) -> Query:
        query = entry.engine.from_strings(entry.strings).predicate(request.predicate)
        if request.realization is not None:
            query = query.realization(request.realization)
        if request.backend is not None:
            query = query.backend(request.backend)
        if request.num_shards > 1:
            query = query.shards(request.num_shards, executor=request.executor)
        return query

    # -- drain -------------------------------------------------------------------

    async def drain(self) -> None:
        """Stop taking new requests, finish everything in flight.

        Event-driven rather than polled: the admission controller signals
        when its last request releases, and ``flush_all`` awaits the actual
        flush tasks -- the drain loop sleeps on those events instead of
        spinning on a 5ms poll.  With ``drain_timeout`` set, work still in
        flight when the budget expires is abandoned (logged and counted as
        ``serve.drain_abandoned_total``); waiters see their futures fail
        when the loop shuts down rather than hanging a stuck drain forever.
        """
        self._draining = True
        if self.drain_timeout is None:
            await self._drain_idle()
            return
        try:
            await asyncio.wait_for(self._drain_idle(), self.drain_timeout)
        except asyncio.TimeoutError:
            abandoned = (
                self.admission.active + self.admission.waiting + self.batcher.pending
            )
            logger.warning(
                "drain timed out after %.3fs; abandoning %d in-flight request(s)",
                self.drain_timeout,
                abandoned,
            )
            self.obs.metrics.inc("serve.drain_abandoned_total", abandoned)

    async def _drain_idle(self) -> None:
        """Wait until no request is admitted, queued or batched anywhere."""
        while True:
            await self.batcher.flush_all()
            await self.admission.wait_idle()
            if not (
                self.admission.active
                or self.admission.waiting
                or self.batcher.pending
            ):
                return

    @property
    def draining(self) -> bool:
        return self._draining
