"""Deterministic fault injection: named fault points with seeded triggers.

Chaos testing only proves anything when the chaos is *reproducible*: a crash
that appears on the third shard task of one run must appear on the third
shard task of every run, or a failing CI job cannot be replayed.  The
:class:`FaultInjector` therefore has no ambient randomness -- every rule is
either call-counted (``once`` / ``nth=N``) or drawn from a
:class:`random.Random` seeded at construction, and the counters live in the
*parent* process: executors consult the injector when they dispatch a task
and stamp the resulting directive into the task payload, so the fault fires
in exactly one worker regardless of how the pool schedules the batch.

Fault points (see :data:`FAULT_POINTS`):

``shard.task``
    One per-shard task execution.  Directives: ``raise`` (the worker raises
    a transient :class:`InjectedFault`; the retry ladder heals it) or
    ``crash`` (a *process* worker calls ``os._exit`` -- the pool breaks and
    the executor rebuilds it; thread/serial executors demote ``crash`` to
    ``raise`` because killing the parent process is not an injectable fault).
``executor.pool``
    One executor dispatch round.  Firing simulates a broken worker pool
    (:class:`concurrent.futures.BrokenExecutor`), exercising the
    rebuild-and-rerun path without sacrificing a real worker.
``serve.batch``
    One micro-batch execution in the serving layer; firing raises before the
    engine runs, exercising the 500-envelope path and the circuit breaker.
``sql.statement``
    One declarative SQL statement (checked by the engine's recording
    backend).

The ``REPRO_FAULTS`` environment variable carries the same rules as a spec
string, so whole test suites run under injected faults without code changes
(the CI chaos job does exactly this)::

    REPRO_FAULTS="shard.task:nth=3"                  # 3rd task raises, once
    REPRO_FAULTS="shard.task:p=0.02:seed=7"          # 2% of tasks raise
    REPRO_FAULTS="shard.task:once:action=crash"      # first worker dies
    REPRO_FAULTS="serve.batch:nth=2;sql.statement:p=0.01"

An injector with no rules reports ``active == False``; every instrumented
call site checks that flag first, so inactive injection compiles down to one
attribute read on the hot path.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "FAULT_POINTS",
    "FAULT_ACTIONS",
    "InjectedFault",
    "FaultRule",
    "FaultInjector",
    "NOOP_INJECTOR",
    "parse_fault_spec",
    "faults_from_env",
]

#: The instrumented fault points (call sites consult the injector by name).
FAULT_POINTS: Tuple[str, ...] = (
    "shard.task",
    "executor.pool",
    "serve.batch",
    "sql.statement",
)

#: What a firing rule does: ``raise`` a transient :class:`InjectedFault`,
#: ``crash`` the worker process (``os._exit``; process executors only), or
#: ``broken_pool`` (simulate a broken executor pool -- implied and only
#: meaningful at the ``executor.pool`` point).
FAULT_ACTIONS: Tuple[str, ...] = ("raise", "crash", "broken_pool")


class InjectedFault(Exception):
    """A deliberately injected, transient failure (retry-safe by contract)."""


class FaultRule:
    """One trigger at one fault point.

    Exactly one of ``once``, ``nth`` or ``p`` selects the trigger:

    * ``once`` -- fire on the first call of the point, then never again;
    * ``nth=N`` -- fire on the N-th call (1-based), then never again;
    * ``p=F`` -- fire each call independently with probability ``F``, drawn
      from a :class:`random.Random` seeded with ``seed`` (default 20070411,
      the library-wide seed), so a fixed call sequence fires identically on
      every run.
    """

    def __init__(
        self,
        point: str,
        once: bool = False,
        nth: Optional[int] = None,
        p: Optional[float] = None,
        seed: int = 20070411,
        action: str = "raise",
    ):
        if point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {point!r}; available: {list(FAULT_POINTS)}"
            )
        if action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {action!r}; available: {list(FAULT_ACTIONS)}"
            )
        selected = sum((bool(once), nth is not None, p is not None))
        if selected != 1:
            raise ValueError(
                "exactly one trigger is required: once, nth=N or p=F"
            )
        if nth is not None and nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")
        if p is not None and not 0.0 < p <= 1.0:
            raise ValueError("p must be within (0, 1]")
        self.point = point
        self.action = action
        self._nth = 1 if once else nth
        self._p = p
        self._rng = random.Random(seed) if p is not None else None
        self._spent = False

    def fire(self, call_index: int) -> bool:
        """Whether this rule fires on the point's ``call_index``-th call."""
        if self._nth is not None:
            if self._spent or call_index != self._nth:
                return False
            self._spent = True
            return True
        return self._rng.random() < self._p  # type: ignore[union-attr]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        trigger = f"nth={self._nth}" if self._nth is not None else f"p={self._p}"
        return f"FaultRule({self.point!r}, {trigger}, action={self.action!r})"


class FaultInjector:
    """Named fault points with deterministic trigger rules.

    Call sites use one of two entry points:

    * :meth:`check` -- count one call of the point and *raise*
      :class:`InjectedFault` if a rule fires (in-process points:
      ``serve.batch``, ``sql.statement``);
    * :meth:`directive` -- count one call and return the firing rule's
      action (or ``None``), for call sites that must carry the fault
      somewhere else before detonating it -- executors stamp the directive
      into the task payload so it fires inside the worker.

    Both are serialized by one lock: counters stay exact under the serving
    layer's worker threads.  The injector itself never sleeps, exits or
    touches pools -- it only decides; the instrumented layer acts.
    """

    def __init__(self, rules: Sequence[FaultRule] = ()):
        self._rules: Dict[str, List[FaultRule]] = {}
        for rule in rules:
            self._rules.setdefault(rule.point, []).append(rule)
        self._calls: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        """Locks do not pickle; a fresh one is created on load."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @property
    def active(self) -> bool:
        """Whether any rule is loaded (the one-attribute hot-path gate)."""
        return bool(self._rules)

    def calls(self, point: str) -> int:
        """How many times the point has been consulted."""
        return self._calls.get(point, 0)

    def fired(self, point: str) -> int:
        """How many faults the point has injected."""
        return self._fired.get(point, 0)

    def directive(self, point: str) -> Optional[str]:
        """Count one call; return the action of the firing rule, if any."""
        with self._lock:
            index = self._calls.get(point, 0) + 1
            self._calls[point] = index
            for rule in self._rules.get(point, ()):
                if rule.fire(index):
                    self._fired[point] = self._fired.get(point, 0) + 1
                    return rule.action
        return None

    def check(self, point: str) -> None:
        """Count one call; raise :class:`InjectedFault` if a rule fires."""
        if self.directive(point) is not None:
            raise InjectedFault(f"injected fault at {point!r}")


#: The shared inactive injector (``active == False``): the default wherever
#: fault injection is optional, costing one attribute read when consulted.
NOOP_INJECTOR = FaultInjector()


def parse_fault_spec(spec: str) -> FaultInjector:
    """Compile a ``REPRO_FAULTS`` spec string into a :class:`FaultInjector`.

    Grammar: ``;``-separated rules, each ``point:token[:token...]`` where a
    token is ``once``, ``nth=N``, ``p=F``, ``seed=N`` or ``action=NAME``.
    An empty spec yields an inactive injector.
    """
    rules: List[FaultRule] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        parts = [part.strip() for part in clause.split(":")]
        point, tokens = parts[0], parts[1:]
        kwargs: Dict[str, object] = {}
        for token in tokens:
            if token == "once":
                kwargs["once"] = True
                continue
            key, sep, value = token.partition("=")
            if not sep:
                raise ValueError(
                    f"bad fault token {token!r} in {clause!r}; expected "
                    "once, nth=N, p=F, seed=N or action=NAME"
                )
            if key == "nth":
                kwargs["nth"] = int(value)
            elif key == "p":
                kwargs["p"] = float(value)
            elif key == "seed":
                kwargs["seed"] = int(value)
            elif key == "action":
                kwargs["action"] = value
            else:
                raise ValueError(f"unknown fault token {key!r} in {clause!r}")
        rules.append(FaultRule(point, **kwargs))  # type: ignore[arg-type]
    return FaultInjector(rules)


def faults_from_env(environ: Optional[Mapping[str, str]] = None) -> FaultInjector:
    """The injector described by ``REPRO_FAULTS`` (inactive when unset).

    Reads ``os.environ`` by default; engines and services call this at
    construction time, so setting the variable puts every subsequently built
    engine under the same fault plan (each with fresh, independent counters).
    """
    if environ is None:
        import os

        environ = os.environ
    spec = environ.get("REPRO_FAULTS", "")
    if not spec.strip():
        return NOOP_INJECTOR
    return parse_fault_spec(spec)
