"""Failure handling for the similarity engine and its serving front.

The package owns four small, composable pieces -- none of which knows about
predicates or HTTP; the shard and serve layers wire them in:

* :mod:`repro.resilience.faults` -- deterministic fault injection
  (:class:`FaultInjector`, the ``REPRO_FAULTS`` env spec) so crash
  recovery is *tested*, not hoped for;
* :mod:`repro.resilience.retry` -- :class:`RetryPolicy` (bounded attempts,
  seeded backoff) and :class:`Deadline` propagation via contextvars, with
  :func:`check_deadline` dropped at shard-task and SQL-statement
  boundaries;
* :mod:`repro.resilience.breaker` -- the per-corpus
  :class:`CircuitBreaker` behind degraded-mode serving;
* :mod:`repro.resilience.stats` -- :class:`ResilienceStats`, the record of
  what the self-healing machinery did, surfaced in ``explain()`` and as
  ``resilience.*`` counters.

Everything rests on the exactness contract the test suite pins: shard
tasks are pure, so retrying or re-running them after a crash is safe and
bit-identical -- the chaos suite (``tests/test_chaos.py``) asserts exactly
that under injected worker crashes and broken pools.
"""

from repro.resilience.breaker import BREAKER_STATES, BreakerOpen, CircuitBreaker
from repro.resilience.faults import (
    FAULT_ACTIONS,
    FAULT_POINTS,
    FaultInjector,
    FaultRule,
    InjectedFault,
    NOOP_INJECTOR,
    faults_from_env,
    parse_fault_spec,
)
from repro.resilience.retry import (
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.resilience.stats import ResilienceStats

__all__ = [
    "BREAKER_STATES",
    "BreakerOpen",
    "CircuitBreaker",
    "FAULT_ACTIONS",
    "FAULT_POINTS",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "NOOP_INJECTOR",
    "faults_from_env",
    "parse_fault_spec",
    "Deadline",
    "DeadlineExceeded",
    "RetryPolicy",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "ResilienceStats",
]
