"""Per-corpus circuit breaker for degraded-mode serving.

The classic three-state machine, kept deliberately small:

* **closed** -- requests flow; consecutive failures are counted, and
  reaching ``failure_threshold`` trips the breaker open.
* **open** -- requests are rejected *before* any engine work with
  :class:`BreakerOpen` (the service maps it to a fast 503 carrying
  ``Retry-After``), until ``reset_timeout`` has elapsed.
* **half-open** -- one probe request is admitted; success closes the
  breaker, failure re-opens it for another full ``reset_timeout``.

The serving layer keeps one breaker per corpus: a corpus whose engine is
persistently failing (poisoned state, broken backend) stops consuming
worker threads and admission slots, while healthy corpora on the same
service are untouched.  The clock is injectable so the state machine is
unit-tested on a fake clock, and :attr:`state_value` exports the state as a
number (0/1/2) for the metrics gauge.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.obs.clock import perf_clock

__all__ = ["CircuitBreaker", "BreakerOpen", "BREAKER_STATES"]

#: Gauge encoding of breaker states (exported as ``serve.breaker_state.*``).
BREAKER_STATES = {"closed": 0, "open": 1, "half_open": 2}


class BreakerOpen(Exception):
    """Rejected without execution: the circuit breaker is open.

    ``retry_after`` is the remaining open time in seconds (>= 0); the
    serving layer forwards it as the HTTP ``Retry-After`` header.
    """

    def __init__(self, retry_after: float):
        self.retry_after = retry_after
        super().__init__(f"circuit breaker open; retry after {retry_after:.2f}s")


class CircuitBreaker:
    """Closed -> open -> half-open failure isolation, thread-safe."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 5.0,
        clock: Callable[[], float] = perf_clock,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be > 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"  # guarded-by: _lock
        self._failures = 0  # guarded-by: _lock
        self._opened_at = 0.0  # guarded-by: _lock

    def __getstate__(self) -> dict:
        """Locks do not pickle; a fresh one is created on load."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def state_value(self) -> int:
        """The state as a gauge value (see :data:`BREAKER_STATES`)."""
        return BREAKER_STATES[self.state]

    def allow(self) -> None:
        """Admit one request or raise :class:`BreakerOpen`.

        While open, the first call after ``reset_timeout`` flips to
        half-open and is admitted as the probe; concurrent callers keep
        being rejected until the probe reports back.
        """
        with self._lock:
            if self._state == "closed":
                return
            if self._state == "half_open":
                # A probe is already in flight; don't stampede the engine.
                raise BreakerOpen(self.reset_timeout)
            elapsed = self._clock() - self._opened_at
            if elapsed >= self.reset_timeout:
                self._state = "half_open"
                return
            raise BreakerOpen(self.reset_timeout - elapsed)

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = "closed"

    def record_failure(self) -> None:
        with self._lock:
            if self._state == "half_open":
                # The probe failed: re-open for another full timeout.
                self._state = "open"
                self._opened_at = self._clock()
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._state = "open"
                self._opened_at = self._clock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"CircuitBreaker(state={self._state!r}, "
                f"failures={self._failures}/{self.failure_threshold})"
            )
