"""Bounded retries with seeded backoff, and deadlines that propagate.

Both halves exist because the shard layer's exactness contract makes them
safe: shard tasks are pure functions of (fitted shard, op, payload), so
re-running one after a transient failure cannot change the answer -- the
same property that lets MapReduce-style systems re-execute failed tasks.

:class:`RetryPolicy` is deliberately boring: a fixed attempt budget,
exponential backoff with a deterministic jitter stream (seeded
:class:`random.Random`, so a test replays the exact delay sequence), and an
injectable sleep/clock pair so the unit tests run on a fake clock in
microseconds of wall time.

:class:`Deadline` carries an *absolute* expiry on the library's sanctioned
monotonic clock (:func:`repro.obs.clock.perf_clock`).  The serving layer
mints one per request from ``QueryRequest.timeout`` and opens a
:func:`deadline_scope` around engine execution; the scope rides a
``contextvars.ContextVar``, which ``asyncio.to_thread`` copies into the
batch worker thread for free.  Work then calls :func:`check_deadline` at
natural boundaries -- before each shard-task dispatch, between the queries
of a ``run_many``, before each declarative SQL statement -- so a timed-out
request stops burning its worker thread instead of computing into the void
while the waiting coroutine has long since been cancelled.  Process-pool
workers are intentionally *not* checked: monotonic clocks are not
comparable across processes, and per-shard tasks are small enough that the
dispatch-side check bounds the overrun.
"""

from __future__ import annotations

import contextlib
import contextvars
import random
import time
from typing import Callable, Iterator, Optional, Tuple, Type, TypeVar

from repro.obs.clock import perf_clock

__all__ = [
    "RetryPolicy",
    "Deadline",
    "DeadlineExceeded",
    "deadline_scope",
    "current_deadline",
    "check_deadline",
]

T = TypeVar("T")


class DeadlineExceeded(Exception):
    """Raised when work observes that its deadline has already passed."""


class Deadline:
    """An absolute expiry on the monotonic clock.

    Built from a relative budget (seconds); ``None`` means unbounded, which
    keeps call sites free of special cases -- an unbounded deadline never
    expires and :meth:`check` on it is a no-op.
    """

    __slots__ = ("expires_at", "budget", "_clock")

    def __init__(
        self,
        budget: Optional[float],
        clock: Callable[[], float] = perf_clock,
    ):
        self.budget = budget
        self._clock = clock
        self.expires_at = None if budget is None else clock() + budget

    def remaining(self) -> Optional[float]:
        """Seconds left (may be negative); ``None`` when unbounded."""
        if self.expires_at is None:
            return None
        return self.expires_at - self._clock()

    def expired(self) -> bool:
        return self.expires_at is not None and self._clock() >= self.expires_at

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        if self.expired():
            raise DeadlineExceeded(
                f"deadline exceeded (budget {self.budget:.3f}s)"
            )

    @classmethod
    def combine(cls, deadlines: "Tuple[Optional[Deadline], ...]") -> "Optional[Deadline]":
        """The *latest* of the given deadlines (``None`` if any is unbounded).

        Used by the micro-batcher: a batch serves several waiters, so the
        batch as a whole may only be abandoned once **all** of them have
        expired -- stopping at the earliest deadline would throw away work
        that other waiters still need.
        """
        latest: Optional[Deadline] = None
        for deadline in deadlines:
            if deadline is None or deadline.expires_at is None:
                return None
            if latest is None or deadline.expires_at > latest.expires_at:
                latest = deadline
        return latest

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        remaining = self.remaining()
        if remaining is None:
            return "Deadline(unbounded)"
        return f"Deadline(remaining={remaining:.3f}s)"


#: The ambient deadline of the current logical request, if any.  Set via
#: :func:`deadline_scope`; ``asyncio.to_thread`` copies the context, so the
#: scope opened in the event loop is visible inside the batch worker thread.
_DEADLINE: contextvars.ContextVar[Optional[Deadline]] = contextvars.ContextVar(
    "repro_deadline", default=None
)


@contextlib.contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Make ``deadline`` ambient for the duration of the block."""
    token = _DEADLINE.set(deadline)
    try:
        yield deadline
    finally:
        _DEADLINE.reset(token)


def current_deadline() -> Optional[Deadline]:
    """The ambient deadline, or ``None`` outside any scope."""
    return _DEADLINE.get()


def check_deadline() -> None:
    """Raise :class:`DeadlineExceeded` if the ambient deadline has passed.

    The single call instrumented work drops at its natural boundaries; free
    outside a scope (one contextvar read).
    """
    deadline = _DEADLINE.get()
    if deadline is not None:
        deadline.check()


class RetryPolicy:
    """Bounded attempts with exponential backoff and seeded jitter.

    ``max_attempts`` counts *total* tries (1 = no retries).  The delay
    before retry ``n`` (1-based) is ``backoff * multiplier**(n-1)`` capped
    at ``max_backoff``, plus a jitter drawn uniformly from ``[0, jitter *
    delay]`` by a seeded generator -- deterministic per policy instance, so
    a replayed run sleeps the same schedule.  The defaults are sized for
    in-process transient faults (a handful of milliseconds), not network
    calls; the serving client builds its own, slower policy.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        backoff: float = 0.005,
        multiplier: float = 2.0,
        max_backoff: float = 0.25,
        jitter: float = 0.1,
        seed: int = 20070411,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if backoff < 0 or max_backoff < 0 or jitter < 0:
            raise ValueError("backoff, max_backoff and jitter must be >= 0")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.multiplier = multiplier
        self.max_backoff = max_backoff
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._sleep = sleep

    def delay(self, retry_index: int) -> float:
        """The backoff before the ``retry_index``-th retry (1-based)."""
        base = min(
            self.backoff * self.multiplier ** (retry_index - 1),
            self.max_backoff,
        )
        if self.jitter:
            base += self._rng.random() * self.jitter * base
        return base

    def pause(self, retry_index: int) -> None:
        """Sleep the backoff for the ``retry_index``-th retry.

        For callers that drive their own retry loop (the pooled executors
        retry whole *rounds* of failed tasks, not one callable) but still
        want the policy's schedule and injected sleep.
        """
        self._sleep(self.delay(retry_index))

    def run(
        self,
        fn: Callable[[], T],
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> T:
        """Call ``fn`` under the policy.

        Retries only exceptions matching ``retry_on``; anything else (and
        the final failing attempt) propagates.  :class:`DeadlineExceeded`
        is never retried -- a request that is already out of time must not
        sleep and try again -- and the ambient deadline is re-checked
        before each retry so backoff cannot outlive the budget.
        """
        attempt = 1
        while True:
            try:
                return fn()
            except DeadlineExceeded:
                raise
            except retry_on as exc:
                if attempt >= self.max_attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                self._sleep(self.delay(attempt))
                check_deadline()
                attempt += 1
