"""Resilience accounting: what the self-healing machinery actually did.

One :class:`ResilienceStats` record per executor run, merged across the
runs of a query by the sharded predicate and surfaced two ways -- in
``explain()`` (so a human sees "the pool broke and was rebuilt" next to the
plan) and as ``resilience.*`` counters in the metrics registry (so a
dashboard sees the rate).  A run with no incidents publishes nothing: the
happy path stays free of counter churn, and ``events`` is falsy, which is
what `explain()` keys on to omit the section entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["ResilienceStats"]


@dataclass
class ResilienceStats:
    """Counts of resilience events during shard execution.

    ``tasks`` is the number of shard tasks dispatched (including re-runs);
    the rest count incidents: per-task ``task_retries`` / terminal
    ``task_failures``, broken-pool ``pool_rebuilds``, tasks that fell back
    to in-process serial execution (``serial_fallbacks``), and faults the
    injector deliberately fired (``faults_injected``).
    """

    executor: str = ""
    tasks: int = 0
    task_retries: int = 0
    task_failures: int = 0
    pool_rebuilds: int = 0
    serial_fallbacks: int = 0
    faults_injected: int = 0

    @property
    def events(self) -> int:
        """Total incidents (0 on a clean run -- used as truthiness gate)."""
        return (
            self.task_retries
            + self.task_failures
            + self.pool_rebuilds
            + self.serial_fallbacks
            + self.faults_injected
        )

    def merge(self, other: "ResilienceStats") -> None:
        """Fold another run's record into this one (executor name wins last)."""
        if other.executor:
            self.executor = other.executor
        self.tasks += other.tasks
        self.task_retries += other.task_retries
        self.task_failures += other.task_failures
        self.pool_rebuilds += other.pool_rebuilds
        self.serial_fallbacks += other.serial_fallbacks
        self.faults_injected += other.faults_injected

    def publish(self, metrics) -> None:
        """Increment ``resilience.*`` counters, skipping zeros."""
        for name, value in (
            ("resilience.task_retries", self.task_retries),
            ("resilience.task_failures", self.task_failures),
            ("resilience.pool_rebuilds", self.pool_rebuilds),
            ("resilience.serial_fallbacks", self.serial_fallbacks),
            ("resilience.faults_injected", self.faults_injected),
        ):
            if value:
                metrics.inc(name, value)

    def describe(self) -> str:
        """One human line for ``explain()`` output."""
        parts: List[str] = [f"executor={self.executor or '?'}", f"tasks={self.tasks}"]
        for label, value in (
            ("retries", self.task_retries),
            ("failures", self.task_failures),
            ("pool_rebuilds", self.pool_rebuilds),
            ("serial_fallbacks", self.serial_fallbacks),
            ("faults_injected", self.faults_injected),
        ):
            if value:
                parts.append(f"{label}={value}")
        return ", ".join(parts)
