"""Pluggable executors that run per-shard tasks serially or in parallel.

An executor is bound to the fitted shard predicates once
(:meth:`ShardExecutor.bind`) and then asked to run batches of *tasks* --
``(shard_id, op, payload)`` triples resolved by
:func:`repro.shard.predicate.execute_shard_op`.  Three strategies ship:

* :class:`SerialShardExecutor` -- in-process loop; no parallelism, no
  overhead.  The baseline, and the only strategy that can short-circuit
  shards *between* task executions.
* :class:`ThreadShardExecutor` -- a ``ThreadPoolExecutor``.  Python-level
  scoring holds the GIL, so this mainly helps when scoring releases it
  (future native kernels) or for I/O-ish predicates; it exists because the
  executor seam should not hard-code that assumption.
* :class:`ProcessShardExecutor` -- a ``ProcessPoolExecutor``.  On platforms
  with ``fork`` the fitted shards are inherited copy-on-write by the worker
  processes (nothing is pickled per task but the task payloads and result
  rows); without ``fork`` the shard predicate itself is shipped with each
  task, which is correct but slow and memory-hungry -- a warning is emitted
  once.

Executors are deliberately tiny: distribution beyond one machine only needs
a fourth strategy with the same two methods.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import warnings
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "ShardExecutor",
    "SerialShardExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "make_executor",
]

#: One task: (shard id, operation name, payload dict).
ShardTask = Tuple[int, str, dict]


def _run_task(shard, op: str, payload: dict):
    # Local import: predicate.py imports this module for the executor types.
    from repro.shard.predicate import execute_shard_op

    return execute_shard_op(shard, op, payload)


class ShardExecutor(ABC):
    """Strategy interface: run ``(shard_id, op, payload)`` tasks."""

    name: str = "executor"
    #: Whether tasks of one batch may run concurrently (drives how the
    #: sharded top-k schedules its bound-ordered short-circuit).
    parallel: bool = False

    def __init__(self) -> None:
        self._shards: List[object] = []
        self._owner: Optional[object] = None

    def bind(self, shards: Sequence[object], owner: Optional[object] = None) -> None:
        """(Re)attach the fitted shard predicates tasks will run against.

        An executor holds per-predicate worker state (the bound shards, and
        for process pools a forked snapshot of them), so one instance cannot
        serve two predicates at once: a second predicate binding a live
        executor would silently redirect the first predicate's queries to
        the wrong shards.  Rebinding is allowed for the same ``owner`` (a
        refit) or after :meth:`close`.
        """
        if (
            owner is not None
            and self._owner is not None
            and self._owner is not owner
        ):
            raise ValueError(
                f"{type(self).__name__} is already bound to another sharded "
                "predicate; executors hold per-predicate worker state and "
                "cannot be shared -- pass an executor name (or a fresh "
                "instance) per predicate"
            )
        self._owner = owner
        self._shards = list(shards)

    @abstractmethod
    def run(self, tasks: Sequence[ShardTask]) -> List[object]:
        """Execute the tasks and return their results in task order."""

    def close(self) -> None:
        """Release pools/processes; the executor may be re-bound afterwards."""
        self._owner = None

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialShardExecutor(ShardExecutor):
    """Run every task inline, in order."""

    name = "serial"
    parallel = False

    def run(self, tasks: Sequence[ShardTask]) -> List[object]:
        return [
            _run_task(self._shards[shard_id], op, payload)
            for shard_id, op, payload in tasks
        ]


class ThreadShardExecutor(ShardExecutor):
    """Run tasks on a persistent thread pool (shards shared, not copied)."""

    name = "thread"
    parallel = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        self._max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            workers = self._max_workers or max(1, len(self._shards))
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-shard"
            )
        return self._pool

    def run(self, tasks: Sequence[ShardTask]) -> List[object]:
        pool = self._ensure_pool()
        futures = [
            pool.submit(_run_task, self._shards[shard_id], op, payload)
            for shard_id, op, payload in tasks
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        super().close()


#: Fitted shard lists inherited by forked workers, keyed per bind() call.
_FORK_REGISTRY: Dict[int, List[object]] = {}
_FORK_KEYS = itertools.count(1)


def _registry_task(key: int, shard_id: int, op: str, payload: dict):
    """Worker entry on forked pools: shards come from the inherited registry."""
    return _run_task(_FORK_REGISTRY[key][shard_id], op, payload)


class ProcessShardExecutor(ShardExecutor):
    """Run tasks on a persistent process pool (true multi-core scoring)."""

    name = "process"
    parallel = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        self._max_workers = max_workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self._key: Optional[int] = None
        self._fork = "fork" in multiprocessing.get_all_start_methods()
        self._warned_spawn = False

    def bind(self, shards: Sequence[object], owner: Optional[object] = None) -> None:
        # A rebind invalidates the forked snapshot: tear the pool down so
        # the next run forks fresh workers seeing the new shards.  The
        # ownership check must run *before* the teardown, though -- a
        # rejected bind must not kill the current owner's pool.
        if (
            owner is not None
            and self._owner is not None
            and self._owner is not owner
        ):
            super().bind(shards, owner)  # raises
        self.close()
        super().bind(shards, owner)
        if self._fork:
            self._key = next(_FORK_KEYS)
            _FORK_REGISTRY[self._key] = self._shards

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            workers = self._max_workers or min(
                max(1, len(self._shards)), os.cpu_count() or 1
            )
            if self._fork:
                context = multiprocessing.get_context("fork")
                self._pool = ProcessPoolExecutor(
                    max_workers=workers, mp_context=context
                )
            else:  # pragma: no cover - non-fork platforms
                if not self._warned_spawn:
                    warnings.warn(
                        "fork is unavailable; the process executor ships the "
                        "fitted shard with every task (correct but slow)",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    self._warned_spawn = True
                self._pool = ProcessPoolExecutor(max_workers=workers)
        return self._pool

    def run(self, tasks: Sequence[ShardTask]) -> List[object]:
        if self._fork and self._key is None:
            # Closed (or never forked) with shards still bound: re-register
            # them so the pool created below forks a fresh snapshot instead
            # of looking up a retired registry key.
            self._key = next(_FORK_KEYS)
            _FORK_REGISTRY[self._key] = self._shards
        pool = self._ensure_pool()
        if self._fork:
            futures = [
                pool.submit(_registry_task, self._key, shard_id, op, payload)
                for shard_id, op, payload in tasks
            ]
        else:  # pragma: no cover - non-fork platforms
            futures = [
                pool.submit(_run_task, self._shards[shard_id], op, payload)
                for shard_id, op, payload in tasks
            ]
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._key is not None:
            _FORK_REGISTRY.pop(self._key, None)
            self._key = None
        super().close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass


_EXECUTORS = {
    "serial": SerialShardExecutor,
    "thread": ThreadShardExecutor,
    "process": ProcessShardExecutor,
}


def make_executor(
    executor: Union[str, ShardExecutor, None],
    max_workers: Optional[int] = None,
) -> ShardExecutor:
    """Resolve an executor spec (name or instance) to an executor.

    Names: ``"serial"``, ``"thread"``, ``"process"``.  Instances are used
    as-is (the caller owns their lifecycle).
    """
    if executor is None:
        return SerialShardExecutor()
    if isinstance(executor, ShardExecutor):
        return executor
    key = str(executor).strip().lower()
    if key not in _EXECUTORS:
        raise ValueError(
            f"unknown shard executor {executor!r}; available: {sorted(_EXECUTORS)}"
        )
    cls = _EXECUTORS[key]
    if cls is SerialShardExecutor:
        return cls()
    return cls(max_workers=max_workers)
