"""Pluggable executors that run per-shard tasks serially or in parallel.

An executor is bound to the fitted shard predicates once
(:meth:`ShardExecutor.bind`) and then asked to run batches of *tasks* --
``(shard_id, op, payload)`` triples resolved by
:func:`repro.shard.predicate.execute_shard_op`.  Three strategies ship:

* :class:`SerialShardExecutor` -- in-process loop; no parallelism, no
  overhead.  The baseline, and the only strategy that can short-circuit
  shards *between* task executions.
* :class:`ThreadShardExecutor` -- a ``ThreadPoolExecutor``.  Python-level
  scoring holds the GIL, so this mainly helps when scoring releases it
  (the numpy kernels do) or for I/O-ish predicates; it exists because the
  executor seam should not hard-code that assumption.
* :class:`ProcessShardExecutor` -- a ``ProcessPoolExecutor``.  On platforms
  with ``fork`` the fitted shards are inherited copy-on-write by the worker
  processes (nothing is pickled per task but the task payloads and result
  rows); without ``fork`` the shard predicate itself is shipped with each
  task, which is correct but slow and memory-hungry -- a warning is emitted
  once.

Executors are deliberately tiny: distribution beyond one machine only needs
a fourth strategy with the same two methods.

**Self-healing.**  Shard tasks are pure functions of (fitted shard, op,
payload) -- the exactness contract the test suite pins -- so a failed task
can always be re-executed without changing the answer.  The executors lean
on that: every task failure is captured per-task (never a bare
``future.result()`` that kills the whole query), transient failures are
retried under a :class:`repro.resilience.RetryPolicy`, a broken worker pool
(e.g. a process worker that died mid-task) is rebuilt **once** and the
unfinished tasks re-run on the fresh pool, and a task that keeps failing is
finally executed serially in-process on the bound shard.  What happened is
recorded in :attr:`ShardExecutor.last_resilience` (a
:class:`~repro.resilience.ResilienceStats`), which the sharded predicate
merges per query and the engine surfaces in ``explain()`` and as
``resilience.*`` counters.  Deadlines (:func:`repro.resilience.check_deadline`)
are checked before each dispatch round so timed-out queries stop early.

Fault injection hooks (:class:`repro.resilience.FaultInjector`) live at two
points: ``shard.task`` decides per-task directives in the *parent* (stamped
into a copy of the payload as ``"_fault"`` and detonated by the worker
entry, so seeded rules stay deterministic regardless of pool scheduling),
and ``executor.pool`` simulates a broken pool at dispatch time.  Retries
and rebuild re-runs always dispatch the clean payload: a consumed one-shot
fault must not refire.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import multiprocessing
import os
import warnings
from abc import ABC, abstractmethod
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.resilience import (
    NOOP_INJECTOR,
    DeadlineExceeded,
    FaultInjector,
    InjectedFault,
    ResilienceStats,
    RetryPolicy,
    check_deadline,
)

__all__ = [
    "ShardExecutor",
    "SerialShardExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "make_executor",
]

#: One task: (shard id, operation name, payload dict).
ShardTask = Tuple[int, str, dict]

#: Marks a task slot whose result has not been produced yet.
_PENDING = object()


def _run_task(shard, op: str, payload: dict, in_worker_process: bool = False):
    directive = payload.get("_fault")
    if directive is not None:
        payload = {k: v for k, v in payload.items() if k != "_fault"}
        if directive == "crash" and in_worker_process:
            os._exit(13)  # simulate a worker killed mid-task (OOM, SIGKILL)
        # In-process executors demote "crash" to a raised fault: killing
        # the interpreter that owns the query is not an injectable failure.
        raise InjectedFault(f"injected fault at 'shard.task' ({op})")
    check_deadline()
    # Local import: predicate.py imports this module for the executor types.
    from repro.shard.predicate import execute_shard_op

    return execute_shard_op(shard, op, payload)


class ShardExecutor(ABC):
    """Strategy interface: run ``(shard_id, op, payload)`` tasks."""

    name: str = "executor"
    #: Whether tasks of one batch may run concurrently (drives how the
    #: sharded top-k schedules its bound-ordered short-circuit).
    parallel: bool = False

    def __init__(self) -> None:
        self._shards: List[object] = []
        self._owner: Optional[object] = None
        self._faults: FaultInjector = NOOP_INJECTOR
        self._retry: RetryPolicy = RetryPolicy()
        #: The resilience record of the most recent :meth:`run` (``None``
        #: before the first run; reset at the start of every run).
        self.last_resilience: Optional[ResilienceStats] = None

    def configure_resilience(
        self,
        faults: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> "ShardExecutor":
        """Install a fault injector and/or retry policy (chainable)."""
        if faults is not None:
            self._faults = faults
        if retry_policy is not None:
            self._retry = retry_policy
        return self

    def bind(self, shards: Sequence[object], owner: Optional[object] = None) -> None:
        """(Re)attach the fitted shard predicates tasks will run against.

        An executor holds per-predicate worker state (the bound shards, and
        for process pools a forked snapshot of them), so one instance cannot
        serve two predicates at once: a second predicate binding a live
        executor would silently redirect the first predicate's queries to
        the wrong shards.  Rebinding is allowed for the same ``owner`` (a
        refit) or after :meth:`close`.
        """
        if (
            owner is not None
            and self._owner is not None
            and self._owner is not owner
        ):
            raise ValueError(
                f"{type(self).__name__} is already bound to another sharded "
                "predicate; executors hold per-predicate worker state and "
                "cannot be shared -- pass an executor name (or a fresh "
                "instance) per predicate"
            )
        self._owner = owner
        self._shards = list(shards)

    @abstractmethod
    def run(self, tasks: Sequence[ShardTask]) -> List[object]:
        """Execute the tasks and return their results in task order."""

    def close(self) -> None:
        """Release pools/processes; the executor may be re-bound afterwards."""
        self._owner = None

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- shared self-healing machinery (pooled executors) -----------------

    def _submit(self, pool, shard_id: int, op: str, payload: dict):
        """Submit one task to the live pool (executor-specific)."""
        raise NotImplementedError

    def _rebuild_pool(self) -> None:
        """Tear down a broken pool so the next dispatch builds a fresh one."""
        raise NotImplementedError

    def _ensure_pool(self):
        raise NotImplementedError

    def _fallback_serial(self, index: int, tasks: Sequence[ShardTask], stats):
        """Last resort: run one task in-process on the bound shard."""
        stats.serial_fallbacks += 1
        shard_id, op, payload = tasks[index]
        try:
            return _run_task(self._shards[shard_id], op, payload)
        except Exception:
            stats.task_failures += 1
            raise

    def _resilient_run(self, tasks: Sequence[ShardTask]) -> List[object]:
        """Pool-based execution with capture, retry, rebuild and fallback."""
        stats = ResilienceStats(executor=self.name)
        self.last_resilience = stats
        n = len(tasks)
        results: List[object] = [_PENDING] * n
        # The payload each task dispatches with next.  Fault directives are
        # decided here in the parent (deterministic regardless of pool
        # scheduling) and stamped into a *copy*; every re-dispatch -- retry
        # or rebuild re-run -- goes back to the clean original payload so a
        # consumed one-shot fault cannot refire.
        dispatch: List[dict] = []
        for _shard_id, _op, payload in tasks:
            stats.tasks += 1
            staged = payload
            if self._faults.active:
                directive = self._faults.directive("shard.task")
                if directive is not None:
                    stats.faults_injected += 1
                    staged = dict(payload, _fault=directive)
            dispatch.append(staged)
        attempts = [1] * n
        pending = list(range(n))
        rebuilt = False
        while pending:
            check_deadline()
            broken = False
            if self._faults.active and self._faults.directive("executor.pool"):
                stats.faults_injected += 1
                broken = True
            futures: Dict[int, object] = {}
            if not broken:
                try:
                    pool = self._ensure_pool()
                    for i in pending:
                        shard_id, op, _ = tasks[i]
                        futures[i] = self._submit(pool, shard_id, op, dispatch[i])
                except BrokenExecutor:
                    broken = True
            failed: List[Tuple[int, BaseException]] = []
            if not broken:
                for i, future in futures.items():
                    try:
                        results[i] = future.result()
                    except DeadlineExceeded:
                        raise
                    except BrokenExecutor:
                        broken = True
                        break
                    except Exception as exc:
                        failed.append((i, exc))
            if broken:
                unfinished = [i for i in pending if results[i] is _PENDING]
                for i in unfinished:
                    dispatch[i] = tasks[i][2]
                if not rebuilt:
                    # One rebuild per run: a persistently breaking pool
                    # must not loop forever.
                    rebuilt = True
                    stats.pool_rebuilds += 1
                    self._rebuild_pool()
                    pending = unfinished
                    continue
                for i in unfinished:
                    results[i] = self._fallback_serial(i, tasks, stats)
                break
            retry_next: List[int] = []
            for i, _exc in failed:
                if attempts[i] < self._retry.max_attempts:
                    stats.task_retries += 1
                    dispatch[i] = tasks[i][2]
                    retry_next.append(i)
                else:
                    # Retry budget spent on the pool: try once in-process
                    # before declaring the task dead.
                    results[i] = self._fallback_serial(i, tasks, stats)
            if retry_next:
                self._retry.pause(max(attempts[i] for i in retry_next))
                for i in retry_next:
                    attempts[i] += 1
            pending = retry_next
        return results


class SerialShardExecutor(ShardExecutor):
    """Run every task inline, in order (with per-task retry)."""

    name = "serial"
    parallel = False

    def run(self, tasks: Sequence[ShardTask]) -> List[object]:
        stats = ResilienceStats(executor=self.name)
        self.last_resilience = stats
        results: List[object] = []

        def count_retry(_attempt: int, _exc: BaseException) -> None:
            stats.task_retries += 1

        for shard_id, op, payload in tasks:
            stats.tasks += 1
            check_deadline()
            staged = payload
            if self._faults.active:
                directive = self._faults.directive("shard.task")
                if directive is not None:
                    stats.faults_injected += 1
                    staged = dict(payload, _fault=directive)
            box = [staged]

            def attempt(box=box, payload=payload, shard_id=shard_id, op=op) -> object:
                current, box[0] = box[0], payload  # retries run clean
                return _run_task(self._shards[shard_id], op, current)

            try:
                results.append(self._retry.run(attempt, on_retry=count_retry))
            except DeadlineExceeded:
                raise
            except Exception:
                stats.task_failures += 1
                raise
        return results


class ThreadShardExecutor(ShardExecutor):
    """Run tasks on a persistent thread pool (shards shared, not copied)."""

    name = "thread"
    parallel = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        self._max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            workers = self._max_workers or max(1, len(self._shards))
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-shard"
            )
        return self._pool

    def _submit(self, pool: ThreadPoolExecutor, shard_id: int, op: str, payload: dict):
        # Copy the context so the ambient deadline (a contextvar set in the
        # dispatching thread) is visible inside the pool worker.
        context = contextvars.copy_context()
        return pool.submit(
            context.run, _run_task, self._shards[shard_id], op, payload
        )

    def _rebuild_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def run(self, tasks: Sequence[ShardTask]) -> List[object]:
        return self._resilient_run(tasks)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        super().close()


#: Fitted shard lists inherited by forked workers, keyed per bind() call.
_FORK_REGISTRY: Dict[int, List[object]] = {}
_FORK_KEYS = itertools.count(1)


def _registry_task(key: int, shard_id: int, op: str, payload: dict):
    """Worker entry on forked pools: shards come from the inherited registry."""
    return _run_task(_FORK_REGISTRY[key][shard_id], op, payload, in_worker_process=True)


class ProcessShardExecutor(ShardExecutor):
    """Run tasks on a persistent process pool (true multi-core scoring)."""

    name = "process"
    parallel = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        self._max_workers = max_workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self._key: Optional[int] = None
        self._fork = "fork" in multiprocessing.get_all_start_methods()
        self._warned_spawn = False

    def bind(self, shards: Sequence[object], owner: Optional[object] = None) -> None:
        # A rebind invalidates the forked snapshot: tear the pool down so
        # the next run forks fresh workers seeing the new shards.  The
        # ownership check must run *before* the teardown, though -- a
        # rejected bind must not kill the current owner's pool.
        if (
            owner is not None
            and self._owner is not None
            and self._owner is not owner
        ):
            super().bind(shards, owner)  # raises
        self.close()
        super().bind(shards, owner)
        if self._fork:
            self._key = next(_FORK_KEYS)
            _FORK_REGISTRY[self._key] = self._shards

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            workers = self._max_workers or min(
                max(1, len(self._shards)), os.cpu_count() or 1
            )
            if self._fork:
                context = multiprocessing.get_context("fork")
                self._pool = ProcessPoolExecutor(
                    max_workers=workers, mp_context=context
                )
            else:  # pragma: no cover - non-fork platforms
                if not self._warned_spawn:
                    warnings.warn(
                        "fork is unavailable; the process executor ships the "
                        "fitted shard with every task (correct but slow)",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    self._warned_spawn = True
                self._pool = ProcessPoolExecutor(max_workers=workers)
        return self._pool

    def _submit(self, pool: ProcessPoolExecutor, shard_id: int, op: str, payload: dict):
        if self._fork:
            return pool.submit(_registry_task, self._key, shard_id, op, payload)
        return pool.submit(  # pragma: no cover - non-fork platforms
            _run_task, self._shards[shard_id], op, payload, True
        )

    def _rebuild_pool(self) -> None:
        # Unlike close(), keep the fork-registry key: the snapshot maps to
        # the parent's live shard list, and the replacement pool forks from
        # the parent, so the inherited registry entry stays valid.
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def run(self, tasks: Sequence[ShardTask]) -> List[object]:
        if self._fork and self._key is None:
            # Closed (or never forked) with shards still bound: re-register
            # them so the pool created below forks a fresh snapshot instead
            # of looking up a retired registry key.
            self._key = next(_FORK_KEYS)
            _FORK_REGISTRY[self._key] = self._shards
        return self._resilient_run(tasks)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._key is not None:
            _FORK_REGISTRY.pop(self._key, None)
            self._key = None
        super().close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        with contextlib.suppress(Exception):
            self.close()


_EXECUTORS = {
    "serial": SerialShardExecutor,
    "thread": ThreadShardExecutor,
    "process": ProcessShardExecutor,
}


def make_executor(
    executor: Union[str, ShardExecutor, None],
    max_workers: Optional[int] = None,
) -> ShardExecutor:
    """Resolve an executor spec (name or instance) to an executor.

    Names: ``"serial"``, ``"thread"``, ``"process"``.  Instances are used
    as-is (the caller owns their lifecycle).
    """
    if executor is None:
        return SerialShardExecutor()
    if isinstance(executor, ShardExecutor):
        return executor
    key = str(executor).strip().lower()
    if key not in _EXECUTORS:
        raise ValueError(
            f"unknown shard executor {executor!r}; available: {sorted(_EXECUTORS)}"
        )
    cls = _EXECUTORS[key]
    if cls is SerialShardExecutor:
        return cls()
    return cls(max_workers=max_workers)
