"""Sharded (data-partitioned) execution of the direct realization.

The paper's predicates all score against *collection-level* statistics (idf,
RS weights, average tuple length), which is exactly what makes naive
data-partitioned parallelism inexact: a shard that computes its own document
frequencies weighs tokens differently from the whole relation.  This package
implements the standard IR/DBMS answer -- document partitioning with
*broadcast global statistics*:

1. one global pass computes the predicate-independent collection statistics
   (``N``, ``df``, ``cf``, ``avgdl``, ``p̂_avg`` -- everything
   :class:`repro.text.weights.CollectionStatistics` derives);
2. each shard fits a shard-local predicate with those statistics *injected*
   (:class:`~repro.shard.stats.ShardStatisticsView`), so every tuple receives
   bit-identical weights -- and therefore bit-identical scores -- to an
   unsharded fit;
3. queries execute per shard through a pluggable executor
   (:mod:`~repro.shard.executors`: serial / thread pool / process pool) and
   merge exactly in the canonical ``(score desc, tid)`` order, with per-shard
   max-score bounds short-circuiting shards that cannot reach the global
   ``k``-th score.

:class:`~repro.shard.predicate.ShardedPredicate` exposes the same protocol
as a direct :class:`~repro.core.predicates.base.Predicate`, so the engine,
joins and deduplication use it as a drop-in replacement
(``SimilarityEngine(num_shards=4, executor="process")``).
"""

from repro.shard.executors import (
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardExecutor,
    ThreadShardExecutor,
    make_executor,
)
from repro.shard.predicate import ShardedPredicate, ShardStats, shard_offsets
from repro.shard.stats import ShardStatisticsView

__all__ = [
    "ShardExecutor",
    "SerialShardExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "make_executor",
    "ShardedPredicate",
    "ShardStats",
    "ShardStatisticsView",
    "shard_offsets",
]
