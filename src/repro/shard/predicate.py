"""Sharded execution of a direct predicate with an exact global merge.

:class:`ShardedPredicate` partitions the base relation into ``S`` contiguous
shards, computes the predicate-independent collection statistics in one
global pass, and fits one shard-local predicate per shard with those
statistics injected (:mod:`repro.shard.stats`).  Every shard then scores its
tuples *bit-identically* to an unsharded fit, so merging per-shard results in
the canonical ``(score desc, tid)`` order reproduces the unsharded answer
exactly -- selections, rankings, top-k and batched workloads alike.

Query execution runs through a pluggable :class:`~repro.shard.executors.
ShardExecutor` (serial / thread pool / process pool).  ``top_k`` additionally
uses per-shard max-score bounds (the same bounds
:mod:`repro.core.topk` uses within a shard) to short-circuit shards whose
upper bound cannot reach the global ``k``-th score: the highest-bound shard
runs first to establish the floor, then provably hopeless shards are skipped
outright and the rest run -- concurrently on parallel executors, one at a
time with a progressively rising floor on the serial executor.

Blockers apply *pre-partition*: they are fitted on the full relation and
their candidate decisions are taken against global tuple ids, then narrowed
into per-shard restrictions.  Sharded results match the unsharded blocked
results: candidate generation consults the blocker's probe tokens on both
paths (including the edit-distance family's ``select``, whose unsharded
candidate set is built through ``InvertedIndex.candidates`` with the blocker
attached), so exact blockers agree bit for bit and heuristic combinations
(a Jaccard-derived filter on a non-Jaccard predicate, which already warns at
attach time) prune identically sharded or not.

Tracing: when the engine's :class:`~repro.obs.trace.Observability` holder
carries a live tracer, every task payload is stamped with its shard id and
the worker times its own execution (workers in other processes use their own
clock, so durations are meaningful but absolute timestamps are not
comparable to the parent's).  The resulting ``shard[i].task`` span records
travel back as plain dicts and are re-attached under the currently open
``execute.sharded`` span; shards skipped by the top-k bound contribute
``shard[i].skipped`` spans carrying the posting volume they avoided.
"""

from __future__ import annotations

import os
import pickle
from bisect import bisect_right
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.predicates.base import Match, Predicate
from repro.core.topk import PruningStats, maxscore_top_k
from repro.obs.clock import perf_clock
from repro.obs.trace import Observability, Span
from repro.resilience import (
    FaultInjector,
    ResilienceStats,
    RetryPolicy,
    check_deadline,
)
from repro.shard.executors import ShardExecutor, make_executor
from repro.shard.stats import InjectedStatsFactory
from repro.text.weights import CollectionStatistics

__all__ = ["ShardStats", "ShardedPredicate", "shard_offsets", "execute_shard_op"]

#: Relative float-safety margin of the shard short-circuit test, mirroring
#: :data:`repro.core.topk._CUTOFF_MARGIN`: a shard is skipped only when its
#: upper bound sits below the global k-th score by more than the accumulated
#: float error of either side could span.
_BOUND_MARGIN = 1e-9


def shard_offsets(num_tuples: int, num_shards: int) -> List[int]:
    """Contiguous, balanced shard boundaries: ``S + 1`` offsets.

    Shard ``i`` owns global tuple ids ``offsets[i] <= tid < offsets[i + 1]``;
    the first ``num_tuples % num_shards`` shards are one tuple larger.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    base, extra = divmod(num_tuples, num_shards)
    offsets = [0]
    for index in range(num_shards):
        offsets.append(offsets[-1] + base + (1 if index < extra else 0))
    return offsets


@dataclass
class ShardStats:
    """Shard-level work counters of the most recent sharded operation."""

    num_shards: int
    executor: str
    shard_sizes: Tuple[int, ...]
    shards_run: int = 0
    #: Shards proven unable to reach the global k-th score by their
    #: max-score upper bound and never executed (top-k fast path only).
    shards_skipped: int = 0

    def describe(self) -> str:
        skipped = (
            f", {self.shards_skipped} skipped by max-score bound"
            if self.shards_skipped
            else ""
        )
        return (
            f"{self.shards_run}/{self.num_shards} shards run "
            f"via {self.executor!r} executor{skipped}"
        )

    def publish(self, metrics) -> None:
        """Accumulate into a :class:`~repro.obs.metrics.MetricsRegistry`."""
        metrics.inc("shards_run", self.shards_run)
        metrics.inc("shards_skipped", self.shards_skipped)


def _fit_shard_task(
    shard: Predicate,
    strings: List[str],
    token_lists: List[List[str]],
    stats_factory: "InjectedStatsFactory",
) -> Predicate:
    """Worker entry for parallel shard fitting: fit and ship the shard back."""
    shard._stats_factory = stats_factory
    shard.fit(strings, token_lists=token_lists)
    return shard


def execute_shard_op(shard: Predicate, op: str, payload: dict) -> dict:
    """Run one operation against one fitted shard predicate.

    This is the function shard executors invoke -- in-process, on a worker
    thread, or inside a worker process.  Results are plain tuples/ints so
    process executors pickle as little as possible, and per-shard work
    counters travel back explicitly (a worker process mutating its own copy
    of the shard would otherwise be invisible to the parent).

    Payloads stamped with ``trace``/``shard_id`` (by a tracing parent, see
    :meth:`ShardedPredicate._trace_payload`) additionally time the execution
    with the worker's own clock and attach a serializable ``shard[i].task``
    span record under ``result["span"]``.
    """
    if not payload.get("trace"):
        return _dispatch_shard_op(shard, op, payload)
    started = perf_clock()
    result = _dispatch_shard_op(shard, op, payload)
    result["span"] = _shard_span_record(
        payload.get("shard_id", -1), op, started, perf_clock(), result
    )
    return result


def _shard_span_record(
    shard_id: int, op: str, started: float, ended: float, result: dict
) -> dict:
    """Serializable ``shard[i].task`` span record for one executed task."""
    attributes: Dict[str, object] = {"shard_id": shard_id, "op": op}
    rows = result.get("rows")
    if rows is not None:
        attributes["rows"] = len(rows)
    if result.get("candidates") is not None:
        attributes["candidates"] = result["candidates"]
    rows_per_query = result.get("rows_per_query")
    if rows_per_query is not None:
        attributes["num_queries"] = len(rows_per_query)
        attributes["rows"] = sum(len(per_query) for per_query in rows_per_query)
    pruning = result.get("pruning")
    if pruning is not None:
        attributes.update(
            tokens_total=pruning.tokens_total,
            tokens_opened=pruning.tokens_opened,
            postings_total=pruning.postings_total,
            postings_opened=pruning.postings_opened,
            postings_skipped=pruning.postings_skipped,
            candidates_scored=pruning.candidates_scored,
            candidates_rescored=pruning.candidates_rescored,
        )
    return {
        "name": f"shard[{shard_id}].task",
        "start": started,
        "end": ended,
        "attributes": attributes,
        "children": [],
    }


def _dispatch_shard_op(shard: Predicate, op: str, payload: dict) -> dict:
    if op == "rank":
        allowed = payload.get("allowed")
        if allowed is not None:
            with shard.restrict_candidates(allowed):
                rows = shard.rank(payload["query"], limit=payload.get("limit"))
        else:
            rows = shard.rank(payload["query"], limit=payload.get("limit"))
        return {
            "rows": [(m.tid, m.score) for m in rows],
            "candidates": shard.last_num_candidates,
        }
    if op == "select":
        allowed = payload.get("allowed")
        if allowed is not None:
            with shard.restrict_candidates(allowed):
                rows = shard.select(payload["query"], payload["threshold"])
        else:
            rows = shard.select(payload["query"], payload["threshold"])
        return {
            "rows": [(m.tid, m.score) for m in rows],
            "candidates": shard.last_num_candidates,
        }
    if op == "top_k":
        rows = shard.top_k(payload["query"], payload["k"])
        return {
            "rows": [(m.tid, m.score) for m in rows],
            "candidates": shard.last_num_candidates,
            "pruning": shard.pruning_stats,
        }
    if op == "run_many":
        rows_per_query: List[List[Tuple[int, float]]] = []
        candidates_per_query: List[Optional[int]] = []
        pruning: Optional[PruningStats] = None
        batch_op = payload["op"]
        for query in payload["queries"]:
            # Per-query boundary: a timed-out batch stops between queries
            # instead of computing the whole remainder into the void.
            check_deadline()
            if batch_op == "top_k":
                rows = shard.top_k(query, payload["k"])
                if shard.pruning_stats is not None:
                    if pruning is None:
                        pruning = PruningStats()
                    _accumulate_pruning(pruning, shard.pruning_stats)
            elif batch_op == "select":
                rows = shard.select(query, payload["threshold"])
            else:
                rows = shard.rank(query, limit=payload.get("limit"))
            rows_per_query.append([(m.tid, m.score) for m in rows])
            candidates_per_query.append(shard.last_num_candidates)
        return {
            "rows_per_query": rows_per_query,
            "candidates_per_query": candidates_per_query,
            "pruning": pruning,
        }
    raise ValueError(f"unknown shard operation {op!r}")


def _accumulate_pruning(total: PruningStats, part: PruningStats) -> None:
    total.tokens_total += part.tokens_total
    total.tokens_opened += part.tokens_opened
    total.postings_total += part.postings_total
    total.postings_opened += part.postings_opened
    total.postings_skipped += part.postings_skipped
    total.candidates_scored += part.candidates_scored
    total.candidates_rescored += part.candidates_rescored
    total.pruned = total.pruned or part.pruned


class ShardedPredicate:
    """Data-partitioned execution of a direct predicate, exact by merge.

    Parameters
    ----------
    factory:
        Zero-argument callable producing a fresh (unfitted) predicate
        instance; called once per shard plus once for the prototype that
        answers protocol attributes (name, tokenizer, score semantics).
    num_shards:
        Requested shard count; clamped to the relation size at fit time.
    executor:
        ``"serial"`` / ``"thread"`` / ``"process"`` or a
        :class:`~repro.shard.executors.ShardExecutor` instance.
    max_workers:
        Worker cap for pooled executors (defaults to shard count, bounded by
        the CPU count for processes).
    obs:
        The :class:`~repro.obs.trace.Observability` holder to publish into
        (the engine passes its own, so sharded spans land under the engine's
        execute span); a private default pair otherwise.
    """

    def __init__(
        self,
        factory: Callable[[], Predicate],
        num_shards: int = 2,
        executor: object = "serial",
        max_workers: Optional[int] = None,
        obs: Optional[Observability] = None,
        parallel_fit: Optional[bool] = None,
        faults: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.obs = obs if obs is not None else Observability()
        self._factory = factory
        #: ``True``/``False`` forces parallel fitting on/off; ``None`` decides
        #: by executor and core count (see :meth:`_parallel_fit_active`).
        self.parallel_fit = parallel_fit
        self.requested_shards = int(num_shards)
        self._prototype = factory()
        #: Executor instances passed in stay caller-owned: :meth:`close`
        #: leaves them running (mirroring the engine's treatment of
        #: caller-passed SQL backends); name specs create an owned executor.
        self._owns_executor = not isinstance(executor, ShardExecutor)
        self._executor: ShardExecutor = make_executor(executor, max_workers)
        self._executor.configure_resilience(faults=faults, retry_policy=retry_policy)
        #: Accumulated resilience record of executor runs since the last
        #: :meth:`reset_resilience` (``None`` while nothing has run).  The
        #: engine resets it per query and surfaces it in ``explain()``.
        self.resilience_stats: Optional[ResilienceStats] = None
        self._strings: List[str] = []
        self._token_lists: List[List[str]] = []
        self._global_stats: Optional[CollectionStatistics] = None
        self._offsets: List[int] = [0]
        self._shards: List[Predicate] = []
        self._fitted = False
        self._blocker = None
        self._restriction: Optional[Set[int]] = None
        #: Mirrors the direct-predicate protocol: candidates scored by the
        #: most recent single query (summed across shards), aggregated
        #: max-score counters, shard-level counters, and per-query candidate
        #: counts of the most recent :meth:`run_many` batch.
        self.last_num_candidates: Optional[int] = None
        self.pruning_stats: Optional[PruningStats] = None
        self.shard_stats: Optional[ShardStats] = None
        self.last_batch_candidates: Optional[List[Optional[int]]] = None

    # -- protocol attributes ----------------------------------------------------

    @property
    def name(self) -> str:
        return self._prototype.name

    @property
    def family(self) -> str:
        return self._prototype.family

    @property
    def similarity_kind(self) -> str:
        return self._prototype.similarity_kind

    @property
    def supports_maxscore(self) -> bool:
        return bool(getattr(self._prototype, "supports_maxscore", False))

    @property
    def _prunes_before_scoring(self) -> bool:
        return bool(getattr(self._prototype, "_prunes_before_scoring", False))

    @property
    def tokenizer(self):
        return self._prototype.tokenizer

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    @property
    def base_strings(self) -> List[str]:
        return list(self._strings)

    @property
    def num_shards(self) -> int:
        """Actual shard count after clamping to the relation size."""
        return len(self._shards) if self._shards else self.requested_shards

    @property
    def executor_name(self) -> str:
        return self._executor.name

    @property
    def shards(self) -> List[Predicate]:
        """The fitted shard-local predicates (shard ``i`` owns
        ``offsets[i] <= tid < offsets[i+1]``)."""
        return list(self._shards)

    @property
    def offsets(self) -> List[int]:
        return list(self._offsets)

    # -- preprocessing ----------------------------------------------------------

    def fit(self, strings: Sequence[str]) -> "ShardedPredicate":
        """Global statistics pass, then one injected shard-local fit per shard.

        The relation is tokenized exactly once (with the prototype's
        tokenizer): the global statistics pass consumes the token lists and
        per-shard slices of the same lists are handed into each shard-local
        fit through the :meth:`Predicate.fit` ``token_lists`` seam, so shard
        fits pay no second tokenization.  With ``parallel_fit`` (or the
        ``"process"`` executor on a multi-core machine) the shard-local fits
        themselves run inside a transient process pool -- the fitted shards
        travel back pickled, which preserves dict iteration order and
        therefore bit-identical scores.
        """
        self._strings = list(strings)
        count = len(self._strings)
        num_shards = max(1, min(self.requested_shards, count or 1))
        self._offsets = shard_offsets(count, num_shards)
        tokenizer = self._prototype.tokenizer
        self._token_lists = [tokenizer.tokenize(text) for text in self._strings]
        self._global_stats = CollectionStatistics(self._token_lists)
        stats_factory = InjectedStatsFactory(self._global_stats)
        slices = [
            (
                self._strings[self._offsets[i]:self._offsets[i + 1]],
                self._token_lists[self._offsets[i]:self._offsets[i + 1]],
            )
            for i in range(num_shards)
        ]
        self._shards = None
        if num_shards > 1 and self._parallel_fit_active():
            self._shards = self._fit_shards_parallel(slices, stats_factory)
        if self._shards is None:
            self._shards = []
            for shard_strings, shard_tokens in slices:
                shard = self._factory()
                shard._stats_factory = stats_factory
                shard.fit(shard_strings, token_lists=shard_tokens)
                self._shards.append(shard)
        self._fitted = True
        self._executor.bind(self._shards, owner=self)
        if self._blocker is not None:
            self._fit_blocker(self._blocker)
        return self

    def _parallel_fit_active(self) -> bool:
        """Whether shard-local fits should run in worker processes.

        ``parallel_fit=True`` forces it, ``False`` disables it, and ``None``
        (the default) enables it exactly when it can pay off: a ``"process"``
        executor on a machine with more than one core.
        """
        if self.parallel_fit is not None:
            return self.parallel_fit
        return self._executor.name == "process" and (os.cpu_count() or 1) > 1

    def _fit_shards_parallel(
        self,
        slices: Sequence[Tuple[List[str], List[List[str]]]],
        stats_factory: InjectedStatsFactory,
    ) -> Optional[List[Predicate]]:
        """Fit every shard in a transient process pool; ``None`` on fallback.

        Unfitted predicate instances are shipped out (factories are often
        closures and do not pickle), fitted ones come back.  Unpicklable
        predicates fall back to the serial in-parent fit -- parallel fitting
        is an optimization, never a requirement.
        """
        try:
            unfitted = [self._factory() for _ in slices]
            with ProcessPoolExecutor(max_workers=min(len(slices), os.cpu_count() or 1)) as pool:
                futures = [
                    pool.submit(
                        _fit_shard_task, shard, strings, tokens, stats_factory
                    )
                    for shard, (strings, tokens) in zip(unfitted, slices)
                ]
                return [future.result() for future in futures]
        except (pickle.PicklingError, TypeError, AttributeError):
            return None

    def close(self) -> None:
        """Shut down the executor's worker pool (shards stay usable: pooled
        executors re-create their pool lazily on the next query).

        Caller-passed executor *instances* are left running -- the caller
        owns their lifecycle, exactly like SQL backend instances passed to
        the engine.
        """
        if self._owns_executor:
            self._executor.close()

    # -- blocking (pre-partition: fitted on the full relation) ------------------

    @property
    def blocker(self):
        return self._blocker

    def set_blocker(self, blocker) -> "ShardedPredicate":
        """Attach a blocker, fitted on the *full* relation (pre-partition)."""
        if (
            blocker is not None
            and getattr(blocker, "semantics", "any") == "jaccard"
            and self.similarity_kind != "jaccard"
        ):
            import warnings

            warnings.warn(
                f"{type(blocker).__name__} derives its bounds from Jaccard "
                f"semantics; with the {self.name} predicate it is a heuristic "
                "and may drop candidates whose score reaches the threshold",
                UserWarning,
                stacklevel=2,
            )
        self._blocker = blocker
        if blocker is not None and self._fitted:
            self._fit_blocker(blocker)
        return self

    def _fit_blocker(self, blocker) -> None:
        blocker.fit(self._blocker_corpus(blocker))

    def _blocker_corpus(self, blocker) -> List[List[str]]:
        """Global token lists the blocker indexes, mirroring the unsharded
        predicate: families that share their own token lists with blockers
        (overlap, edit) yield the predicate-tokenizer lists of the global
        pass; the rest tokenize with the blocker's tokenizer."""
        if type(self._prototype)._blocker_corpus is Predicate._blocker_corpus:
            return blocker.tokenizer.tokenize_many(self._strings)
        return self._token_lists

    def _blocker_query_tokens(self, query: str, blocker) -> Set[str]:
        if (
            type(self._prototype)._blocker_query_tokens
            is Predicate._blocker_query_tokens
        ):
            return set(blocker.tokenizer.tokenize(query))
        return set(self._prototype.tokenizer.tokenize(query))

    def _check_blocker_threshold(self, threshold: float) -> None:
        if self._blocker is not None and not self._blocker.supports_threshold(
            threshold
        ):
            raise ValueError(
                f"selection threshold {threshold} is below the threshold the "
                f"attached {self._blocker.name!r} blocker was built for; "
                "rebuild the blocker with the lower threshold"
            )

    @contextmanager
    def restrict_candidates(self, allowed: Optional[Set[int]]):
        """Scope queries to the given *global* tuple ids (self-join probes)."""
        previous = self._restriction
        self._restriction = allowed
        try:
            yield
        finally:
            self._restriction = previous

    # -- execution helpers ------------------------------------------------------

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(
                f"{type(self).__name__} must be fit() on a base relation "
                "before querying"
            )

    def _shard_of(self, tid: int) -> Tuple[int, int]:
        shard_id = bisect_right(self._offsets, tid) - 1
        return shard_id, tid - self._offsets[shard_id]

    def _local_allowed(self, allowed: Set[int], shard_id: int) -> Set[int]:
        low, high = self._offsets[shard_id], self._offsets[shard_id + 1]
        return {tid - low for tid in allowed if low <= tid < high}

    def _merge_rows(
        self, per_shard: Sequence[Sequence[Tuple[int, float]]], shard_ids: Sequence[int]
    ) -> List[Match]:
        merged = [
            Match(tid + self._offsets[shard_id], score)
            for shard_id, rows in zip(shard_ids, per_shard)
            for tid, score in rows
        ]
        merged.sort(key=lambda m: (-m.score, m.tid))
        return merged

    def _trace_payload(self, shard_id: int, payload: dict) -> dict:
        """Stamp a payload for tracing (copy-on-write: payload dicts are
        shared across shards, so the stamp must not leak between tasks)."""
        if not self.obs.tracer.enabled:
            return payload
        payload = dict(payload)
        payload["shard_id"] = shard_id
        payload["trace"] = True
        return payload

    def _finish(self, results: List[dict]) -> List[dict]:
        """Count the completed tasks and re-attach their shipped spans."""
        self.obs.metrics.inc("shard_tasks", len(results))
        tracer = self.obs.tracer
        if tracer.enabled:
            parent = tracer.current
            if parent is not None:
                for result in results:
                    record = result.get("span") if isinstance(result, dict) else None
                    if record is not None:
                        parent.attach(Span.from_dict(record))
        return results

    def reset_resilience(self) -> None:
        """Start a fresh resilience record (the engine calls this per query)."""
        self.resilience_stats = None

    def _merge_resilience(self) -> None:
        """Fold the executor's last-run record into the accumulated one.

        Sits right after ``executor.run()`` (not in :meth:`_finish`) because
        the top-k inline path finishes results that never went through the
        executor -- merging there would re-count a stale record.
        """
        record = self._executor.last_resilience
        if record is None:
            return
        if self.resilience_stats is None:
            self.resilience_stats = ResilienceStats()
        self.resilience_stats.merge(record)

    def _run_all(self, op: str, payloads: Sequence[dict]) -> List[dict]:
        tasks = [
            (shard_id, op, self._trace_payload(shard_id, payload))
            for shard_id, payload in enumerate(payloads)
        ]
        results = self._executor.run(tasks)
        self._merge_resilience()
        return self._finish(results)

    def _run_on(self, shard_ids: Sequence[int], op: str, payload: dict) -> List[dict]:
        tasks = [
            (shard_id, op, self._trace_payload(shard_id, payload))
            for shard_id in shard_ids
        ]
        results = self._executor.run(tasks)
        self._merge_resilience()
        return self._finish(results)

    def _record_shards(self, shards_run: int, shards_skipped: int = 0) -> None:
        self.shard_stats = ShardStats(
            num_shards=len(self._shards),
            executor=self._executor.name,
            shard_sizes=tuple(
                self._offsets[i + 1] - self._offsets[i]
                for i in range(len(self._shards))
            ),
            shards_run=shards_run,
            shards_skipped=shards_skipped,
        )

    def _global_candidates(self, probe_tokens: Set[str]) -> Set[int]:
        """Union of the shard indexes' candidates for the probe tokens
        (global ids) -- identical to the unsharded index's candidate set."""
        candidates: Set[int] = set()
        for shard_id, shard in enumerate(self._shards):
            index = getattr(shard, "_index", None)
            if index is None:  # pragma: no cover - defensive
                continue
            offset = self._offsets[shard_id]
            for token in probe_tokens:
                for tid, _ in index.postings(token):
                    candidates.add(tid + offset)
        return candidates

    def _blocked_allowed(self, query: str) -> Optional[Set[int]]:
        """Global allowed set for pre-scoring families under blocking.

        Reproduces ``InvertedIndex.candidates(tokens, blocker)`` against the
        union of the shard indexes: probe tokens from the blocker, candidate
        union over shards, then one global prune -- all on global ids, i.e.
        strictly *pre-partition*.
        """
        blocker = self._blocker
        query_tokens = self._blocker_query_tokens(query, blocker)
        probe = blocker.probe_tokens(query_tokens)
        candidates = self._global_candidates(probe)
        allowed = blocker.prune(query_tokens, candidates)
        if self._restriction is not None:
            allowed = allowed & self._restriction
        return allowed

    def _restricted_payloads(
        self, base: dict, allowed: Optional[Set[int]]
    ) -> List[dict]:
        payloads = []
        for shard_id in range(len(self._shards)):
            payload = dict(base)
            payload["allowed"] = (
                None if allowed is None else self._local_allowed(allowed, shard_id)
            )
            payloads.append(payload)
        return payloads

    # -- query time -------------------------------------------------------------

    def rank(self, query: str, limit: Optional[int] = None) -> List[Match]:
        """Merged ranking, bit-identical to the unsharded predicate's."""
        self._require_fitted()
        self.pruning_stats = None
        merged = self._filtered_rank(query, limit)
        return merged if limit is None else merged[:limit]

    def _filtered_rank(self, query: str, limit: Optional[int]) -> List[Match]:
        """Merged, blocker/restriction-honoring ranking (before any limit cut)."""
        blocker, restriction = self._blocker, self._restriction
        shard_ids = list(range(len(self._shards)))
        if blocker is not None and self._prunes_before_scoring:
            # Pre-scoring families: one global blocking decision, narrowed
            # into per-shard restrictions -- each shard only scores tuples
            # the (globally fitted) blocker admits.
            allowed = self._blocked_allowed(query)
            results = self._run_all(
                "rank",
                self._restricted_payloads({"query": query, "limit": limit}, allowed),
            )
            merged = self._merge_rows([r["rows"] for r in results], shard_ids)
            self.last_num_candidates = sum(r["candidates"] or 0 for r in results)
            self._record_shards(len(self._shards))
            return merged
        # Post-scoring families (or no blocker): shards score their full
        # candidate sets (under any active restriction); the blocker then
        # prunes the merged rows, exactly like the unsharded post-scoring
        # path.  A limit can only be pushed into the shards when no blocker
        # filters rows afterwards.
        allowed = None if restriction is None else set(restriction)
        results = self._run_all(
            "rank",
            self._restricted_payloads(
                {"query": query, "limit": None if blocker is not None else limit},
                allowed,
            ),
        )
        merged = self._merge_rows([r["rows"] for r in results], shard_ids)
        if blocker is not None:
            query_tokens = self._blocker_query_tokens(query, blocker)
            pruned = blocker.prune(query_tokens, {m.tid for m in merged})
            merged = [m for m in merged if m.tid in pruned]
            self.last_num_candidates = len(merged)
        else:
            self.last_num_candidates = sum(r["candidates"] or 0 for r in results)
        self._record_shards(len(self._shards))
        return merged

    def select(self, query: str, threshold: float) -> List[Match]:
        """Merged approximate selection (thresholded per shard where possible)."""
        self._require_fitted()
        self._check_blocker_threshold(threshold)
        self.pruning_stats = None
        blocker, restriction = self._blocker, self._restriction
        shard_ids = list(range(len(self._shards)))
        if blocker is not None and not self._prunes_before_scoring:
            # Post-scoring families: prune the merged *unthresholded* scores
            # first (as the unsharded path does), then threshold.
            merged = self._filtered_rank(query, limit=None)
            return [m for m in merged if m.score >= threshold]
        allowed: Optional[Set[int]] = None
        if blocker is not None:
            allowed = self._blocked_allowed(query)
        elif restriction is not None:
            allowed = set(restriction)
        results = self._run_all(
            "select",
            self._restricted_payloads({"query": query, "threshold": threshold}, allowed),
        )
        merged = self._merge_rows([r["rows"] for r in results], shard_ids)
        self.last_num_candidates = sum(r["candidates"] or 0 for r in results)
        self._record_shards(len(self._shards))
        return merged

    def score(self, query: str, tid: int) -> float:
        """Similarity of one tuple, routed to its owning shard.

        Blocker/restriction semantics mirror the unsharded
        :meth:`Predicate.score` exactly: pre-scoring families (overlap,
        edit) see only candidates their blocked ``_scores`` would produce,
        while post-scoring families score through their raw ``_scores``
        dict -- which ignores blockers and restrictions -- so sharded and
        unsharded answers stay bit-identical either way.
        """
        self._require_fitted()
        if not 0 <= tid < len(self._strings):
            return 0.0
        shard_id, local_tid = self._shard_of(tid)
        if not self._prunes_before_scoring:
            return self._shards[shard_id].score(query, local_tid)
        if self._restriction is not None and tid not in self._restriction:
            return 0.0
        blocker = self._blocker
        if blocker is not None:
            query_tokens = self._blocker_query_tokens(query, blocker)
            probe = blocker.probe_tokens(query_tokens)
            shard = self._shards[shard_id]
            index = getattr(shard, "_index", None)
            if index is not None:
                term_frequencies = index.term_frequencies(local_tid)
                if not any(token in term_frequencies for token in probe):
                    return 0.0
            if tid not in blocker.prune(query_tokens, {tid}):
                return 0.0
        return self._shards[shard_id].score(query, local_tid)

    def top_k(self, query: str, k: int) -> List[Match]:
        """The global top ``k``: exact heap merge of per-shard top-k results.

        For monotone-sum predicates, per-shard upper bounds (sum of positive
        per-term maxima, the same bounds max-score pruning uses inside a
        shard) short-circuit shards that provably cannot reach the global
        ``k``-th score.  Aggregated per-shard :class:`PruningStats` land in
        :attr:`pruning_stats`; shard-level counters in :attr:`shard_stats`.
        """
        self._require_fitted()
        if k < 0:
            raise ValueError("k must be non-negative")
        self.pruning_stats = None
        if k == 0:
            self._record_shards(0, 0)
            self.last_num_candidates = 0
            return []
        if self._blocker is not None or self._restriction is not None:
            # Blocked top-k equals blocked rank cut to k (the same fallback
            # the unsharded aggregate family takes): the merge layer applies
            # the global blocking decision before the cut.
            return self._filtered_rank(query, limit=k)[:k]

        plans = [shard._maxscore_plan(query) for shard in self._shards]
        if any(plan is None for plan in plans):
            # Not a monotone-sum predicate: run every shard's heap-based
            # top_k and merge.
            results = self._run_all(
                "top_k", [{"query": query, "k": k}] * len(self._shards)
            )
            merged = self._merge_rows(
                [r["rows"] for r in results], list(range(len(self._shards)))
            )
            self.last_num_candidates = sum(r["candidates"] or 0 for r in results)
            self._record_shards(len(self._shards))
            return merged[:k]

        bounds = [
            sum(max(0.0, term.upper_bound) for term in plan[0]) for plan in plans
        ]
        order = sorted(range(len(self._shards)), key=lambda i: (-bounds[i], i))
        pruning = PruningStats()
        collected: Dict[int, List[Tuple[int, float]]] = {}

        def absorb(shard_id: int, result: dict) -> None:
            collected[shard_id] = result["rows"]
            if result["pruning"] is not None:
                _accumulate_pruning(pruning, result["pruning"])

        def kth_score() -> Optional[float]:
            scores = sorted(
                (score for rows in collected.values() for _, score in rows),
                reverse=True,
            )
            return scores[k - 1] if len(scores) >= k else None

        def skippable(shard_id: int, kth: Optional[float]) -> bool:
            if kth is None:
                return False
            bound = bounds[shard_id]
            margin = _BOUND_MARGIN * (abs(kth) + bound)
            return bound < kth - margin

        payload = {"query": query, "k": k}

        def run_inline(shard_id: int) -> dict:
            # In-process execution reuses the plan already built for the
            # bounds above; shard.top_k would rebuild the identical plan.
            # Worker processes/threads rebuild theirs instead (plans hold
            # references into the shard's posting lists -- recomputing is
            # cheaper than shipping them).  Still a shard-task boundary:
            # the ambient deadline is checked exactly as the executors do.
            check_deadline()
            tracing = self.obs.tracer.enabled
            started = perf_clock() if tracing else 0.0
            terms, allowed, rescore = plans[shard_id]
            top, stats = maxscore_top_k(k, terms, rescore, allowed=allowed)
            result = {"rows": top, "candidates": stats.candidates_scored,
                      "pruning": stats}
            if tracing:
                result["span"] = _shard_span_record(
                    shard_id, "top_k", started, perf_clock(), result
                )
            return self._finish([result])[0]

        skipped: List[int] = []
        if self._executor.parallel:
            # Establish the floor with the highest-bound shard, skip shards
            # the floor already rules out, then run the rest concurrently.
            first = order[0]
            absorb(first, self._run_on([first], "top_k", payload)[0])
            kth = kth_score()
            survivors = [
                shard_id for shard_id in order[1:] if not skippable(shard_id, kth)
            ]
            skipped = [
                shard_id for shard_id in order[1:] if skippable(shard_id, kth)
            ]
            for shard_id, result in zip(
                survivors, self._run_on(survivors, "top_k", payload)
            ):
                absorb(shard_id, result)
        else:
            # Serial executor: re-evaluate the floor after every shard, so a
            # rising k-th score keeps skipping later (lower-bound) shards.
            for shard_id in order:
                if skippable(shard_id, kth_score()):
                    skipped.append(shard_id)
                    continue
                absorb(shard_id, run_inline(shard_id))

        # Skipped shards never opened a posting list: account their whole
        # posting volume as skipped, exactly like unopened terms within a
        # shard.  `live` mirrors maxscore_top_k's term filter.  Each skipped
        # shard also contributes a zero-duration span carrying the posting
        # volume it avoided, so span-level counters aggregate to the same
        # totals as :attr:`pruning_stats`.
        tracing = self.obs.tracer.enabled
        parent = self.obs.tracer.current if tracing else None
        for shard_id in skipped:
            live = [
                term
                for term in plans[shard_id][0]
                if term.query_weight != 0.0 and term.postings
            ]
            pruning.tokens_total += len(live)
            postings = sum(len(term.postings) for term in live)
            pruning.postings_total += postings
            pruning.postings_skipped += postings
            pruning.pruned = True
            if parent is not None:
                parent.attach(
                    Span(
                        f"shard[{shard_id}].skipped",
                        attributes={
                            "shard_id": shard_id,
                            "op": "top_k",
                            "skipped": True,
                            "tokens_total": len(live),
                            "postings_total": postings,
                            "postings_skipped": postings,
                        },
                    )
                )

        merged = self._merge_rows(
            [collected[shard_id] for shard_id in sorted(collected)],
            sorted(collected),
        )
        self.pruning_stats = pruning
        self.last_num_candidates = pruning.candidates_scored
        self._record_shards(len(collected), len(skipped))
        return merged[:k]

    def run_many(
        self,
        queries: Sequence[str],
        op: str = "rank",
        k: Optional[int] = None,
        threshold: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[List[Match]]:
        """Execute a query workload: one task per shard for the whole batch.

        Semantics match calling the corresponding single-query method per
        query; scheduling differs -- each shard receives the entire workload
        as a single task, so a process-pool executor pays one round trip per
        shard instead of one per (query, shard) pair.  Per-query candidate
        counts land in :attr:`last_batch_candidates` and
        :attr:`last_num_candidates` is reset to ``None`` (no single query's
        count would describe the batch).
        """
        queries = list(queries)
        if op == "top_k":
            if k is None or k < 0:
                raise ValueError("op='top_k' requires a non-negative k")
        elif op == "select":
            if threshold is None:
                raise ValueError("op='select' requires a threshold")
            self._check_blocker_threshold(threshold)
        elif op != "rank":
            raise ValueError(
                f"unknown batch op {op!r}; expected 'rank', 'top_k' or 'select'"
            )
        self._require_fitted()
        if not queries:
            self.last_batch_candidates = []
            self.last_num_candidates = None
            return []
        if self._blocker is not None or self._restriction is not None:
            # Blocked batches take the per-query merge paths (the global
            # blocking decision is per query); candidate counts are still
            # recorded per query.
            results: List[List[Match]] = []
            counts: List[Optional[int]] = []
            for query in queries:
                if op == "top_k":
                    results.append(self.top_k(query, k))
                elif op == "select":
                    results.append(self.select(query, threshold))
                else:
                    results.append(self.rank(query, limit=limit))
                counts.append(self.last_num_candidates)
            self.last_batch_candidates = counts
            self.last_num_candidates = None
            return results

        payload = {
            "queries": queries,
            "op": op,
            "k": k,
            "threshold": threshold,
            "limit": k if op == "top_k" else limit,
        }
        shard_results = self._run_all("run_many", [payload] * len(self._shards))
        pruning: Optional[PruningStats] = None
        merged_batches: List[List[Match]] = []
        counts = []
        cut = k if op == "top_k" else limit
        for query_index in range(len(queries)):
            per_shard = [
                result["rows_per_query"][query_index] for result in shard_results
            ]
            merged = self._merge_rows(per_shard, list(range(len(self._shards))))
            if cut is not None and op != "select":
                merged = merged[:cut]
            merged_batches.append(merged)
            query_counts = [
                result["candidates_per_query"][query_index]
                for result in shard_results
            ]
            counts.append(
                sum(count or 0 for count in query_counts)
                if any(count is not None for count in query_counts)
                else None
            )
        for result in shard_results:
            if result["pruning"] is not None:
                if pruning is None:
                    pruning = PruningStats()
                _accumulate_pruning(pruning, result["pruning"])
        self.pruning_stats = pruning
        self.last_batch_candidates = counts
        self.last_num_candidates = None
        self._record_shards(len(self._shards))
        return merged_batches

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "fitted" if self._fitted else "unfitted"
        return (
            f"ShardedPredicate({self.name}, shards={self.num_shards}, "
            f"executor={self._executor.name!r}, {status}, n={len(self._strings)})"
        )
