"""Global collection statistics injected into shard-local fits.

Exactness of sharded execution rests on one observation: every weighting
scheme in the paper factors into a *per-tuple* part (term frequencies, tuple
length) and a *collection-level* part (``N``, ``df``, ``cf``, ``avgdl``,
``p̂_avg``).  :class:`ShardStatisticsView` computes the per-tuple part from
the shard's own token lists -- so tuple ids stay shard-local -- while
answering every collection-level question from a
:class:`~repro.text.weights.CollectionStatistics` computed once over the
*whole* relation.  A predicate fitted on a shard through this view therefore
assigns each tuple exactly the weights an unsharded fit would, bit for bit.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence

from repro.text.weights import CollectionStatistics

__all__ = ["ShardStatisticsView", "InjectedStatsFactory"]


class ShardStatisticsView(CollectionStatistics):
    """Shard-local per-tuple statistics over global collection-level ones.

    The collection-level fields are *shared* with the global statistics
    object (same dict instances), so derived tables (idf, RS weights,
    ``p̂_avg``) iterate the same vocabulary in the same order as the
    unsharded computation -- summations stay float-identical, not just
    mathematically equal.
    """

    def __init__(
        self,
        token_lists: Sequence[Sequence[str]],
        global_stats: CollectionStatistics,
    ):
        # Deliberately no ``super().__init__()``: the base constructor would
        # aggregate shard-local df/cf/averages only for them to be replaced
        # by the global answers below.  Only the per-tuple fields are built
        # here (_token_lists, _term_frequencies, _lengths stay local).
        self._token_lists: List[List[str]] = [list(tokens) for tokens in token_lists]
        self._term_frequencies: List[Counter] = [
            Counter(tokens) for tokens in self._token_lists
        ]
        self._lengths: List[int] = [len(tokens) for tokens in self._token_lists]
        self._pavg_table = None
        self._global = global_stats
        # Collection-level answers come from the global pass (shared dict
        # instances, so derived tables iterate in the global order).
        self._num_tuples = global_stats.num_tuples
        self._document_frequency = global_stats._document_frequency
        self._collection_frequency = global_stats._collection_frequency
        self._collection_size = global_stats.collection_size
        self._average_length = global_stats.average_length

    @property
    def num_local_tuples(self) -> int:
        """Number of tuples in this shard (``num_tuples`` is the global N)."""
        return len(self._token_lists)

    def pavg_table(self) -> Dict[str, float]:
        """Global ``p̂_avg`` table (shared with -- and cached on -- the
        global statistics object)."""
        return self._global.pavg_table()


class InjectedStatsFactory:
    """Picklable ``token_lists -> ShardStatisticsView`` factory.

    Assigned to a shard predicate's ``_stats_factory`` before fitting; kept a
    class (rather than a closure) so shard predicates survive pickling when a
    process-pool executor has to ship them to spawned workers.
    """

    def __init__(self, global_stats: CollectionStatistics):
        self.global_stats = global_stats

    def __call__(
        self, token_lists: Sequence[Sequence[str]]
    ) -> ShardStatisticsView:
        return ShardStatisticsView(token_lists, self.global_stats)
