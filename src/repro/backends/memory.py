"""Backend adapter for the from-scratch in-memory engine."""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.backends.base import SQLBackend
from repro.dbengine import Database
from repro.dbengine.executor import ResultSet
from repro.dbengine.table import Column

__all__ = ["MemoryBackend"]


class MemoryBackend(SQLBackend):
    """Runs declarative predicates on :class:`repro.dbengine.Database`."""

    name = "memory"

    def __init__(self) -> None:
        self.database = Database()
        super().__init__()

    def execute(self, sql: str, params: Optional[Sequence[object]] = None) -> object:
        result = self.database.execute(sql, params=params)
        if isinstance(result, ResultSet):
            return result.rows
        return result

    def query(self, sql: str, params: Optional[Sequence[object]] = None) -> List[Tuple]:
        return list(self.database.query(sql, params=params).rows)

    def create_table(
        self, name: str, columns: Sequence[str], if_not_exists: bool = False
    ) -> None:
        parsed = []
        for column in columns:
            parts = column.split(None, 1)
            parsed.append(Column(parts[0], parts[1] if len(parts) > 1 else "TEXT"))
        self.database.create_table(name, parsed, if_not_exists=if_not_exists)

    def insert_rows(self, name: str, rows: Iterable[Sequence[object]]) -> int:
        return self.database.insert_rows(name, rows)

    def drop_table(self, name: str, if_exists: bool = True) -> None:
        self.database.drop_table(name, if_exists=if_exists)

    def has_table(self, name: str) -> bool:
        return self.database.has_table(name)

    def register_function(self, name: str, num_args: int, func: Callable) -> None:
        self.database.register_function(name, func)
