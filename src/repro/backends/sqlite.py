"""Backend adapter for the Python standard-library ``sqlite3`` module.

SQLite stands in for the MySQL 5.0 server of the original study.  The same
UDFs as the memory backend are registered, plus natural-log ``LOG``, ``EXP``,
``POWER`` and ``SQRT`` so that weight formulas evaluate identically on both
backends (SQLite's optional built-in ``LOG`` is base-10, and older builds may
lack the math functions entirely).

Preprocessing-speed choices: token/weight tables are bulk-loaded with chunked
``executemany`` under one transaction per call, temporary b-trees live in
memory (``temp_store = MEMORY``) and :meth:`create_index` issues real
``CREATE INDEX`` statements so the per-query token joins are index lookups
instead of per-statement automatic indexes.
"""

from __future__ import annotations

import math
import sqlite3
from itertools import islice
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.backends.base import SQLBackend

__all__ = ["SQLiteBackend"]

#: Rows handed to one ``executemany`` call while bulk-loading.  Chunking keeps
#: peak memory flat for large token tables without measurably slowing small
#: loads.
_INSERT_CHUNK = 50_000


class SQLiteBackend(SQLBackend):
    """Runs declarative predicates on an (in-memory by default) SQLite database."""

    name = "sqlite"
    supports_window_functions = sqlite3.sqlite_version_info >= (3, 25, 0)

    def __init__(self, path: str = ":memory:") -> None:
        # The engine serializes all statements on a shared backend under its
        # own lock (see SimilarityEngine._lock), and the serving layer runs
        # engine calls on worker-pool threads -- so the connection must be
        # usable from threads other than the one that created it.
        self.connection = sqlite3.connect(path, check_same_thread=False)
        self.connection.execute("PRAGMA journal_mode = MEMORY")
        self.connection.execute("PRAGMA synchronous = OFF")
        self.connection.execute("PRAGMA temp_store = MEMORY")
        self._register_math_functions()
        super().__init__()

    # -- SQLBackend interface ----------------------------------------------------

    def execute(self, sql: str, params: Optional[Sequence[object]] = None) -> object:
        cursor = self.connection.execute(sql, tuple(params) if params else ())
        self.connection.commit()
        return cursor.rowcount

    def query(self, sql: str, params: Optional[Sequence[object]] = None) -> List[Tuple]:
        cursor = self.connection.execute(sql, tuple(params) if params else ())
        return [tuple(row) for row in cursor.fetchall()]

    def create_table(
        self, name: str, columns: Sequence[str], if_not_exists: bool = False
    ) -> None:
        clause = "IF NOT EXISTS " if if_not_exists else ""
        column_sql = ", ".join(columns)
        self.execute(f"CREATE TABLE {clause}{name} ({column_sql})")

    def insert_rows(self, name: str, rows: Iterable[Sequence[object]]) -> int:
        iterator = iter(rows)
        first = next(iterator, None)
        if first is None:
            return 0
        first = tuple(first)
        placeholders = ", ".join("?" for _ in first)
        statement = f"INSERT INTO {name} VALUES ({placeholders})"
        cursor = self.connection.cursor()
        cursor.execute(statement, first)
        count = 1
        while True:
            chunk = [tuple(row) for row in islice(iterator, _INSERT_CHUNK)]
            if not chunk:
                break
            cursor.executemany(statement, chunk)
            count += len(chunk)
        self.connection.commit()
        return count

    def drop_table(self, name: str, if_exists: bool = True) -> None:
        clause = "IF EXISTS " if if_exists else ""
        self.execute(f"DROP TABLE {clause}{name}")

    def has_table(self, name: str) -> bool:
        rows = self.query(
            "SELECT COUNT(*) FROM sqlite_master "
            "WHERE type = 'table' AND LOWER(name) = ?",
            [name.lower()],
        )
        return rows[0][0] > 0

    def register_function(self, name: str, num_args: int, func: Callable) -> None:
        self.connection.create_function(name, num_args, func)

    def create_index(self, name: str, table: str, columns: Sequence[str]) -> None:
        column_sql = ", ".join(columns)
        self.execute(f"CREATE INDEX IF NOT EXISTS {name} ON {table} ({column_sql})")

    # -- helpers -----------------------------------------------------------------

    def _register_math_functions(self) -> None:
        self.connection.create_function("LOG", 1, lambda x: math.log(x) if x and x > 0 else None)
        self.connection.create_function("EXP", 1, lambda x: math.exp(x) if x is not None else None)
        self.connection.create_function(
            "POWER", 2, lambda x, y: math.pow(x, y) if x is not None and y is not None else None
        )
        self.connection.create_function(
            "SQRT", 1, lambda x: math.sqrt(x) if x is not None and x >= 0 else None
        )

    def close(self) -> None:
        self.connection.close()
