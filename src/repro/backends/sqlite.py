"""Backend adapter for the Python standard-library ``sqlite3`` module.

SQLite stands in for the MySQL 5.0 server of the original study.  The same
UDFs as the memory backend are registered, plus natural-log ``LOG``, ``EXP``,
``POWER`` and ``SQRT`` so that weight formulas evaluate identically on both
backends (SQLite's optional built-in ``LOG`` is base-10, and older builds may
lack the math functions entirely).
"""

from __future__ import annotations

import math
import sqlite3
from typing import Callable, Iterable, List, Sequence, Tuple

from repro.backends.base import SQLBackend

__all__ = ["SQLiteBackend"]


class SQLiteBackend(SQLBackend):
    """Runs declarative predicates on an (in-memory by default) SQLite database."""

    name = "sqlite"

    def __init__(self, path: str = ":memory:") -> None:
        self.connection = sqlite3.connect(path)
        self.connection.execute("PRAGMA journal_mode = MEMORY")
        self.connection.execute("PRAGMA synchronous = OFF")
        self._register_math_functions()
        super().__init__()

    # -- SQLBackend interface ----------------------------------------------------

    def execute(self, sql: str) -> object:
        cursor = self.connection.execute(sql)
        self.connection.commit()
        return cursor.rowcount

    def query(self, sql: str) -> List[Tuple]:
        cursor = self.connection.execute(sql)
        return [tuple(row) for row in cursor.fetchall()]

    def create_table(
        self, name: str, columns: Sequence[str], if_not_exists: bool = False
    ) -> None:
        clause = "IF NOT EXISTS " if if_not_exists else ""
        column_sql = ", ".join(columns)
        self.execute(f"CREATE TABLE {clause}{name} ({column_sql})")

    def insert_rows(self, name: str, rows: Iterable[Sequence[object]]) -> int:
        rows = [tuple(row) for row in rows]
        if not rows:
            return 0
        placeholders = ", ".join("?" for _ in rows[0])
        self.connection.executemany(
            f"INSERT INTO {name} VALUES ({placeholders})", rows
        )
        self.connection.commit()
        return len(rows)

    def drop_table(self, name: str, if_exists: bool = True) -> None:
        clause = "IF EXISTS " if if_exists else ""
        self.execute(f"DROP TABLE {clause}{name}")

    def has_table(self, name: str) -> bool:
        rows = self.query(
            "SELECT COUNT(*) FROM sqlite_master "
            f"WHERE type = 'table' AND LOWER(name) = '{name.lower()}'"
        )
        return rows[0][0] > 0

    def register_function(self, name: str, num_args: int, func: Callable) -> None:
        self.connection.create_function(name, num_args, func)

    # -- helpers -----------------------------------------------------------------

    def _register_math_functions(self) -> None:
        self.connection.create_function("LOG", 1, lambda x: math.log(x) if x and x > 0 else None)
        self.connection.create_function("EXP", 1, lambda x: math.exp(x) if x is not None else None)
        self.connection.create_function(
            "POWER", 2, lambda x, y: math.pow(x, y) if x is not None and y is not None else None
        )
        self.connection.create_function(
            "SQRT", 1, lambda x: math.sqrt(x) if x is not None and x >= 0 else None
        )

    def close(self) -> None:
        self.connection.close()
