"""SQL backends for the declarative framework.

The declarative predicate realizations (Appendix A/B of the paper) are plain
SQL, so they can run on any engine that provides the small set of features
they use.  Two backends are provided:

* :class:`MemoryBackend` -- the from-scratch engine in :mod:`repro.dbengine`.
* :class:`SQLiteBackend` -- the Python standard library ``sqlite3`` module
  (in-memory by default), standing in for the MySQL server of the original
  study.

Both expose the same :class:`SQLBackend` interface and register the same
user-defined functions (``JAROWINKLER``, ``EDITSIM`` and the math functions
SQLite may lack), so a declarative predicate produces identical rankings on
either backend -- which the integration tests verify.
"""

from repro.backends.base import SQLBackend
from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SQLiteBackend

__all__ = ["SQLBackend", "MemoryBackend", "SQLiteBackend"]
