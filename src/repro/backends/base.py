"""Common interface of the SQL backends used by the declarative framework."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.text.strings import edit_similarity, jaro_winkler

__all__ = ["SQLBackend"]


class SQLBackend(ABC):
    """A minimal SQL execution surface shared by the memory and SQLite backends.

    The interface is intentionally tiny: the declarative predicates only need
    to create tables, bulk-load token/weight rows, run SQL (including
    ``INSERT ... SELECT``) and fetch query results.  UDF registration is used
    for the character-level similarity functions that SQL cannot express
    (Jaro-Winkler for SoftTFIDF, edit similarity for the edit-based
    predicate), exactly as the original study registered UDFs in MySQL.

    Statements accept positional ``?`` parameters (``params``), so query
    strings never have to be interpolated into SQL text; both backends bind
    them natively (SQLite's DB-API binding, the in-memory engine's
    token-level binding).
    """

    name: str = "backend"

    def __init__(self) -> None:
        self._register_default_udfs()

    # -- required primitives ----------------------------------------------------

    @abstractmethod
    def execute(self, sql: str, params: Optional[Sequence[object]] = None) -> object:
        """Execute one SQL statement; DML returns an affected-row count."""

    @abstractmethod
    def query(self, sql: str, params: Optional[Sequence[object]] = None) -> List[Tuple]:
        """Execute a SELECT and return all rows."""

    @abstractmethod
    def create_table(self, name: str, columns: Sequence[str], if_not_exists: bool = False) -> None:
        """Create a table whose columns are given as ``"name TYPE"`` strings."""

    @abstractmethod
    def insert_rows(self, name: str, rows: Iterable[Sequence[object]]) -> int:
        """Bulk-insert rows (the fast path used to load token tables)."""

    @abstractmethod
    def drop_table(self, name: str, if_exists: bool = True) -> None:
        """Drop a table."""

    @abstractmethod
    def has_table(self, name: str) -> bool:
        """Whether a table exists."""

    @abstractmethod
    def register_function(self, name: str, num_args: int, func: Callable) -> None:
        """Register a scalar UDF callable from SQL."""

    # -- optional primitives -----------------------------------------------------

    #: Whether the backend can evaluate window functions (``ROW_NUMBER() OVER
    #: (PARTITION BY ...)``); the batched top-k path uses them to cut each
    #: query's ranking to ``k`` rows inside the statement.
    supports_window_functions: bool = False

    def create_index(self, name: str, table: str, columns: Sequence[str]) -> None:
        """Create an index over ``table(columns)`` where the backend supports it.

        The default is a no-op: the in-memory engine answers equi-joins with
        hash joins and has no use for persistent indexes.  SQLite overrides
        this with a real ``CREATE INDEX``.
        """

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Release any resources the backend holds (connections, handles).

        The in-memory engine holds nothing and inherits this no-op; SQLite
        overrides it to close its connection.  Backends are context managers
        (``with SQLiteBackend() as backend: ...``) built on this method, and
        the engine closes the backends *it* created when its cache is
        cleared.
        """

    def __enter__(self) -> "SQLBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- conveniences ------------------------------------------------------------

    def recreate_table(self, name: str, columns: Sequence[str]) -> None:
        """Drop (if present) and re-create a table."""
        self.drop_table(name, if_exists=True)
        self.create_table(name, columns)

    def row_count(self, name: str) -> int:
        return int(self.query(f"SELECT COUNT(*) FROM {name}")[0][0])

    def _register_default_udfs(self) -> None:
        self.register_function("JAROWINKLER", 2, lambda a, b: jaro_winkler(str(a), str(b)))
        self.register_function("EDITSIM", 2, lambda a, b: edit_similarity(str(a), str(b)))
