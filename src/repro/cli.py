"""Command-line interface for the reproduction library.

Usage (after installation)::

    python -m repro.cli predicates
    python -m repro.cli generate --dataset CU1 --size 500 --output data.tsv
    python -m repro.cli query --base data.tsv --predicate bm25 --query "Morgn Stanley" --top 5
    python -m repro.cli query --base data.tsv --predicate bm25 --query "Morgn Stanley" \
        --realization declarative --backend sqlite --explain
    python -m repro.cli evaluate --dataset CU1 --size 500 --predicates bm25 jaccard --queries 50
    python -m repro.cli dedup --base data.tsv --predicate jaccard --threshold 0.6
    python -m repro.cli dedup --base data.tsv --threshold 0.6 --blocker length+prefix
    python -m repro.cli dedup --base data.tsv --threshold 0.6 --blocker lsh --lsh-bands 24

Every sub-command routes through :class:`repro.engine.SimilarityEngine`, so
the CLI doubles as executable documentation of the unified query API:
``--realization {direct,declarative}`` switches between the in-memory Python
predicates and their pure-SQL realizations, ``--backend {memory,sqlite}``
picks the SQL backend, and ``--blocker`` attaches candidate pruning.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.datagen import make_dataset
from repro.datagen.datasets import DATASET_CONFIGS
from repro.engine import SimilarityEngine, Query
from repro.engine import registry as engine_registry
from repro.eval import ExperimentRunner
from repro.eval.report import ResultSink

__all__ = ["build_parser", "main"]


def _add_engine_arguments(subparser: argparse.ArgumentParser) -> None:
    """Shared realization/backend flags (see :mod:`repro.engine`)."""
    subparser.add_argument(
        "--realization",
        default="direct",
        choices=sorted(engine_registry.REALIZATIONS),
        help="predicate realization: in-memory Python (direct) or pure SQL (declarative)",
    )
    subparser.add_argument(
        "--backend",
        default="memory",
        choices=sorted(engine_registry.BACKENDS),
        help="SQL backend for the declarative realization",
    )


def _add_blocker_arguments(subparser: argparse.ArgumentParser) -> None:
    """Shared candidate-blocking flags (see :mod:`repro.blocking`)."""
    subparser.add_argument(
        "--blocker",
        default="none",
        help=(
            "candidate blocker spec: none, length, prefix, lsh, or a "
            "'+'-separated pipeline such as length+prefix (length/prefix "
            "require a --threshold)"
        ),
    )
    subparser.add_argument(
        "--lsh-bands", type=int, default=16, help="number of MinHash-LSH bands"
    )
    subparser.add_argument(
        "--lsh-rows", type=int, default=4, help="signature rows per LSH band"
    )


def _engine_query(args: argparse.Namespace, strings: List[str]) -> Query:
    """Build the engine query all sub-commands share."""
    query = (
        SimilarityEngine()
        .from_strings(strings)
        .predicate(args.predicate)
        .realization(args.realization)
    )
    if args.realization == "declarative":
        query = query.backend(args.backend)
    if getattr(args, "blocker", "none") != "none":
        query = query.blocker(
            args.blocker, lsh_bands=args.lsh_bands, lsh_rows=args.lsh_rows
        )
    return query


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Benchmarking declarative approximate selection predicates",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "predicates",
        help="list the available similarity predicates (realizations and aliases)",
    )

    generate = subparsers.add_parser("generate", help="generate a benchmark dataset")
    generate.add_argument("--dataset", default="CU1", choices=sorted(DATASET_CONFIGS))
    generate.add_argument("--size", type=int, default=1000)
    generate.add_argument("--clean", type=int, default=None, help="number of clean tuples")
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--output", type=Path, default=None, help="write TSV to this path")

    query = subparsers.add_parser("query", help="run one approximate selection")
    query.add_argument("--base", type=Path, required=True, help="TSV file (tid<TAB>string or one string per line)")
    query.add_argument("--predicate", default="bm25")
    query.add_argument("--query", required=True)
    query.add_argument("--top", type=int, default=10)
    query.add_argument("--threshold", type=float, default=None)
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the engine's plan, emitted SQL and blocker statistics",
    )
    query.add_argument(
        "--trace",
        action="store_true",
        help="print the span tree of the executed query (engine -> shards -> SQL)",
    )
    query.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="METRICS_JSON",
        help="write the engine's metrics registry to this JSON file after the query",
    )
    _add_engine_arguments(query)
    _add_blocker_arguments(query)

    evaluate = subparsers.add_parser("evaluate", help="measure accuracy (MAP / max-F1)")
    evaluate.add_argument("--dataset", default="CU1", choices=sorted(DATASET_CONFIGS))
    evaluate.add_argument("--size", type=int, default=1000)
    evaluate.add_argument("--clean", type=int, default=None)
    evaluate.add_argument("--queries", type=int, default=50)
    evaluate.add_argument("--seed", type=int, default=42)
    evaluate.add_argument("--predicates", nargs="+", default=["bm25"])
    evaluate.add_argument("--output", type=Path, default=None, help="save the report (txt/md/csv)")
    _add_engine_arguments(evaluate)

    dedup = subparsers.add_parser("dedup", help="cluster duplicates in a relation")
    dedup.add_argument("--base", type=Path, required=True)
    dedup.add_argument("--predicate", default="jaccard")
    dedup.add_argument("--threshold", type=float, default=0.6)
    _add_engine_arguments(dedup)
    _add_blocker_arguments(dedup)

    serve = subparsers.add_parser(
        "serve",
        help="run the long-lived similarity server (see repro.serve)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8077, help="TCP port (0 picks a free one)"
    )
    serve.add_argument(
        "--base",
        type=Path,
        default=None,
        help="TSV file to pre-register as a corpus (its id is printed)",
    )
    serve.add_argument(
        "--max-concurrency",
        type=int,
        default=4,
        help="requests executing at once; more wait in the admission queue",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="requests allowed to wait; beyond this the server answers 429",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="default per-request deadline in seconds (queue wait + execution)",
    )
    serve.add_argument(
        "--batch-window",
        type=float,
        default=0.005,
        help="seconds the micro-batcher waits to coalesce compatible requests",
    )
    serve.add_argument(
        "--batch-max",
        type=int,
        default=16,
        help="batch size that flushes immediately without waiting the window",
    )
    serve.add_argument(
        "--max-corpora",
        type=int,
        default=8,
        help="registered corpora kept warm; least recently used are evicted",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        help="seconds a graceful drain waits before abandoning in-flight work",
    )
    serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        help="consecutive batch failures that trip a corpus circuit breaker",
    )
    serve.add_argument(
        "--breaker-reset",
        type=float,
        default=5.0,
        help="seconds an open breaker rejects (503) before probing again",
    )
    serve.add_argument(
        "--faults",
        default=None,
        help="fault-injection spec (same grammar as REPRO_FAULTS), e.g. "
        "'shard.task:p=0.02:seed=7'",
    )

    return parser


def _load_strings(path: Path) -> List[str]:
    strings: List[str] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        parts = line.split("\t")
        strings.append(parts[1] if len(parts) > 1 else parts[0])
    if not strings:
        raise SystemExit(f"no strings found in {path}")
    return strings


def _cmd_predicates(_: argparse.Namespace) -> int:
    for name in engine_registry.available_predicates():
        spec = engine_registry.spec_for(name)
        realizations = "+".join(spec.realizations)
        aliases = ", ".join(spec.aliases) if spec.aliases else "-"
        print(f"{name:18s} {spec.family:20s} {realizations:20s} aliases: {aliases}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    num_clean = args.clean if args.clean is not None else max(1, args.size // 10)
    dataset = make_dataset(args.dataset, size=args.size, num_clean=num_clean, seed=args.seed)
    lines = [f"{record.tid}\t{record.text}\t{record.cluster_id}" for record in dataset]
    output = "\n".join(lines)
    if args.output is not None:
        args.output.write_text(output + "\n", encoding="utf-8")
        print(
            f"wrote {len(dataset)} records ({dataset.num_clusters()} clusters) to {args.output}"
        )
    else:
        print(output)
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    strings = _load_strings(args.base)
    query = _engine_query(args, strings)
    try:
        if args.explain:
            # explain() executes the operation once and carries its matches,
            # so the explained run and the printed results are the same run.
            report = query.explain(
                args.query,
                threshold=args.threshold,
                k=None if args.threshold is not None else args.top,
            )
            print(report.describe())
            if args.trace and report.trace is not None:
                print()
                print(report.trace.describe())
            print()
            results = list(report.results or ())
        elif args.trace:
            traced = query.trace(
                args.query,
                threshold=args.threshold,
                k=None if args.threshold is not None else args.top,
            )
            print(traced.describe())
            print()
            results = list(traced.results)
        elif args.threshold is not None:
            results = query.select(args.query, args.threshold)
        else:
            results = query.top_k(args.query, k=args.top)
    except ValueError as error:
        raise SystemExit(f"error: {error}") from error
    for result in results:
        print(f"{result.score:10.4f}\t{result.tid}\t{result.string}")
    if args.metrics_out is not None:
        from repro.obs import metrics_to_json, write_json

        # The CLI process runs exactly one query against a fresh engine, so
        # the process-wide registry holds this invocation's counters only.
        write_json(args.metrics_out, metrics_to_json(query.engine.metrics))
        print(f"wrote metrics to {args.metrics_out}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    num_clean = args.clean if args.clean is not None else max(1, args.size // 10)
    dataset = make_dataset(args.dataset, size=args.size, num_clean=num_clean, seed=args.seed)
    runner = ExperimentRunner(dataset, args.dataset)
    sink = ResultSink(title=f"Accuracy on {args.dataset} ({args.size} tuples, {args.queries} queries)")
    for name in args.predicates:
        result = runner.evaluate(
            name,
            num_queries=args.queries,
            realization=args.realization,
            backend=args.backend,
        )
        sink.add(result.summary_row())
    print(sink.to_text())
    if args.output is not None:
        sink.save(args.output)
        print(f"\nsaved report to {args.output}")
    return 0


def _cmd_dedup(args: argparse.Namespace) -> int:
    strings = _load_strings(args.base)
    query = _engine_query(args, strings)
    try:
        clusters = query.dedup(args.threshold)
    except ValueError as error:
        raise SystemExit(f"error: {error}") from error
    for label, cluster in enumerate(clusters):
        if len(cluster) < 2:
            continue
        print(f"cluster {label} (representative: {cluster.representative})")
        for tid in cluster.members:
            print(f"    {tid}\t{strings[tid]}")
    singletons = sum(1 for cluster in clusters if len(cluster) == 1)
    print(f"\n{len(clusters)} clusters, {singletons} singletons")
    stats = query.last_self_join_stats
    if args.blocker != "none" and stats is not None:
        print(
            f"blocking[{args.blocker}]: {stats.pairs_examined} candidate pairs "
            f"examined over {stats.probes} probes "
            f"({stats.probes_skipped} probes skipped with no block partners)"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.resilience import parse_fault_spec
    from repro.serve import SimilarityService, run_server

    faults = parse_fault_spec(args.faults) if args.faults else None
    service = SimilarityService(
        max_concurrency=args.max_concurrency,
        max_queue=args.max_queue,
        default_timeout=args.timeout,
        batch_window=args.batch_window,
        batch_max=args.batch_max,
        max_corpora=args.max_corpora,
        faults=faults,
        breaker_threshold=args.breaker_threshold,
        breaker_reset=args.breaker_reset,
        drain_timeout=args.drain_timeout,
    )
    if args.base is not None:
        corpus_id, num_tuples, _ = service.register_corpus(_load_strings(args.base))
        print(f"registered corpus {corpus_id} ({num_tuples} tuples)", flush=True)

    def announce(host: str, port: int) -> None:
        # The drain test and the benchmark parse this line for the port.
        print(f"listening on {host}:{port}", flush=True)

    run_server(service, host=args.host, port=args.port, on_listening=announce)
    print("drained and stopped", flush=True)
    return 0


_COMMANDS = {
    "predicates": _cmd_predicates,
    "generate": _cmd_generate,
    "query": _cmd_query,
    "evaluate": _cmd_evaluate,
    "dedup": _cmd_dedup,
    "serve": _cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
