"""Unified similarity engine: one query API over every realization.

The engine is the library's front door (see :class:`SimilarityEngine`):

* one fluent :class:`Query` builder covering the four operations the paper
  studies -- thresholded selection, top-k / ranked retrieval, approximate
  join and deduplication;
* both realizations of every predicate (direct in-memory Python and
  declarative SQL), both SQL backends (bundled in-memory engine / SQLite)
  and the :mod:`repro.blocking` subsystem behind the same calls;
* a merged, alias-aware predicate registry
  (:mod:`repro.engine.registry`) that the legacy per-realization factories
  delegate to;
* batch execution (:meth:`Query.run_many`) amortizing fitted predicate and
  token-table state across a query workload, and :meth:`Query.explain`
  reporting the chosen plan, emitted SQL and blocker reduction statistics.
"""

from repro.core.predicates.base import Match
from repro.engine.plan import (
    ExplainReport,
    QueryPlan,
    RecordingBackend,
    RunManyStats,
    TraceResult,
)
from repro.engine.protocol import SimilarityPredicateProtocol
from repro.engine.query import Query, SimilarityEngine
from repro.engine.registry import (
    ALIASES,
    BACKENDS,
    REALIZATIONS,
    SPECS,
    PredicateSpec,
    aliases_for,
    available_predicates,
    available_realizations,
    canonical_name,
    make,
    make_backend,
    spec_for,
)

__all__ = [
    "SimilarityEngine",
    "Query",
    "Match",
    "QueryPlan",
    "ExplainReport",
    "RunManyStats",
    "RecordingBackend",
    "TraceResult",
    "SimilarityPredicateProtocol",
    "PredicateSpec",
    "SPECS",
    "ALIASES",
    "BACKENDS",
    "REALIZATIONS",
    "canonical_name",
    "spec_for",
    "aliases_for",
    "available_predicates",
    "available_realizations",
    "make",
    "make_backend",
]
