"""Query plans, explain reports, and SQL capture for the similarity engine.

:class:`QueryPlan` is the lazily-derived description of how a
:class:`repro.engine.query.Query` will execute (predicate, realization,
backend, blocker); :class:`ExplainReport` adds what actually happened when a
sample query ran -- the captured span tree, the emitted SQL (declarative
realization), blocker candidate-reduction statistics and timings.
:class:`RecordingBackend` is the transparent backend wrapper that emits a
``sql.statement`` span (and a ``sql_statements_total`` counter) for every
statement the declarative realization runs; with the default no-op tracer it
costs one method call per statement and stores nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.backends.base import SQLBackend
from repro.blocking.base import BlockingStats
from repro.core.predicates.base import Match
from repro.core.topk import PruningStats
from repro.declarative.base import SQLFastPathStats
from repro.obs.trace import Observability, Span
from repro.resilience import (
    NOOP_INJECTOR,
    FaultInjector,
    ResilienceStats,
    check_deadline,
)
from repro.shard.predicate import ShardStats

__all__ = [
    "QueryPlan",
    "ExplainReport",
    "RunManyStats",
    "RecordingBackend",
    "TraceResult",
    "sql_statements",
]


@dataclass(frozen=True)
class RunManyStats:
    """Per-query work counters of one :meth:`Query.run_many` batch.

    A batch has no single meaningful ``last_num_candidates`` -- the engine
    records the candidate count of *every* query of the batch instead
    (``None`` entries mean the executed path could not observe a count).
    """

    num_queries: int
    candidates_per_query: Tuple[Optional[int], ...]

    @property
    def total_candidates(self) -> int:
        return sum(count or 0 for count in self.candidates_per_query)

    def describe(self) -> str:
        observed = [c for c in self.candidates_per_query if c is not None]
        if not observed:
            return f"{self.num_queries} queries (candidate counts unobserved)"
        return (
            f"{self.num_queries} queries, {self.total_candidates} candidates "
            f"scored (min {min(observed)} / max {max(observed)} per query)"
        )

    def publish(self, metrics) -> None:
        """Accumulate into a :class:`~repro.obs.metrics.MetricsRegistry`."""
        metrics.inc("batch_queries_total", self.num_queries)
        metrics.inc("batch_candidates_total", self.total_candidates)


@dataclass(frozen=True)
class QueryPlan:
    """How the engine will execute one operation (before/without running it)."""

    operation: str
    predicate: str
    realization: str
    num_tuples: int
    backend: Optional[str] = None
    blocker: Optional[str] = None
    blocker_threshold: Optional[float] = None
    predicate_params: Tuple[Tuple[str, object], ...] = ()
    notes: Tuple[str, ...] = ()

    def describe(self) -> str:
        """Multi-line human-readable plan (the CLI's ``--explain`` output)."""
        lines = [
            f"operation:   {self.operation}",
            f"predicate:   {self.predicate}"
            + (
                " (" + ", ".join(f"{k}={v!r}" for k, v in self.predicate_params) + ")"
                if self.predicate_params
                else ""
            ),
            f"realization: {self.realization}",
            f"backend:     {self.backend if self.backend else '-'}",
            f"blocker:     {self.blocker if self.blocker else '-'}"
            + (
                f" (threshold={self.blocker_threshold})"
                if self.blocker_threshold is not None
                else ""
            ),
            f"base size:   {self.num_tuples} tuples",
        ]
        for note in self.notes:
            lines.append(f"note:        {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()


@dataclass
class ExplainReport:
    """A plan plus the measurements of one executed sample query."""

    plan: QueryPlan
    #: SQL statements emitted while answering the sample query (declarative
    #: realization only; the direct realization executes in-process).
    sql: Tuple[str, ...] = ()
    #: Blocker candidate-reduction counters for the sample query.
    blocker_stats: Optional[BlockingStats] = None
    #: Max-score pruning counters when the top-k fast path ran (direct
    #: realization, monotone-sum predicates); ``None`` otherwise.
    pruning: Optional[PruningStats] = None
    #: SQL-side work counters when the declarative realization ran (rows the
    #: statement returned vs. base size, and which fast paths it used).
    sql_stats: Optional[SQLFastPathStats] = None
    #: Shard-level counters when the query ran over a sharded predicate
    #: (shards executed vs. skipped by their max-score upper bound).
    shards: Optional[ShardStats] = None
    #: What the self-healing machinery did while the sample query ran --
    #: retries, pool rebuilds, serial fallbacks (sharded execution only;
    #: ``None`` when nothing ran through an executor).
    resilience: Optional[ResilienceStats] = None
    #: The strategy the sample query *actually* executed with -- as opposed
    #: to the plan's prediction.  ``plan()`` cannot know everything (e.g. a
    #: restriction attached at execution time), so the report states what
    #: really ran and, when that differs from the plan's announced fast
    #: path, why (:attr:`fallback_reason`).
    execution: Optional[str] = None
    fallback_reason: Optional[str] = None
    #: Candidates actually scored (after blocking) for the sample query.
    num_candidates: Optional[int] = None
    num_results: Optional[int] = None
    seconds: Optional[float] = None
    #: The sample query's matches (with strings), so callers that want both
    #: the explanation and the answer pay for one execution, not two.
    results: Optional[Tuple[Match, ...]] = None
    #: Span tree captured while the sample query ran: the report's numbers
    #: (``seconds``, ``sql``, per-shard counters) are read off this tree.
    trace: Optional[Span] = None

    def describe(self) -> str:
        lines = [self.plan.describe()]
        if self.execution is not None:
            lines.append(f"executed:    {self.execution}")
        if self.fallback_reason is not None:
            lines.append(f"fallback:    {self.fallback_reason}")
        if self.seconds is not None:
            lines.append(f"query time:  {self.seconds * 1000.0:.2f} ms")
        if self.num_candidates is not None:
            lines.append(f"candidates:  {self.num_candidates} scored")
        if self.pruning is not None:
            lines.append(f"pruning:     {self.pruning.describe()}")
        if self.shards is not None:
            lines.append(f"shards:      {self.shards.describe()}")
        if self.resilience is not None and self.resilience.events:
            lines.append(f"resilience:  {self.resilience.describe()}")
        if self.sql_stats is not None:
            lines.append(f"sql path:    {self.sql_stats.describe()}")
        if self.num_results is not None:
            lines.append(f"results:     {self.num_results}")
        if self.blocker_stats is not None:
            stats = self.blocker_stats
            lines.append(
                f"blocking:    {stats.candidates_in} -> {stats.candidates_out} "
                f"candidates ({stats.pruned} pruned, "
                f"reduction {stats.reduction_ratio:.1f}x)"
            )
        if self.sql:
            lines.append("emitted SQL:")
            for statement in self.sql:
                lines.append(f"  {statement}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()


@dataclass
class TraceResult:
    """What :meth:`Query.trace` returns: the answer plus its span tree."""

    results: object
    span: Span

    def describe(self) -> str:
        return self.span.describe()

    def __str__(self) -> str:
        return self.describe()


def sql_statements(root: Span) -> Tuple[str, ...]:
    """The rendered SQL of every ``sql.statement`` span under ``root``."""
    return tuple(
        str(span.attributes.get("sql", ""))
        for span in root.walk()
        if span.name == "sql.statement"
    )


class RecordingBackend(SQLBackend):
    """A transparent :class:`SQLBackend` proxy emitting ``sql.statement`` spans.

    Wraps the real backend the declarative realization runs on.  Every
    statement increments ``sql_statements_total`` in the metrics registry and
    -- when the shared :class:`~repro.obs.trace.Observability` holder carries
    a live tracer -- opens a ``sql.statement`` span carrying the rendered
    SQL, nested under whatever engine span is currently open.  With the
    default no-op tracer nothing is stored, so a long-lived engine never
    accumulates statement text.  Table loads that bypass SQL (bulk
    ``insert_rows``) are rendered as SQL comments so the full script is
    visible in a trace.

    The proxy is also where the declarative realization meets the resilience
    layer: each statement is a natural boundary, so the ambient request
    deadline is checked here (a timed-out declarative query stops between
    statements instead of finishing the script into the void) and the
    ``sql.statement`` fault point fires here under an active injector.
    """

    def __init__(
        self,
        inner: SQLBackend,
        obs: Optional[Observability] = None,
        faults: Optional[FaultInjector] = None,
    ):
        # Deliberately no ``super().__init__()``: the inner backend already
        # registered the default UDFs, and this proxy adds no state of its own.
        self.inner = inner
        self.name = inner.name
        self.supports_window_functions = getattr(
            inner, "supports_window_functions", False
        )
        self.obs = obs if obs is not None else Observability()
        self._faults = faults if faults is not None else NOOP_INJECTOR

    def _statement_boundary(self) -> None:
        check_deadline()
        if self._faults.active:
            self._faults.check("sql.statement")

    # -- SQLBackend interface ----------------------------------------------------

    def execute(self, sql: str, params: Optional[Sequence[object]] = None) -> object:
        self._statement_boundary()
        self.obs.metrics.inc("sql_statements_total")
        with self.obs.tracer.span("sql.statement", sql=self._render(sql, params)):
            return self.inner.execute(sql, params)

    def query(self, sql: str, params: Optional[Sequence[object]] = None) -> List[Tuple]:
        self._statement_boundary()
        self.obs.metrics.inc("sql_statements_total")
        with self.obs.tracer.span("sql.statement", sql=self._render(sql, params)):
            return self.inner.query(sql, params)

    @staticmethod
    def _render(sql: str, params: Optional[Sequence[object]]) -> str:
        """Annotate traced statements with their bound parameter values."""
        if not params:
            return sql
        return f"{sql} -- params: {tuple(params)!r}"

    def _statement_span(self, statement: str):
        self._statement_boundary()
        self.obs.metrics.inc("sql_statements_total")
        return self.obs.tracer.span("sql.statement", sql=statement)

    def create_table(
        self, name: str, columns: Sequence[str], if_not_exists: bool = False
    ) -> None:
        clause = "IF NOT EXISTS " if if_not_exists else ""
        with self._statement_span(f"CREATE TABLE {clause}{name} ({', '.join(columns)})"):
            self.inner.create_table(name, columns, if_not_exists=if_not_exists)

    def insert_rows(self, name: str, rows: Iterable[Sequence[object]]) -> int:
        materialized = [tuple(row) for row in rows]
        with self._statement_span(
            f"-- bulk load {len(materialized)} rows into {name}"
        ):
            return self.inner.insert_rows(name, materialized)

    def drop_table(self, name: str, if_exists: bool = True) -> None:
        clause = "IF EXISTS " if if_exists else ""
        with self._statement_span(f"DROP TABLE {clause}{name}"):
            self.inner.drop_table(name, if_exists=if_exists)

    def has_table(self, name: str) -> bool:
        return self.inner.has_table(name)

    def register_function(self, name: str, num_args: int, func: Callable) -> None:
        self.inner.register_function(name, num_args, func)

    def create_index(self, name: str, table: str, columns: Sequence[str]) -> None:
        with self._statement_span(
            f"CREATE INDEX {name} ON {table} ({', '.join(columns)})"
        ):
            self.inner.create_index(name, table, columns)

    def close(self) -> None:
        close = getattr(self.inner, "close", None)
        if close is not None:
            close()
