"""The unified similarity engine and its fluent, lazily-planned query builder.

:class:`SimilarityEngine` is the single entry point over everything the
library can do with a relation of strings: the four operations the paper
studies (thresholded selection, top-k / ranked retrieval, approximate join,
deduplication), both realizations of every predicate (direct in-memory Python
and declarative SQL), both SQL backends (the bundled in-memory engine and
SQLite) and the blocking subsystem::

    from repro import SimilarityEngine

    engine = SimilarityEngine()
    matches = (
        engine.from_strings(rows)
        .predicate("bm25")
        .realization("declarative")
        .backend("sqlite")
        .top_k("Morgn Stanley Inc", 10)
    )

:class:`Query` objects are cheap immutable builders: each fluent setter
returns a new query, and nothing is fitted until a terminal operation runs.
Fitted predicate state (token tables, weights, blocker indexes) is cached on
the engine keyed by the full plan, so repeated queries -- and
:meth:`Query.run_many` batches -- pay preprocessing once.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.blocking.base import Blocker, BlockingStats
from repro.blocking.factory import THRESHOLD_STAGE_NAMES, make_blocker
from repro.core import kernels
from repro.core.dedup import Deduplicator, DuplicateCluster
from repro.core.join import ApproximateJoiner, JoinMatch, SelfJoinStats
from repro.core.predicates.base import Match, Predicate
from repro.declarative.base import DeclarativePredicate
from repro.declarative.shared import clear_shared_state
from repro.engine import registry
from repro.engine.plan import (
    ExplainReport,
    QueryPlan,
    RecordingBackend,
    RunManyStats,
    TraceResult,
    sql_statements,
)
from repro.obs.clock import perf_clock
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Observability, Span, Tracer
from repro.resilience import FaultInjector, RetryPolicy, faults_from_env
from repro.shard.predicate import ShardedPredicate, shard_offsets

__all__ = ["SimilarityEngine", "Query"]


@dataclass
class _Corpus:
    """One base relation handed to :meth:`SimilarityEngine.from_strings`."""

    key: int
    strings: List[str]

    def __len__(self) -> int:
        return len(self.strings)


@dataclass
class _FittedState:
    """A fitted predicate (plus blocker / SQL recorder) cached on the engine."""

    predicate: Union[Predicate, DeclarativePredicate]
    blocker: Optional[Blocker] = None
    recorder: Optional[RecordingBackend] = None


class SimilarityEngine:
    """Facade unifying selections, joins and dedup over every realization.

    Parameters are the session-wide defaults a :class:`Query` starts from;
    each can be overridden per query through the fluent builder.

    Example
    -------
    >>> engine = SimilarityEngine()
    >>> query = engine.from_strings(["AT&T Inc.", "IBM Corp."]).predicate("jaccard")
    >>> [match.tid for match in query.top_k("AT&T Incorporated", 1)]
    [0]
    """

    def __init__(
        self,
        predicate: str = "bm25",
        realization: str = "direct",
        backend: str = "memory",
        num_shards: int = 1,
        executor: str = "serial",
        max_workers: Optional[int] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        faults: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.default_predicate = predicate
        self.default_realization = realization
        self.default_backend = backend
        #: The observability pair (tracer + metrics registry) threaded through
        #: every layer the engine builds: terminal operations open span trees
        #: on the tracer (:data:`~repro.obs.trace.NOOP_TRACER` by default, a
        #: no-op), recording backends emit ``sql.statement`` spans, sharded
        #: predicates ship per-shard spans back from their workers, and all
        #: of them publish counters into the metrics registry
        #: (:data:`~repro.obs.metrics.GLOBAL_METRICS` by default).  The
        #: holder is shared *by reference*, so ``Query.trace()`` /
        #: ``explain()`` can swap a capturing tracer in for one call and
        #: every layer sees it.
        self.obs = Observability(tracer=tracer, metrics=metrics)
        #: Session-wide sharding defaults (direct realization only): with
        #: ``num_shards > 1`` the base relation is partitioned and queries
        #: execute per shard -- serially, on a thread pool or on a process
        #: pool (``executor``) -- with an exact global merge (see
        #: :mod:`repro.shard`).  Overridable per query via
        #: :meth:`Query.shards`.
        self.num_shards = int(num_shards)
        self.executor = executor
        self.max_workers = max_workers
        #: The resilience pair threaded through everything the engine builds:
        #: sharded executors retry/rebuild under ``retry_policy`` and consult
        #: ``faults`` at their dispatch points, recording backends check the
        #: ``sql.statement`` point.  ``faults`` defaults to whatever the
        #: ``REPRO_FAULTS`` environment spec says (inactive when unset) so a
        #: chaos run needs no code changes; ``retry_policy=None`` leaves each
        #: executor on its default policy.
        self.faults = faults if faults is not None else faults_from_env()
        self.retry_policy = retry_policy
        self._states: Dict[tuple, _FittedState] = {}  # guarded-by: _lock
        self._blockers: Dict[tuple, Blocker] = {}  # guarded-by: _lock
        #: ids of blockers this engine attached itself (vs. blockers a caller
        #: attached to a predicate instance before handing it over) -- only
        #: engine-attached blockers are detached for blocker-less queries.
        self._attached_blocker_ids: set = set()  # guarded-by: _lock
        #: id(predicate instance) -> key of the corpus the engine last fitted
        #: it on, so the per-access staleness check is an int comparison
        #: instead of an O(n) corpus comparison.
        self._instance_fits: Dict[int, int] = {}  # guarded-by: _lock
        #: One SQL backend instance per backend *name*, shared by every
        #: declarative state the engine builds: shared token/weight cores
        #: (namespaced table prefixes, see :mod:`repro.declarative.shared`)
        #: live per backend instance, so fitting a second declarative
        #: predicate on an already-prepared backend reuses them.
        self._backend_instances: Dict[str, object] = {}  # guarded-by: _lock
        self._corpora: Dict[tuple, _Corpus] = {}  # guarded-by: _lock
        self._corpus_counter = 0
        #: Reentrant lock guarding the fitted-state/instance/backend caches
        #: and declarative SQL execution.  Concurrent callers (the serving
        #: layer runs engine calls on worker threads) must neither double-fit
        #: one cache key nor interleave statements on a shared SQL backend --
        #: declarative predicates stage queries in fixed-name tables, so two
        #: unserialized executions would clobber each other's staged rows.
        #: Reentrant because fits and declarative executions nest through the
        #: same code paths (``explain`` fits inside an execution span).
        self._lock = threading.RLock()

    def __getstate__(self) -> dict:
        """Locks do not pickle; snapshots re-create one on load."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    @property
    def tracer(self) -> object:
        """The engine's tracer (swap via :attr:`obs`, not by reassigning)."""
        return self.obs.tracer

    @property
    def metrics(self) -> MetricsRegistry:
        """The metrics registry the engine's layers publish into."""
        return self.obs.metrics

    # -- building queries -------------------------------------------------------

    def from_strings(self, rows: Sequence[str]) -> "Query":
        """Bind a base relation and return a fresh :class:`Query` builder.

        Corpora are interned by content: calling ``from_strings`` twice with
        the same strings yields queries that share fitted predicate state.
        """
        content = tuple(rows)
        with self._lock:
            corpus = self._corpora.get(content)
            if corpus is None:
                self._corpus_counter += 1
                corpus = _Corpus(key=self._corpus_counter, strings=list(content))
                self._corpora[content] = corpus
        return Query(self, corpus)

    # -- registry passthrough ---------------------------------------------------

    @staticmethod
    def available_predicates(realization: Optional[str] = None) -> List[str]:
        """Canonical names of every registered predicate."""
        return registry.available_predicates(realization)

    # -- fitted-state cache -----------------------------------------------------

    def clear_cache(self) -> None:
        """Drop every cached fitted predicate (frees token tables/backends).

        Also releases the interned corpora, so long-lived engines do not
        retain every relation ever queried; live :class:`Query` objects keep
        working (their state is simply rebuilt on the next operation).
        Blockers the engine attached to caller-owned predicate instances are
        detached first -- once their ids are forgotten they would otherwise
        pass for caller-attached and keep pruning blocker-less queries.

        Resources the engine itself created are *closed*, not just dropped:
        SQL backends instantiated for named backend specs have their
        connections closed (a long-lived engine must not accumulate open
        SQLite handles across ``clear_cache`` cycles), and sharded
        predicates shut down their worker pools.  Backend *instances* a
        caller passed in are left open -- the caller owns their lifecycle.
        """
        with self._lock:
            for state in self._states.values():
                attached = getattr(state.predicate, "blocker", None)
                if attached is not None and id(attached) in self._attached_blocker_ids:
                    state.predicate.set_blocker(None)
                if isinstance(state.predicate, ShardedPredicate):
                    state.predicate.close()
            self._states.clear()
            self._blockers.clear()
            self._attached_blocker_ids.clear()
            self._instance_fits.clear()
            for backend in self._backend_instances.values():
                clear_shared_state(backend)
                backend.close()
            self._backend_instances.clear()
            self._corpora.clear()

    @property
    def cache_size(self) -> int:
        """Number of fitted predicate states currently cached."""
        # len() on a dict is GIL-atomic, but a reader racing clear_cache()
        # could still observe a size no serialized execution produces; the
        # RLock is reentrant and uncontended here, so just take it (RPL004).
        with self._lock:
            return len(self._states)

    def _state(self, key: tuple, build) -> _FittedState:
        with self._lock:
            state = self._states.get(key)
            if state is None:
                state = build()
                self._states[key] = state
            return state

    def _backend_instance(self, spec: Union[str, object]) -> object:
        """Resolve a backend spec to the engine's shared instance.

        Named backends resolve to one instance per name for the engine's
        lifetime, so every declarative state on e.g. ``"sqlite"`` shares one
        database -- and therefore the shared token/weight cores.  Instance
        specs are used as-is (the caller owns them).
        """
        if not isinstance(spec, str):
            return spec
        name = spec.strip().lower()
        with self._lock:
            backend = self._backend_instances.get(name)
            if backend is None:
                backend = registry.make_backend(name)
                self._backend_instances[name] = backend
        return backend


class Query:
    """A fluent, lazily-planned similarity query over one base relation.

    Builder methods (:meth:`predicate`, :meth:`realization`, :meth:`backend`,
    :meth:`blocker`) return *new* queries; terminal operations
    (:meth:`rank`, :meth:`top_k`, :meth:`select`, :meth:`join`,
    :meth:`self_join`, :meth:`dedup`, :meth:`run_many`) plan, fit (cached on
    the engine) and execute.  :meth:`explain` reports the chosen plan, the
    emitted SQL and blocker reduction statistics.
    """

    def __init__(self, engine: SimilarityEngine, corpus: _Corpus):
        self._engine = engine
        self._corpus = corpus
        self._predicate: Union[str, Predicate, DeclarativePredicate] = (
            engine.default_predicate
        )
        self._predicate_kwargs: Dict[str, object] = {}
        self._realization: Optional[str] = None
        self._backend: Optional[object] = None
        self._blocker_spec: Optional[Union[str, Blocker]] = None
        self._blocker_kwargs: Dict[str, object] = {}
        self._num_shards: Optional[int] = None
        self._executor: Optional[object] = None
        self._max_workers: Optional[int] = None
        #: Statistics of the most recent :meth:`self_join` / :meth:`dedup` run.
        self.last_self_join_stats: Optional[SelfJoinStats] = None
        #: Per-query candidate counts of the most recent :meth:`run_many`.
        self.last_run_many_stats: Optional[RunManyStats] = None

    @property
    def engine(self) -> SimilarityEngine:
        """The engine this query executes on (tracer/metrics live there)."""
        return self._engine

    # -- fluent builder ---------------------------------------------------------

    def _clone(self) -> "Query":
        other = Query(self._engine, self._corpus)
        other._predicate = self._predicate
        other._predicate_kwargs = dict(self._predicate_kwargs)
        other._realization = self._realization
        other._backend = self._backend
        other._blocker_spec = self._blocker_spec
        other._blocker_kwargs = dict(self._blocker_kwargs)
        other._num_shards = self._num_shards
        other._executor = self._executor
        other._max_workers = self._max_workers
        return other

    def predicate(
        self,
        predicate: Union[str, Predicate, DeclarativePredicate],
        **predicate_kwargs,
    ) -> "Query":
        """Choose the similarity predicate: a registry name/alias or an instance.

        Keyword arguments are forwarded to the predicate constructor (names
        only).  Passing an instance pins the realization to the instance's.
        """
        if not isinstance(predicate, str) and predicate_kwargs:
            raise ValueError("predicate kwargs are only valid with a predicate name")
        other = self._clone()
        other._predicate = predicate
        other._predicate_kwargs = dict(predicate_kwargs)
        return other

    def realization(self, realization: str) -> "Query":
        """Choose the realization: ``"direct"`` or ``"declarative"``."""
        if realization not in registry.REALIZATIONS:
            raise ValueError(
                f"unknown realization {realization!r}; "
                f"expected one of {registry.REALIZATIONS}"
            )
        other = self._clone()
        other._realization = realization
        return other

    def backend(self, backend: Union[str, object]) -> "Query":
        """Choose the SQL backend (``"memory"`` / ``"sqlite"`` or an instance).

        Only meaningful for the declarative realization; the direct
        realization executes in-process and ignores it (noted in the plan).
        """
        if isinstance(backend, str) and backend.strip().lower() not in registry.BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; available: {sorted(registry.BACKENDS)}"
            )
        other = self._clone()
        other._backend = backend
        return other

    def blocker(
        self, blocker: Optional[Union[str, Blocker]], **blocker_kwargs
    ) -> "Query":
        """Attach a candidate blocker: a spec string (``"length+prefix"``,
        ``"lsh"``, ``"none"``), a :class:`~repro.blocking.base.Blocker`
        instance, or ``None``.

        Spec strings accept ``lsh_bands`` / ``lsh_rows`` keyword arguments.
        Exact filters derive their bounds from the operation's similarity
        threshold, so they require a thresholded operation (``select``,
        ``join``, ``dedup``).
        """
        other = self._clone()
        if isinstance(blocker, str) and blocker.strip().lower() in ("", "none"):
            blocker = None
        other._blocker_spec = blocker
        other._blocker_kwargs = dict(blocker_kwargs)
        return other

    def shards(
        self,
        num_shards: int,
        executor: Optional[object] = None,
        max_workers: Optional[int] = None,
    ) -> "Query":
        """Partition the base relation into ``num_shards`` for this query.

        Applies to the direct realization of *named* predicates: the relation
        is split into contiguous shards, the collection statistics are
        computed once globally and injected into every shard-local fit, and
        results merge exactly (see :mod:`repro.shard`).  ``executor`` picks
        the execution strategy (``"serial"`` / ``"thread"`` / ``"process"``
        or a :class:`~repro.shard.executors.ShardExecutor` instance);
        ``None`` keeps the engine default.  ``num_shards=1`` restores
        unsharded execution.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        other = self._clone()
        other._num_shards = int(num_shards)
        other._executor = executor
        other._max_workers = max_workers
        return other

    # -- plan resolution --------------------------------------------------------

    @property
    def predicate_name(self) -> str:
        """Canonical predicate name (or the instance's reported name)."""
        if isinstance(self._predicate, str):
            return registry.canonical_name(self._predicate)
        return getattr(self._predicate, "name", type(self._predicate).__name__)

    def _resolved_realization(self) -> str:
        if not isinstance(self._predicate, str):
            inferred = (
                "declarative"
                if isinstance(self._predicate, DeclarativePredicate)
                else "direct"
            )
            if self._realization is not None and self._realization != inferred:
                raise ValueError(
                    f"predicate instance {type(self._predicate).__name__} is "
                    f"{inferred}, but the query requests the "
                    f"{self._realization} realization"
                )
            return inferred
        return self._realization or self._engine.default_realization

    def _backend_name(self) -> Optional[str]:
        if self._backend is None:
            return self._engine.default_backend
        if isinstance(self._backend, str):
            return self._backend.strip().lower()
        return getattr(self._backend, "name", type(self._backend).__name__)

    def _resolved_shards(self) -> tuple:
        """``(num_shards, executor_spec, max_workers)`` for this query."""
        num_shards = (
            self._num_shards if self._num_shards is not None else self._engine.num_shards
        )
        executor = self._executor if self._executor is not None else self._engine.executor
        max_workers = (
            self._max_workers
            if self._max_workers is not None
            else self._engine.max_workers
        )
        return num_shards, executor, max_workers

    def _sharding_active(self) -> bool:
        """Whether this query executes through a sharded predicate.

        Sharding partitions the *direct* realization of engine-built (named)
        predicates; predicate instances own their fitted state and the
        declarative realization executes in SQL, so both stay unsharded.
        """
        if not isinstance(self._predicate, str):
            return False
        if self._resolved_realization() != "direct":
            return False
        return self._resolved_shards()[0] > 1

    @staticmethod
    def _executor_name(executor: object) -> str:
        if isinstance(executor, str):
            return executor.strip().lower()
        return getattr(executor, "name", type(executor).__name__)

    def _blocker_needs_threshold(self) -> bool:
        spec = self._blocker_spec
        if not isinstance(spec, str):
            return False
        return any(
            stage.strip().lower() in THRESHOLD_STAGE_NAMES for stage in spec.split("+")
        )

    def _resolve_blocker(self, threshold: Optional[float]) -> Optional[Blocker]:
        spec = self._blocker_spec
        if spec is None:
            return None
        if isinstance(spec, Blocker):
            return spec
        return make_blocker(
            spec,
            threshold=threshold,
            lsh_bands=int(self._blocker_kwargs.get("lsh_bands", 16)),
            lsh_rows=int(self._blocker_kwargs.get("lsh_rows", 4)),
            tokenizer=self._blocker_kwargs.get("tokenizer"),
            seed=int(self._blocker_kwargs.get("seed", 20070411)),
        )

    def _predicate_key(self) -> tuple:
        """Cache key of the fitted predicate state -- deliberately excludes
        the blocker, so threshold sweeps and blocked/unblocked variants of
        the same plan share one expensive preprocessing."""
        realization = self._resolved_realization()
        if isinstance(self._predicate, str):
            predicate_key: object = (
                registry.canonical_name(self._predicate),
                tuple(sorted((k, repr(v)) for k, v in self._predicate_kwargs.items())),
            )
        else:
            predicate_key = ("instance", id(self._predicate))
        backend_key: object = None
        if realization == "declarative" and isinstance(self._predicate, str):
            backend_key = (
                self._backend_name()
                if self._backend is None or isinstance(self._backend, str)
                else ("instance", id(self._backend))
            )
        shard_key: object = None
        if self._sharding_active():
            num_shards, executor, max_workers = self._resolved_shards()
            shard_key = (
                num_shards,
                self._executor_name(executor)
                if isinstance(executor, str)
                else ("instance", id(executor)),
                max_workers,
            )
        return (self._corpus.key, realization, predicate_key, backend_key, shard_key)

    def _blocker_for(
        self, predicate_key: tuple, threshold: Optional[float]
    ) -> Optional[Blocker]:  # requires-lock: _lock
        """Resolve (and cache) the blocker this plan requests, if any.

        Only called from :meth:`_state_locked`, i.e. with the engine lock
        already held (it touches the engine's ``_blockers`` cache).
        """
        spec = self._blocker_spec
        if spec is None:
            return None
        if isinstance(spec, Blocker):
            return spec
        key = predicate_key + (
            spec,
            threshold if self._blocker_needs_threshold() else None,
            tuple(sorted((k, repr(v)) for k, v in self._blocker_kwargs.items())),
        )
        blocker = self._engine._blockers.get(key)
        if blocker is None:
            blocker = self._resolve_blocker(threshold)
            self._engine._blockers[key] = blocker
        return blocker

    def _state(self, threshold: Optional[float] = None) -> _FittedState:
        """Fitted predicate + blocker for this plan, from the engine cache.

        Predicate *instances* can be shared across corpora: each corpus keys
        its own cached state around the same object, so a cache hit here may
        wrap a predicate that was meanwhile refitted on another relation.
        Staleness is therefore checked on every access (not just on the cache
        miss in :meth:`_build_state`) and the predicate refitted when its
        ``base_strings`` no longer match this query's corpus.  Engine-built
        predicates are private to their cache key and cannot drift, so they
        skip the check.  Declarative states sharing one SQL backend instance
        use namespaced shared cores that never clobber each other; the only
        remaining staleness -- a shared feature rebuilt with different
        parameters, or cleared shared state -- is reported by the predicate
        itself (``tables_stale``) and likewise triggers a refit.

        The predicate's attached blocker is reconciled with the plan on every
        call: cached predicate states are shared across blocked, unblocked
        and differently-thresholded variants of the same plan, so a blocker
        attached for an earlier query must not leak into this one.  Blockers
        a caller attached to a predicate *instance* themselves (rather than
        via :meth:`blocker`) are left alone.
        """
        predicate_key = self._predicate_key()
        engine = self._engine
        obs = engine.obs
        with engine._lock:
            return self._state_locked(predicate_key, engine, obs, threshold)

    def _state_locked(
        self, predicate_key: tuple, engine: SimilarityEngine, obs, threshold
    ) -> _FittedState:  # requires-lock: _lock
        """Body of :meth:`_state`; runs under the engine lock so concurrent
        callers cannot double-fit one cache key or interleave the blocker
        reconciliation below with another thread's."""
        cached = engine._states.get(predicate_key)
        if cached is not None:
            obs.metrics.inc("cache_hits")
            with obs.tracer.span("cache_hit", predicate=self.predicate_name):
                pass
            state = cached
        else:
            fit_started = perf_clock()
            with obs.tracer.span(
                "fit", predicate=self.predicate_name, num_tuples=len(self._corpus)
            ):
                state = engine._state(predicate_key, self._build_state)
            obs.metrics.inc("fits_total")
            obs.metrics.observe("latency.fit", perf_clock() - fit_started)
        predicate = state.predicate
        refit = False
        if (
            not isinstance(self._predicate, str)
            and self._engine._instance_fits.get(id(predicate)) != self._corpus.key
        ):
            base = getattr(predicate, "base_strings", None)
            refit = base is not None and base != self._corpus.strings
        if isinstance(predicate, DeclarativePredicate) and predicate.tables_stale():
            # A shared feature this state depends on was rebuilt with other
            # parameters (or the shared cores were cleared): rematerialize
            # before answering from the wrong tables.
            refit = True
        if refit:
            stale = getattr(predicate, "blocker", None)
            if stale is not None and id(stale) in self._engine._attached_blocker_ids:
                # Detach the engine-attached blocker (it may belong to
                # another corpus's plan) before refitting, so fit() does
                # not refit it on this corpus; the reconciliation below
                # attaches and fits the right one.
                predicate.set_blocker(None)
            fit_started = perf_clock()
            with obs.tracer.span(
                "fit",
                predicate=self.predicate_name,
                num_tuples=len(self._corpus),
                refit=True,
            ):
                predicate.fit(self._corpus.strings)
            obs.metrics.inc("fits_total")
            obs.metrics.observe("latency.fit", perf_clock() - fit_started)
        if not isinstance(self._predicate, str):
            self._engine._instance_fits[id(predicate)] = self._corpus.key
        attached = getattr(predicate, "blocker", None)
        blocker = self._blocker_for(predicate_key, threshold)
        if blocker is not None:
            if attached is not blocker:
                predicate.set_blocker(blocker)
            self._engine._attached_blocker_ids.add(id(blocker))
        elif attached is not None and id(attached) in self._engine._attached_blocker_ids:
            predicate.set_blocker(None)
        else:
            blocker = attached
        return _FittedState(
            predicate=predicate, blocker=blocker, recorder=state.recorder
        )

    def _build_state(self) -> _FittedState:
        realization = self._resolved_realization()
        recorder: Optional[RecordingBackend] = None
        if isinstance(self._predicate, str):
            if realization == "declarative":
                backend_spec = (
                    self._backend
                    if self._backend is not None
                    else self._engine.default_backend
                )
                recorder = RecordingBackend(
                    self._engine._backend_instance(backend_spec),
                    obs=self._engine.obs,
                    faults=self._engine.faults,
                )
                predicate = registry.make(
                    self._predicate,
                    realization="declarative",
                    backend=recorder,
                    **self._predicate_kwargs,
                )
            elif self._sharding_active():
                name, kwargs = self._predicate, dict(self._predicate_kwargs)
                num_shards, executor, max_workers = self._resolved_shards()
                predicate = ShardedPredicate(
                    factory=lambda: registry.make(
                        name, realization="direct", **kwargs
                    ),
                    num_shards=num_shards,
                    executor=executor,
                    max_workers=max_workers,
                    obs=self._engine.obs,
                    faults=self._engine.faults,
                    retry_policy=self._engine.retry_policy,
                )
            else:
                predicate = registry.make(
                    self._predicate, realization="direct", **self._predicate_kwargs
                )
        else:
            predicate = self._predicate
            inner_backend = getattr(predicate, "backend", None)
            if (
                isinstance(predicate, DeclarativePredicate)
                and not predicate.is_preprocessed
                and inner_backend is not None
            ):
                recorder = RecordingBackend(
                    inner_backend, obs=self._engine.obs, faults=self._engine.faults
                )
                predicate.backend = recorder
        fitted = getattr(predicate, "is_fitted", False) or getattr(
            predicate, "is_preprocessed", False
        )
        # Refit instance predicates that were fitted on a *different* relation;
        # reusing their state here would silently answer over the wrong corpus.
        base = getattr(predicate, "base_strings", None)
        if not fitted or (base is not None and base != self._corpus.strings):
            predicate.fit(self._corpus.strings)
        return _FittedState(predicate=predicate, recorder=recorder)

    def fitted_predicate(
        self, threshold: Optional[float] = None
    ) -> Union[Predicate, DeclarativePredicate]:
        """Fit (or fetch from the engine cache) and return the predicate.

        Exact blockers need the operation threshold; pass it when the query
        carries a length/prefix blocker spec.
        """
        return self._state(threshold).predicate

    # -- terminal operations ----------------------------------------------------

    def _to_matches(self, scored: Iterable[Match]) -> List[Match]:
        strings = self._corpus.strings
        return [item.with_string(strings[item.tid]) for item in scored]

    @staticmethod
    def _execution_kind(predicate: object) -> str:
        """Which ``execute.*`` span a predicate's operations run under."""
        if isinstance(predicate, ShardedPredicate):
            return "sharded"
        if isinstance(predicate, DeclarativePredicate):
            return "declarative"
        return "direct"

    @contextmanager
    def _query_span(self, op: str, **attributes) -> Iterator[None]:
        """Root ``engine.query`` span + the per-query counter/latency pair."""
        obs = self._engine.obs
        obs.metrics.inc("queries_total")
        started = perf_clock()
        with obs.tracer.span(
            "engine.query",
            op=op,
            predicate=self.predicate_name,
            num_tuples=len(self._corpus),
            **attributes,
        ):
            yield
        obs.metrics.observe("latency.engine.query", perf_clock() - started)

    def _execute(
        self,
        state: _FittedState,
        runner,
        publish_pruning: bool = False,
        annotate_candidates: bool = True,
    ):
        """Run one operation inside its ``execute.<kind>`` span.

        Returns ``(results, span)``.  After the runner finishes, the
        predicate's per-call stats objects are published into the metrics
        registry and mirrored onto the span: pruning counters become a
        ``postings.scan`` child (direct realization; sharded executions
        carry them on their per-shard spans instead), SQL/shard counters
        become span attributes, and the blocker's candidate-reduction delta
        for exactly this operation feeds the ``blocker_*`` counters.
        """
        obs = self._engine.obs
        predicate = state.predicate
        kind = self._execution_kind(predicate)
        blocker_stats = state.blocker.stats if state.blocker is not None else None
        before = (
            (
                blocker_stats.probes,
                blocker_stats.candidates_in,
                blocker_stats.candidates_out,
            )
            if blocker_stats is not None
            else None
        )
        kernel_before = kernels.ops_snapshot()
        if kind == "sharded":
            # Per-query resilience record: the executor merges every run of
            # this operation into a fresh accumulator, read back below.
            predicate.reset_resilience()
        started = perf_clock()
        with obs.tracer.span("execute." + kind) as span:
            if kind == "declarative":
                # Declarative predicates stage query rows in fixed-name
                # tables on the (engine-shared) SQL backend; concurrent
                # executions must not interleave statements.
                with self._engine._lock:
                    results = runner()
            else:
                results = runner()
            self._annotate_execution(
                span, state, kind, publish_pruning, annotate_candidates
            )
        obs.metrics.observe("latency.execute." + kind, perf_clock() - started)
        # Attribute the scoring-kernel invocations of this execution (process
        # workers keep their counts worker-side; serial/thread land here).
        for backend_name, total in kernels.ops_snapshot().items():
            delta = total - kernel_before.get(backend_name, 0)
            if delta:
                obs.metrics.inc("kernel_ops." + backend_name, delta)
        if before is not None:
            BlockingStats(
                probes=blocker_stats.probes - before[0],
                candidates_in=blocker_stats.candidates_in - before[1],
                candidates_out=blocker_stats.candidates_out - before[2],
            ).publish(obs.metrics)
        return results, span

    def _annotate_execution(
        self,
        span,
        state: _FittedState,
        kind: str,
        publish_pruning: bool,
        annotate_candidates: bool,
    ) -> None:
        obs = self._engine.obs
        predicate = state.predicate
        traced = obs.tracer.enabled
        if annotate_candidates and traced:
            candidates = getattr(predicate, "last_num_candidates", None)
            if candidates is not None:
                span.set(num_candidates=candidates)
        if publish_pruning:
            pruning = getattr(predicate, "pruning_stats", None)
            if pruning is not None:
                pruning.publish(obs.metrics)
                if traced and kind == "direct":
                    span.attach(
                        Span(
                            "postings.scan",
                            attributes={
                                "tokens_total": pruning.tokens_total,
                                "tokens_opened": pruning.tokens_opened,
                                "postings_total": pruning.postings_total,
                                "postings_opened": pruning.postings_opened,
                                "postings_skipped": pruning.postings_skipped,
                                "candidates_scored": pruning.candidates_scored,
                                "candidates_rescored": pruning.candidates_rescored,
                                "pruned": pruning.pruned,
                            },
                        )
                    )
        if kind == "declarative":
            sql_stats = getattr(predicate, "last_sql_stats", None)
            if sql_stats is not None:
                sql_stats.publish(obs.metrics)
                if traced:
                    span.set(
                        sql_rows=sql_stats.rows_scored,
                        base_size=sql_stats.base_size,
                    )
        elif kind == "sharded":
            shard_stats = getattr(predicate, "shard_stats", None)
            if shard_stats is not None:
                shard_stats.publish(obs.metrics)
                if traced:
                    span.set(
                        shards_run=shard_stats.shards_run,
                        shards_skipped=shard_stats.shards_skipped,
                    )
            resilience = getattr(predicate, "resilience_stats", None)
            if resilience is not None and resilience.events:
                resilience.publish(obs.metrics)
                if traced:
                    span.set(
                        resilience_retries=resilience.task_retries,
                        resilience_pool_rebuilds=resilience.pool_rebuilds,
                        resilience_serial_fallbacks=resilience.serial_fallbacks,
                    )

    def rank(self, query: str, limit: Optional[int] = None) -> List[Match]:
        """All candidate tuples ordered by decreasing similarity to ``query``."""
        with self._query_span("rank"):
            state = self._state(None)
            results, _ = self._execute(
                state, lambda: state.predicate.rank(query, limit=limit)
            )
        return self._to_matches(results)

    def top_k(self, query: str, k: int) -> List[Match]:
        """The ``k`` most similar tuples.

        On the direct realization this routes through the predicate's
        ``top_k`` fast path -- heap accumulation, and max-score pruned early
        termination for the monotone-sum predicates (WeightedMatch, Cosine,
        BM25) -- with results identical to a full ranking.  The pruning
        counters of the last call are surfaced by :meth:`explain`.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        with self._query_span("top_k", k=k):
            state = self._state(None)
            fast = getattr(state.predicate, "top_k", None)
            if fast is None:  # declarative realization: SQL ranks, Python trims
                results, _ = self._execute(
                    state, lambda: state.predicate.rank(query, limit=k)
                )
            else:
                results, _ = self._execute(
                    state, lambda: fast(query, k), publish_pruning=True
                )
        return self._to_matches(results)

    def select(self, query: str, threshold: float) -> List[Match]:
        """The approximate selection ``{t | sim(query, t) >= threshold}``."""
        with self._query_span("select", threshold=threshold):
            state = self._state(threshold)
            results, _ = self._execute(
                state, lambda: state.predicate.select(query, threshold)
            )
        return self._to_matches(results)

    def score(self, query: str, tid: int) -> float:
        """Similarity between ``query`` and the tuple with id ``tid``."""
        return self._state(None).predicate.score(query, tid)

    def run_many(
        self,
        queries: Sequence[str],
        op: str = "rank",
        k: Optional[int] = None,
        threshold: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[List[Match]]:
        """Execute a batch of queries against one shared fitted state.

        ``op`` is ``"rank"`` (optionally with ``limit``), ``"top_k"`` (with
        ``k``) or ``"select"`` (with ``threshold``).  Preprocessing -- token
        tables, weights, blocker indexes -- happens at most once for the whole
        batch (and is shared with every earlier query of the same plan), which
        is the amortization that makes query workloads cheap.

        On the declarative realization the batch additionally executes through
        the predicate's batched SQL (:meth:`DeclarativePredicate.run_many`):
        one statement scores the whole workload instead of one per query.
        """
        if op == "top_k" and (k is None or k < 0):
            raise ValueError("op='top_k' requires a non-negative k")
        if op == "select" and threshold is None:
            raise ValueError("op='select' requires a threshold")
        if op not in ("rank", "top_k", "select"):
            raise ValueError(
                f"unknown batch op {op!r}; expected 'rank', 'top_k' or 'select'"
            )
        obs = self._engine.obs
        # Count logical queries, not batches; the root span carries the size.
        obs.metrics.inc("queries_total", max(0, len(queries) - 1))
        with self._query_span("run_many", batch_op=op, num_queries=len(queries)):
            state = self._state(threshold if op == "select" else None)
            predicate = state.predicate
            if isinstance(predicate, (DeclarativePredicate, ShardedPredicate)):
                # Both batch natively: declarative predicates score the whole
                # workload in one SQL statement, sharded predicates send each
                # shard the whole workload as one task.  Both record per-qid
                # candidate counts and reset last_num_candidates themselves.
                batches, _ = self._execute(
                    state,
                    lambda: predicate.run_many(
                        queries, op=op, k=k, threshold=threshold, limit=limit
                    ),
                    publish_pruning=(
                        op == "top_k" and isinstance(predicate, ShardedPredicate)
                    ),
                    annotate_candidates=False,
                )
                counts = predicate.last_batch_candidates or []
                self.last_run_many_stats = RunManyStats(
                    num_queries=len(queries), candidates_per_query=tuple(counts)
                )
                self.last_run_many_stats.publish(obs.metrics)
                return [self._to_matches(batch) for batch in batches]
            if op == "rank":
                runner = lambda text: predicate.rank(text, limit=limit)  # noqa: E731
            elif op == "top_k":
                fast = getattr(predicate, "top_k", None)
                if fast is None:
                    runner = lambda text: predicate.rank(text, limit=k)  # noqa: E731
                else:
                    runner = lambda text: fast(text, k)  # noqa: E731
            else:
                runner = lambda text: predicate.select(text, threshold)  # noqa: E731
            results: List[List[Match]] = []
            counts = []

            def run_batch() -> None:
                for text in queries:
                    results.append(self._to_matches(runner(text)))
                    counts.append(getattr(predicate, "last_num_candidates", None))

            self._execute(state, run_batch, annotate_candidates=False)
            self.last_run_many_stats = RunManyStats(
                num_queries=len(queries), candidates_per_query=tuple(counts)
            )
            self.last_run_many_stats.publish(obs.metrics)
            # A batch leaves no meaningful single-query count behind (it would
            # be the last query's, mistakable for the batch's).
            if hasattr(predicate, "last_num_candidates"):
                predicate.last_num_candidates = None
            return results

    # -- join / dedup -----------------------------------------------------------

    def _joiner(self, state: _FittedState, threshold: float) -> ApproximateJoiner:
        return ApproximateJoiner(
            self._corpus.strings, predicate=state.predicate, threshold=threshold
        )

    def join(
        self,
        probe: Iterable[str],
        threshold: float = 0.5,
        top_k: Optional[int] = None,
    ) -> List[JoinMatch]:
        """Approximate join: probe strings against the indexed base relation."""
        with self._query_span("join", threshold=threshold):
            state = self._state(threshold)
            joiner = self._joiner(state, threshold)
            matches, _ = self._execute(
                state,
                lambda: joiner.join(probe, threshold=threshold, top_k=top_k),
                annotate_candidates=False,
            )
        return matches

    def self_join(
        self, threshold: float = 0.5, include_identity: bool = False
    ) -> List[JoinMatch]:
        """Similarity self-join of the base relation (see the joiner docs).

        Work counters land in :attr:`last_self_join_stats`.
        """
        with self._query_span("self_join", threshold=threshold):
            state = self._state(threshold)
            joiner = self._joiner(state, threshold)
            matches, _ = self._execute(
                state,
                lambda: joiner.self_join(threshold, include_identity=include_identity),
                annotate_candidates=False,
            )
        self.last_self_join_stats = joiner.last_self_join_stats
        return matches

    def dedup(self, threshold: float = 0.5) -> List[DuplicateCluster]:
        """Duplicate clusters of the base relation at the given threshold."""
        with self._query_span("dedup", threshold=threshold):
            state = self._state(threshold)
            deduplicator = Deduplicator(
                self._corpus.strings, predicate=state.predicate, threshold=threshold
            )
            clusters, _ = self._execute(
                state, deduplicator.clusters, annotate_candidates=False
            )
        self.last_self_join_stats = deduplicator.joiner.last_self_join_stats
        return clusters

    # -- explain ----------------------------------------------------------------

    def _supports_maxscore(self) -> bool:
        """Whether this query's plan can run the max-score pruned top-k.

        Mirrors the predicates' own fallback logic: predicates that apply
        blockers *after* scoring (the aggregate family) need the full
        candidate set and drop to the heap path when the plan carries a
        blocker; pre-scoring-blocked predicates (WeightedMatch) keep
        pruning.  Sharded execution answers *any* blocked top_k by merging
        the blocked per-shard rankings, so a blocked sharded plan never
        runs the max-score path.
        """
        if isinstance(self._predicate, str):
            if self._resolved_realization() != "direct":
                return False
            target: object = registry.spec_for(self._predicate).direct
        else:
            target = self._predicate
        if not getattr(target, "supports_maxscore", False):
            return False
        blocked = self._blocker_spec is not None or (
            not isinstance(self._predicate, str)
            and getattr(self._predicate, "blocker", None) is not None
        )
        if not blocked:
            return True
        if self._sharding_active():
            return False
        return bool(getattr(target, "_prunes_before_scoring", False))

    def _uses_kernels(self) -> bool:
        """Whether the direct predicate scores through repro.core.kernels."""
        if isinstance(self._predicate, str):
            target: object = registry.spec_for(self._predicate).direct
        else:
            target = self._predicate
        return bool(getattr(target, "uses_kernels", False))

    def _declarative_fastpath(self) -> bool:
        """Whether this query's declarative predicate runs the fast paths."""
        if not isinstance(self._predicate, str):
            return bool(getattr(self._predicate, "fastpath", False))
        return bool(self._predicate_kwargs.get("fastpath", True))

    def _declarative_kind(self) -> Optional[str]:
        """``similarity_kind`` of the declarative realization, if any."""
        if not isinstance(self._predicate, str):
            return getattr(self._predicate, "similarity_kind", None)
        declarative = registry.spec_for(self._predicate).declarative
        return getattr(declarative, "similarity_kind", None)

    def plan(
        self, op: str = "rank", threshold: Optional[float] = None
    ) -> QueryPlan:
        """The execution plan this query would use for ``op`` (no execution)."""
        realization = self._resolved_realization()
        notes: List[str] = []
        backend_name: Optional[str] = None
        if realization == "declarative":
            backend_name = self._backend_name()
            notes.append(f"scores computed by SQL on the {backend_name!r} backend")
            if self._resolved_shards()[0] > 1:
                notes.append(
                    "sharding ignored: it applies to the direct realization "
                    "(the declarative realization executes unsharded SQL)"
                )
            if self._declarative_fastpath():
                notes.append(
                    "declarative fast path: shared token/weight tables "
                    "(reused across predicates), batched multi-query SQL"
                )
                if op == "top_k":
                    notes.append(
                        "top_k fast path: ORDER BY score DESC, tid LIMIT k "
                        "pushed into the scoring SQL"
                    )
                elif op == "select" and self._declarative_kind() == "jaccard":
                    notes.append(
                        "select fast path: length/prefix bounds pushed into "
                        "the scoring SQL (exact for jaccard)"
                    )
        else:
            notes.append("direct realization executes in-process (no SQL)")
            if self._uses_kernels():
                backend = kernels.active_backend()
                if backend == "numpy":
                    notes.append(
                        "scoring kernels: 'numpy' backend (vectorized "
                        "accumulation over array-backed postings)"
                    )
                    notes.append(
                        "kernel fallback ladder: a numpy kernel failure "
                        "falls back to the bit-identical 'python' backend "
                        "(counted as kernel_ops.python_fallback)"
                    )
                else:
                    notes.append(
                        "scoring kernels: 'python' backend (pure-Python "
                        "fallback; install the 'fast' extra for numpy)"
                    )
            if self._backend is not None:
                notes.append("backend setting ignored by the direct realization")
            if self._sharding_active():
                num_shards, executor, _ = self._resolved_shards()
                actual = max(1, min(num_shards, len(self._corpus) or 1))
                offsets = shard_offsets(len(self._corpus), actual)
                layout = [
                    offsets[i + 1] - offsets[i] for i in range(actual)
                ]
                notes.append(
                    f"sharded execution: {actual} shards "
                    f"via {self._executor_name(executor)!r} executor, "
                    f"layout {layout} (global statistics broadcast; exact merge)"
                )
                if self._executor_name(executor) != "serial":
                    notes.append(
                        "executor fallback ladder: failed shard tasks retry "
                        "with backoff, a broken pool is rebuilt once, and "
                        "last-resort tasks run serially in-process "
                        "(bit-identical; counted as resilience.*)"
                    )
                if op == "top_k" and self._supports_maxscore():
                    notes.append(
                        "sharded top_k: shards whose max-score upper bound "
                        "cannot reach the global kth score are skipped"
                    )
            elif (
                self._resolved_shards()[0] > 1
                and not isinstance(self._predicate, str)
            ):
                notes.append(
                    "sharding ignored: predicate instances own their fitted "
                    "state (pass a predicate name to shard)"
                )
            if op == "top_k":
                if self._supports_maxscore():
                    notes.append(
                        "top_k fast path: weighted postings with max-score "
                        "pruning (exact early termination)"
                    )
                else:
                    notes.append(
                        "top_k fast path: heap accumulation (no full candidate sort)"
                    )
            elif op == "select":
                notes.append(
                    "select fast path: threshold filter before sorting survivors"
                )
        blocker_name: Optional[str] = None
        if isinstance(self._blocker_spec, Blocker):
            blocker_name = self._blocker_spec.name
        elif self._blocker_spec is not None:
            blocker_name = self._blocker_spec
        blocker_threshold = (
            threshold if (blocker_name and self._blocker_needs_threshold()) else None
        )
        if blocker_name and realization == "declarative":
            notes.append("blocker prunes the scored SQL rows (post-scoring)")
        return QueryPlan(
            operation=op,
            predicate=self.predicate_name,
            realization=realization,
            num_tuples=len(self._corpus),
            backend=backend_name,
            blocker=blocker_name,
            blocker_threshold=blocker_threshold,
            predicate_params=tuple(sorted(self._predicate_kwargs.items())),
            notes=tuple(notes),
        )

    def trace(
        self,
        query: str,
        op: Optional[str] = None,
        k: Optional[int] = None,
        threshold: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> TraceResult:
        """Run one operation and return its results with the span tree.

        ``op`` defaults like :meth:`explain`: ``select`` when a threshold is
        given, ``top_k`` when ``k`` is given, ``rank`` otherwise.  When the
        engine already carries a live tracer it is used as-is; with the
        default no-op tracer a capturing :class:`~repro.obs.trace.Tracer` is
        activated for just this call -- so tracing one query never requires
        rebuilding the engine.
        """
        if op is None:
            op = (
                "select"
                if threshold is not None
                else ("top_k" if k is not None else "rank")
            )
        obs = self._engine.obs
        tracer = obs.tracer if obs.tracer.enabled else Tracer()
        with obs.activate(tracer):
            if op == "rank":
                results: object = self.rank(query, limit=limit)
            elif op == "top_k":
                if k is None or k < 0:
                    raise ValueError("op='top_k' requires a non-negative k")
                results = self.top_k(query, k)
            elif op == "select":
                if threshold is None:
                    raise ValueError("op='select' requires a threshold")
                results = self.select(query, threshold)
            else:
                raise ValueError(f"trace() cannot execute op {op!r}")
        return TraceResult(results=results, span=tracer.last_root)

    def explain(
        self,
        query: Optional[str] = None,
        op: Optional[str] = None,
        threshold: Optional[float] = None,
        k: Optional[int] = None,
    ) -> ExplainReport:
        """The chosen plan -- and, with a sample ``query``, what it executed.

        With ``query`` given, the operation runs once under a capturing
        tracer and the report is read off the span tree it produced: the
        emitted SQL (``sql.statement`` spans), the execute-span duration,
        the blocker's candidate reduction for that query and the number of
        candidates scored.  The tree itself lands in ``report.trace``.
        """
        if op is None:
            op = "select" if threshold is not None else ("top_k" if k is not None else "rank")
        report = ExplainReport(plan=self.plan(op, threshold=threshold))
        if query is None:
            return report
        if op not in ("rank", "top_k", "select"):
            raise ValueError(f"explain() cannot execute op {op!r}")
        if op == "select" and threshold is None:
            raise ValueError("op='select' requires a threshold")
        obs = self._engine.obs
        tracer = obs.tracer if obs.tracer.enabled else Tracer()
        ran_top_k = False
        with obs.activate(tracer):
            obs.metrics.inc("queries_total")
            with tracer.span(
                "engine.query",
                op=op,
                predicate=self.predicate_name,
                num_tuples=len(self._corpus),
                explain=True,
            ) as root:
                state = self._state(threshold)
                before: Optional[BlockingStats] = None
                if state.blocker is not None:
                    stats = state.blocker.stats
                    before = BlockingStats(
                        probes=stats.probes,
                        candidates_in=stats.candidates_in,
                        candidates_out=stats.candidates_out,
                    )
                if op == "select":
                    runner = lambda: state.predicate.select(query, threshold)  # noqa: E731
                elif op == "top_k":
                    fast = getattr(state.predicate, "top_k", None)
                    if fast is not None and k is not None:
                        runner = lambda: fast(query, k)  # noqa: E731
                        ran_top_k = True
                    else:
                        runner = lambda: state.predicate.rank(query, limit=k)  # noqa: E731
                else:
                    runner = lambda: state.predicate.rank(query)  # noqa: E731
                results, execute_span = self._execute(
                    state, runner, publish_pruning=ran_top_k
                )
        report.trace = root
        report.seconds = execute_span.duration
        report.sql = sql_statements(root)
        report.num_results = len(results)
        report.results = tuple(self._to_matches(results))
        report.num_candidates = getattr(state.predicate, "last_num_candidates", None)
        if op == "top_k":
            # Report only what *this* execution did.  Reading pruning_stats
            # unconditionally used to surface stale counters from an earlier
            # top_k call whenever the sample execution itself took the
            # rank/heap path (e.g. no k given, or a blocked aggregate
            # predicate) -- overclaiming a fast path that never ran.
            pruning = (
                getattr(state.predicate, "pruning_stats", None) if ran_top_k else None
            )
            report.pruning = pruning
            if not ran_top_k:
                report.execution = "top_k executed as a full ranking"
                if k is None:
                    report.fallback_reason = (
                        "no k was given to explain(); pass k= to run the "
                        "top_k path"
                    )
                else:
                    report.fallback_reason = (
                        "the predicate implements no top_k method; "
                        "rank(limit=k) ran instead"
                    )
            elif isinstance(state.predicate, DeclarativePredicate):
                report.execution = "top_k via SQL (see sql path / emitted SQL)"
            elif pruning is not None:
                report.execution = "top_k via max-score pruned accumulation"
            else:
                report.execution = "top_k via heap accumulation"
                if self._resolved_realization() == "direct":
                    target = (
                        registry.spec_for(self._predicate).direct
                        if isinstance(self._predicate, str)
                        else self._predicate
                    )
                    if not getattr(target, "supports_maxscore", False):
                        report.fallback_reason = (
                            "predicate score is not a monotone sum of "
                            "per-token contributions"
                        )
                    elif state.blocker is not None and isinstance(
                        state.predicate, ShardedPredicate
                    ):
                        report.fallback_reason = (
                            "sharded execution answers blocked top_k by "
                            "merging the blocked per-shard rankings"
                        )
                    elif state.blocker is not None and not getattr(
                        target, "_prunes_before_scoring", False
                    ):
                        report.fallback_reason = (
                            "blocker applies after scoring for this predicate "
                            "family, which needs the full candidate set"
                        )
                    else:
                        report.fallback_reason = (
                            "max-score plan unavailable at execution time "
                            "(an active candidate restriction disables it)"
                        )
        report.shards = getattr(state.predicate, "shard_stats", None)
        report.resilience = getattr(state.predicate, "resilience_stats", None)
        if isinstance(state.predicate, DeclarativePredicate):
            report.sql_stats = state.predicate.last_sql_stats
        if state.blocker is not None and before is not None:
            after = state.blocker.stats
            report.blocker_stats = BlockingStats(
                probes=after.probes - before.probes,
                candidates_in=after.candidates_in - before.candidates_in,
                candidates_out=after.candidates_out - before.candidates_out,
            )
        return report

    # -- introspection ----------------------------------------------------------

    @property
    def strings(self) -> List[str]:
        return list(self._corpus.strings)

    def __len__(self) -> int:
        return len(self._corpus)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Query(n={len(self._corpus)}, predicate={self.predicate_name}, "
            f"realization={self._resolved_realization()})"
        )
