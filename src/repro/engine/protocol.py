"""The protocol every similarity-predicate realization satisfies.

The paper's central claim is that one set of predicates admits two
realizations -- direct (in-memory Python) and declarative (SQL over a
backend).  Both :class:`repro.core.predicates.base.Predicate` and
:class:`repro.declarative.base.DeclarativePredicate` structurally satisfy
:class:`SimilarityPredicateProtocol`, which is all the engine, the
approximate join and deduplication rely on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ContextManager, List, Optional, Protocol, Sequence, Set, runtime_checkable

from repro.core.predicates.base import Match

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.blocking.base import Blocker

__all__ = ["SimilarityPredicateProtocol"]


@runtime_checkable
class SimilarityPredicateProtocol(Protocol):
    """Structural interface of a fitted-or-fittable similarity predicate.

    ``fit`` preprocesses a base relation (for declarative predicates it is an
    alias of ``preprocess``); ``rank`` returns every candidate ordered by
    decreasing score; ``select`` applies a similarity threshold.  The blocking
    hooks let the engine and the self-join prune candidates through
    :mod:`repro.blocking` regardless of realization.
    """

    #: Human-readable predicate name used in reports and plans.
    name: str
    #: The paper's predicate class (overlap / aggregate-weighted / ...).
    family: str
    #: Number of candidates scored by the most recent query (after blocking).
    last_num_candidates: Optional[int]

    def fit(self, strings: Sequence[str]) -> "SimilarityPredicateProtocol":
        """Preprocess the base relation (tokenization + weights)."""
        ...

    def rank(self, query: str, limit: Optional[int] = None) -> List[Match]:
        """Candidates ordered by decreasing similarity, ties broken by tid."""
        ...

    def select(self, query: str, threshold: float) -> List[Match]:
        """The approximate selection ``{t | sim(query, t) >= threshold}``."""
        ...

    def score(self, query: str, tid: int) -> float:
        """Similarity between ``query`` and one tuple."""
        ...

    def set_blocker(self, blocker: Optional["Blocker"]) -> "SimilarityPredicateProtocol":
        """Attach (or detach) a candidate blocker."""
        ...

    def restrict_candidates(self, allowed: Optional[Set[int]]) -> ContextManager[None]:
        """Scope queries to the given tuple ids (blocked self-joins)."""
        ...
