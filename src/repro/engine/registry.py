"""Merged, alias-aware predicate registry: the single source of truth.

Historically the direct predicates (:mod:`repro.core.predicates.registry`)
and their declarative realizations (:mod:`repro.declarative.registry`) kept
separate name registries that drifted apart (different alias sets, different
canonical spellings).  This module merges them: every paper predicate has one
canonical name, one alias set, and up to two realizations ("direct" and
"declarative").  The legacy ``make_predicate`` / ``make_declarative_predicate``
factories now delegate here, so all entry points resolve names identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type, Union

from repro.backends.base import SQLBackend
from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SQLiteBackend
from repro.core.predicates.base import Predicate
from repro.core.predicates.registry import PREDICATE_CLASSES
from repro.declarative.base import DeclarativePredicate
from repro.declarative.registry import DECLARATIVE_CLASSES

__all__ = [
    "REALIZATIONS",
    "BACKENDS",
    "ALIASES",
    "PredicateSpec",
    "SPECS",
    "canonical_name",
    "spec_for",
    "available_predicates",
    "available_realizations",
    "aliases_for",
    "make",
    "make_backend",
]

#: The two ways the paper realizes every predicate.
REALIZATIONS: Tuple[str, ...] = ("direct", "declarative")

#: Named SQL backends for the declarative realization.
BACKENDS: Dict[str, Type[SQLBackend]] = {
    "memory": MemoryBackend,
    "sqlite": SQLiteBackend,
}

#: Aliases accepted everywhere (case-insensitive; spaces/hyphens fold to
#: underscores before lookup).  Values are canonical names.
ALIASES: Dict[str, str] = {
    "intersectsize": "intersect",
    "xect": "intersect",
    "jac": "jaccard",
    "wm": "weighted_match",
    "weightedmatch": "weighted_match",
    "wj": "weighted_jaccard",
    "weightedjaccard": "weighted_jaccard",
    "tfidf": "cosine",
    "tf_idf": "cosine",
    "cosine_tfidf": "cosine",
    "okapi": "bm25",
    "language_modeling": "lm",
    "languagemodel": "lm",
    "ed": "edit_distance",
    "edit": "edit_distance",
    "editdistance": "edit_distance",
    "gesjaccard": "ges_jaccard",
    "gesapx": "ges_apx",
    "softtfidf": "soft_tfidf",
    "stfidf": "soft_tfidf",
}


@dataclass(frozen=True)
class PredicateSpec:
    """One paper predicate: canonical name, aliases, realization classes."""

    name: str
    direct: Optional[Type[Predicate]]
    declarative: Optional[Type[DeclarativePredicate]]
    aliases: Tuple[str, ...]

    @property
    def family(self) -> str:
        cls = self.direct or self.declarative
        return getattr(cls, "family", "unspecified")

    @property
    def realizations(self) -> Tuple[str, ...]:
        names = []
        if self.direct is not None:
            names.append("direct")
        if self.declarative is not None:
            names.append("declarative")
        return tuple(names)


def _build_specs() -> Dict[str, PredicateSpec]:
    names = sorted(set(PREDICATE_CLASSES) | set(DECLARATIVE_CLASSES))
    alias_map: Dict[str, List[str]] = {}
    for alias, target in ALIASES.items():
        alias_map.setdefault(target, []).append(alias)
    return {
        name: PredicateSpec(
            name=name,
            direct=PREDICATE_CLASSES.get(name),
            declarative=DECLARATIVE_CLASSES.get(name),
            aliases=tuple(sorted(alias_map.get(name, ()))),
        )
        for name in names
    }


#: Canonical name -> spec for every registered predicate.
SPECS: Dict[str, PredicateSpec] = _build_specs()


def canonical_name(name: str) -> str:
    """Resolve a (case-insensitive) name or alias to its canonical name."""
    key = name.strip().lower().replace(" ", "_").replace("-", "_")
    key = ALIASES.get(key, key)
    if key not in SPECS:
        raise ValueError(
            f"unknown predicate {name!r}; available: {available_predicates()}"
        )
    return key


def spec_for(name: str) -> PredicateSpec:
    """The :class:`PredicateSpec` of a predicate name or alias."""
    return SPECS[canonical_name(name)]


def available_predicates(realization: Optional[str] = None) -> List[str]:
    """Canonical names of every registered predicate.

    With ``realization`` given, only predicates offering that realization.
    """
    if realization is None:
        return sorted(SPECS)
    _check_realization(realization)
    return sorted(
        name for name, spec in SPECS.items() if realization in spec.realizations
    )


def available_realizations(name: str) -> Tuple[str, ...]:
    """The realizations ("direct" / "declarative") a predicate offers."""
    return spec_for(name).realizations


def aliases_for(name: str) -> Tuple[str, ...]:
    """All accepted aliases of a predicate (canonical name excluded)."""
    return spec_for(name).aliases


def make_backend(backend: Union[str, SQLBackend, None]) -> SQLBackend:
    """Resolve a backend name ("memory" / "sqlite") or instance to an instance."""
    if backend is None:
        return MemoryBackend()
    if isinstance(backend, SQLBackend):
        return backend
    key = str(backend).strip().lower()
    try:
        return BACKENDS[key]()
    except KeyError as exc:
        raise ValueError(
            f"unknown backend {backend!r}; available: {sorted(BACKENDS)}"
        ) from exc


def make(
    name: str,
    realization: str = "direct",
    backend: Union[str, SQLBackend, None] = None,
    **kwargs,
) -> Union[Predicate, DeclarativePredicate]:
    """Construct a predicate by name in the requested realization.

    Keyword arguments are forwarded to the predicate constructor; ``backend``
    (a name or a :class:`~repro.backends.base.SQLBackend` instance) applies to
    the declarative realization only.
    """
    _check_realization(realization)
    spec = spec_for(name)
    if realization == "declarative":
        if spec.declarative is None:
            raise ValueError(
                f"predicate {spec.name!r} has no declarative realization; "
                f"declarative predicates: {available_predicates('declarative')}"
            )
        if backend is not None:
            kwargs["backend"] = make_backend(backend)
        return spec.declarative(**kwargs)
    if spec.direct is None:
        raise ValueError(
            f"predicate {spec.name!r} has no direct realization; "
            f"direct predicates: {available_predicates('direct')}"
        )
    if backend is not None:
        raise ValueError(
            "the 'backend' argument applies to the declarative realization only"
        )
    return spec.direct(**kwargs)


def _check_realization(realization: str) -> None:
    if realization not in REALIZATIONS:
        raise ValueError(
            f"unknown realization {realization!r}; expected one of {REALIZATIONS}"
        )
