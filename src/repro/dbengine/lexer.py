"""SQL tokenizer for the engine's SQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.dbengine.errors import ParseError

__all__ = ["Token", "tokenize"]

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "AS", "AND", "OR", "NOT", "IN", "IS", "NULL", "LIKE", "BETWEEN",
    "INSERT", "INTO", "VALUES", "CREATE", "TABLE", "DROP", "DELETE",
    "IF", "EXISTS", "DISTINCT", "UNION", "ALL", "JOIN", "INNER", "LEFT",
    "OUTER", "ON", "CASE", "WHEN", "THEN", "ELSE", "END", "ASC", "DESC",
    "TRUE", "FALSE",
}

_PUNCTUATION = {
    "(": "LPAREN",
    ")": "RPAREN",
    ",": "COMMA",
    ".": "DOT",
    "*": "STAR",
    "+": "PLUS",
    "-": "MINUS",
    "/": "SLASH",
    "%": "PERCENT",
    ";": "SEMICOLON",
}


@dataclass(frozen=True)
class Token:
    kind: str       # KEYWORD, IDENT, NUMBER, STRING, OP, or punctuation kind
    value: str
    position: int

    def matches_keyword(self, *keywords: str) -> bool:
        return self.kind == "KEYWORD" and self.value in keywords


def tokenize(sql: str) -> List[Token]:
    """Tokenize a SQL string into a list of :class:`Token`."""
    tokens: List[Token] = []
    i = 0
    length = len(sql)
    while i < length:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        # line comments
        if ch == "-" and i + 1 < length and sql[i + 1] == "-":
            newline = sql.find("\n", i)
            i = length if newline == -1 else newline + 1
            continue
        # string literal (single quotes, '' escapes a quote)
        if ch == "'":
            j = i + 1
            parts: List[str] = []
            while True:
                if j >= length:
                    raise ParseError("unterminated string literal", i)
                if sql[j] == "'":
                    if j + 1 < length and sql[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            tokens.append(Token("STRING", "".join(parts), i))
            i = j + 1
            continue
        # quoted identifiers (double quotes or backticks)
        if ch in ('"', "`"):
            closing = sql.find(ch, i + 1)
            if closing == -1:
                raise ParseError("unterminated quoted identifier", i)
            tokens.append(Token("IDENT", sql[i + 1 : closing], i))
            i = closing + 1
            continue
        # numbers (integer or float, optional exponent)
        if ch.isdigit() or (ch == "." and i + 1 < length and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < length:
                cj = sql[j]
                if cj.isdigit():
                    j += 1
                elif cj == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif cj in "eE" and not seen_exp and j > i:
                    # exponent must be followed by digits or sign+digits
                    k = j + 1
                    if k < length and sql[k] in "+-":
                        k += 1
                    if k < length and sql[k].isdigit():
                        seen_exp = True
                        j = k
                    else:
                        break
                else:
                    break
            tokens.append(Token("NUMBER", sql[i:j], i))
            i = j
            continue
        # identifiers and keywords
        if ch.isalpha() or ch == "_":
            j = i
            while j < length and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, i))
            else:
                tokens.append(Token("IDENT", word, i))
            i = j
            continue
        # multi-character operators
        two = sql[i : i + 2]
        if two in ("<=", ">=", "<>", "!=", "||"):
            tokens.append(Token("OP", two, i))
            i += 2
            continue
        if ch in ("<", ">", "="):
            tokens.append(Token("OP", ch, i))
            i += 1
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(_PUNCTUATION[ch], ch, i))
            i += 1
            continue
        # positional bind parameter (value substituted before parsing)
        if ch == "?":
            tokens.append(Token("PARAM", "?", i))
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", i)
    tokens.append(Token("EOF", "", length))
    return tokens
