"""Render parsed SQL ASTs back to SQL text.

The printer serves three purposes:

* debugging / logging of the statements the declarative framework executes;
* an ``EXPLAIN``-style inspection aid (`format_statement` produces canonical,
  normalized SQL);
* a strong parser test: printing a parsed statement and re-parsing the result
  must yield the same AST (round-trip property, covered in the test suite).
"""

from __future__ import annotations

from typing import List

from repro.dbengine.ast_nodes import (
    Between,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    CreateTable,
    Delete,
    DropTable,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    Insert,
    IsNull,
    Join,
    Literal,
    OrderItem,
    ScalarSubquery,
    Select,
    SelectCore,
    Star,
    Statement,
    SubqueryRef,
    TableRef,
    TableSource,
    UnaryOp,
)
from repro.dbengine.errors import EngineError

__all__ = ["format_expression", "format_statement"]


def format_expression(expression: Expression) -> str:
    """Render an expression AST as SQL text."""
    if isinstance(expression, Literal):
        return _literal(expression.value)
    if isinstance(expression, ColumnRef):
        return expression.qualified
    if isinstance(expression, Star):
        return f"{expression.table}.*" if expression.table else "*"
    if isinstance(expression, UnaryOp):
        operand = format_expression(expression.operand)
        if expression.op == "NOT":
            return f"NOT ({operand})"
        return f"{expression.op}{operand}"
    if isinstance(expression, BinaryOp):
        left = format_expression(expression.left)
        right = format_expression(expression.right)
        return f"({left} {expression.op} {right})"
    if isinstance(expression, FunctionCall):
        prefix = "DISTINCT " if expression.distinct else ""
        args = ", ".join(format_expression(arg) for arg in expression.args)
        return f"{expression.name}({prefix}{args})"
    if isinstance(expression, CaseExpression):
        parts = ["CASE"]
        for condition, value in expression.whens:
            parts.append(f"WHEN {format_expression(condition)} THEN {format_expression(value)}")
        if expression.default is not None:
            parts.append(f"ELSE {format_expression(expression.default)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expression, InList):
        items = ", ".join(format_expression(item) for item in expression.items)
        negation = "NOT " if expression.negated else ""
        return f"{format_expression(expression.operand)} {negation}IN ({items})"
    if isinstance(expression, InSubquery):
        negation = "NOT " if expression.negated else ""
        return (
            f"{format_expression(expression.operand)} {negation}IN "
            f"({format_statement(expression.subquery)})"
        )
    if isinstance(expression, ScalarSubquery):
        return f"({format_statement(expression.subquery)})"
    if isinstance(expression, Between):
        negation = "NOT " if expression.negated else ""
        return (
            f"{format_expression(expression.operand)} {negation}BETWEEN "
            f"{format_expression(expression.low)} AND {format_expression(expression.high)}"
        )
    if isinstance(expression, IsNull):
        suffix = "IS NOT NULL" if expression.negated else "IS NULL"
        return f"{format_expression(expression.operand)} {suffix}"
    raise EngineError(f"cannot format expression {expression!r}")


def _literal(value: object) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


def _format_source(source: TableSource) -> str:
    if isinstance(source, TableRef):
        return f"{source.name} {source.alias}" if source.alias else source.name
    if isinstance(source, SubqueryRef):
        return f"({format_statement(source.subquery)}) {source.alias}"
    if isinstance(source, Join):
        left = _format_source(source.left)
        right = _format_source(source.right)
        keyword = "LEFT JOIN" if source.kind == "LEFT" else "INNER JOIN"
        clause = f"{left} {keyword} {right}"
        if source.condition is not None:
            clause += f" ON {format_expression(source.condition)}"
        return clause
    raise EngineError(f"cannot format table source {source!r}")


def _format_core(core: SelectCore) -> str:
    items = []
    for item in core.items:
        text = format_expression(item.expression)
        if item.alias:
            text += f" AS {item.alias}"
        items.append(text)
    parts: List[str] = ["SELECT "]
    if core.distinct:
        parts[0] += "DISTINCT "
    parts[0] += ", ".join(items)
    if core.sources:
        parts.append("FROM " + ", ".join(_format_source(source) for source in core.sources))
    if core.where is not None:
        parts.append("WHERE " + format_expression(core.where))
    if core.group_by:
        parts.append("GROUP BY " + ", ".join(format_expression(e) for e in core.group_by))
    if core.having is not None:
        parts.append("HAVING " + format_expression(core.having))
    return " ".join(parts)


def _format_order(order_by: tuple) -> str:
    rendered = []
    for item in order_by:
        text = format_expression(item.expression)
        if item.descending:
            text += " DESC"
        rendered.append(text)
    return "ORDER BY " + ", ".join(rendered)


def format_statement(statement: Statement) -> str:
    """Render a statement AST as SQL text."""
    if isinstance(statement, Select):
        parts = [_format_core(statement.cores[0])]
        for index, core in enumerate(statement.cores[1:]):
            keyword = "UNION ALL" if statement.union_alls[index] else "UNION"
            parts.append(f"{keyword} {_format_core(core)}")
        if statement.order_by:
            parts.append(_format_order(statement.order_by))
        if statement.limit is not None:
            parts.append(f"LIMIT {statement.limit}")
        return " ".join(parts)
    if isinstance(statement, Insert):
        columns = f" ({', '.join(statement.columns)})" if statement.columns else ""
        if statement.select is not None:
            return f"INSERT INTO {statement.table}{columns} {format_statement(statement.select)}"
        rows = ", ".join(
            "(" + ", ".join(format_expression(value) for value in row) + ")"
            for row in statement.values
        )
        return f"INSERT INTO {statement.table}{columns} VALUES {rows}"
    if isinstance(statement, CreateTable):
        clause = "IF NOT EXISTS " if statement.if_not_exists else ""
        columns = ", ".join(f"{name} {type_name}" for name, type_name in statement.columns)
        return f"CREATE TABLE {clause}{statement.table} ({columns})"
    if isinstance(statement, DropTable):
        clause = "IF EXISTS " if statement.if_exists else ""
        return f"DROP TABLE {clause}{statement.table}"
    if isinstance(statement, Delete):
        where = f" WHERE {format_expression(statement.where)}" if statement.where is not None else ""
        return f"DELETE FROM {statement.table}{where}"
    raise EngineError(f"cannot format statement {statement!r}")
