"""Exception hierarchy of the in-memory relational engine."""

from __future__ import annotations

__all__ = ["EngineError", "ParseError", "ExecutionError", "CatalogError"]


class EngineError(Exception):
    """Base class for all engine errors."""


class ParseError(EngineError):
    """Raised when a SQL statement cannot be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class CatalogError(EngineError):
    """Raised for unknown / duplicate tables or functions."""


class ExecutionError(EngineError):
    """Raised when a parsed statement cannot be executed."""
