"""Recursive-descent parser for the engine's SQL subset.

The grammar covers exactly what the declarative predicate realizations emit
(mirroring Appendix A/B of the paper): ``CREATE TABLE``, ``DROP TABLE``,
``DELETE``, ``INSERT ... VALUES`` / ``INSERT ... SELECT`` and ``SELECT`` with
comma joins, explicit ``[INNER|LEFT] JOIN ... ON``, subqueries in ``FROM``,
``WHERE``, ``GROUP BY``, ``HAVING``, ``UNION [ALL]``, ``ORDER BY`` and
``LIMIT``, plus a conventional expression grammar with scalar and aggregate
functions, ``CASE``, ``IN`` (lists and subqueries), ``BETWEEN``, ``LIKE`` and
``IS [NOT] NULL``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dbengine.ast_nodes import (
    Between,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    CreateTable,
    Delete,
    DropTable,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    Insert,
    IsNull,
    Join,
    Literal,
    OrderItem,
    ScalarSubquery,
    Select,
    SelectCore,
    SelectItem,
    Star,
    Statement,
    SubqueryRef,
    TableRef,
    TableSource,
    UnaryOp,
)
from repro.dbengine.errors import ParseError
from repro.dbengine.lexer import Token, tokenize

__all__ = [
    "parse_statement",
    "parse_statements",
    "parse_expression",
    "bind_params",
    "Parser",
]


def bind_params(tokens: List[Token], params: Optional[Tuple]) -> List[Token]:
    """Replace ``?`` placeholder tokens with literal tokens for ``params``.

    Binding happens at the token level -- parameter values become typed
    literal tokens, never SQL text -- so quoting/escaping of the values is a
    non-issue by construction (the string never re-enters the lexer).
    """
    if params is None:
        params = ()
    placeholders = [token for token in tokens if token.kind == "PARAM"]
    if len(placeholders) != len(params):
        raise ParseError(
            f"statement has {len(placeholders)} parameter placeholder(s) "
            f"but {len(params)} value(s) were bound",
            placeholders[0].position if placeholders else 0,
        )
    values = iter(params)
    bound: List[Token] = []
    for token in tokens:
        if token.kind != "PARAM":
            bound.append(token)
            continue
        value = next(values)
        if value is None:
            bound.append(Token("KEYWORD", "NULL", token.position))
        elif isinstance(value, bool):
            bound.append(Token("KEYWORD", "TRUE" if value else "FALSE", token.position))
        elif isinstance(value, (int, float)):
            # Negative numbers lex as MINUS NUMBER; repr round-trips floats.
            if value < 0:
                bound.append(Token("MINUS", "-", token.position))
                bound.append(Token("NUMBER", repr(type(value)(abs(value))), token.position))
            else:
                bound.append(Token("NUMBER", repr(value), token.position))
        else:
            bound.append(Token("STRING", str(value), token.position))
    return bound


def parse_statement(sql: str, params: Optional[Tuple] = None) -> Statement:
    """Parse a single SQL statement (a trailing semicolon is allowed)."""
    parser = Parser(bind_params(tokenize(sql), params))
    statement = parser.parse_single_statement()
    return statement


def parse_statements(sql: str) -> List[Statement]:
    """Parse a semicolon-separated script into a list of statements."""
    parser = Parser(tokenize(sql))
    return parser.parse_script()


def parse_expression(sql: str) -> Expression:
    """Parse a standalone expression (useful in tests)."""
    parser = Parser(tokenize(sql))
    expression = parser._expression()
    parser._expect_kind("EOF")
    return expression


class Parser:
    """Token-stream parser; one instance per statement/script."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers --------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _check_keyword(self, *keywords: str) -> bool:
        return self._peek().matches_keyword(*keywords)

    def _accept_keyword(self, *keywords: str) -> bool:
        if self._check_keyword(*keywords):
            self._advance()
            return True
        return False

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._peek()
        if not token.matches_keyword(keyword):
            raise ParseError(f"expected {keyword}, found {token.value!r}", token.position)
        return self._advance()

    def _check_kind(self, kind: str) -> bool:
        return self._peek().kind == kind

    def _accept_kind(self, kind: str) -> bool:
        if self._check_kind(kind):
            self._advance()
            return True
        return False

    def _expect_kind(self, kind: str) -> Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(f"expected {kind}, found {token.value!r}", token.position)
        return self._advance()

    def _expect_identifier(self) -> str:
        token = self._peek()
        if token.kind == "IDENT":
            return self._advance().value
        # Allow non-reserved keywords as identifiers where unambiguous.
        if token.kind == "KEYWORD" and token.value in {"ALL", "LEFT"}:
            return self._advance().value
        raise ParseError(f"expected identifier, found {token.value!r}", token.position)

    # -- entry points ---------------------------------------------------------

    def parse_single_statement(self) -> Statement:
        statement = self._statement()
        self._accept_kind("SEMICOLON")
        self._expect_kind("EOF")
        return statement

    def parse_script(self) -> List[Statement]:
        statements: List[Statement] = []
        while not self._check_kind("EOF"):
            statements.append(self._statement())
            while self._accept_kind("SEMICOLON"):
                pass
        return statements

    # -- statements -----------------------------------------------------------

    def _statement(self) -> Statement:
        token = self._peek()
        if token.matches_keyword("SELECT"):
            return self._select()
        if token.matches_keyword("INSERT"):
            return self._insert()
        if token.matches_keyword("CREATE"):
            return self._create_table()
        if token.matches_keyword("DROP"):
            return self._drop_table()
        if token.matches_keyword("DELETE"):
            return self._delete()
        raise ParseError(f"unsupported statement start {token.value!r}", token.position)

    def _create_table(self) -> CreateTable:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        if_not_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            if_not_exists = True
        table = self._expect_identifier()
        self._expect_kind("LPAREN")
        columns: List[Tuple[str, str]] = []
        while True:
            name = self._expect_identifier()
            type_parts: List[str] = []
            while self._check_kind("IDENT") or self._check_kind("NUMBER"):
                type_parts.append(self._advance().value)
            if self._accept_kind("LPAREN"):
                # consume VARCHAR(255)-style size specifiers
                while not self._accept_kind("RPAREN"):
                    self._advance()
            columns.append((name, " ".join(type_parts) or "TEXT"))
            if not self._accept_kind("COMMA"):
                break
        self._expect_kind("RPAREN")
        return CreateTable(table=table, columns=tuple(columns), if_not_exists=if_not_exists)

    def _drop_table(self) -> DropTable:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        if_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        table = self._expect_identifier()
        return DropTable(table=table, if_exists=if_exists)

    def _delete(self) -> Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_identifier()
        where = None
        if self._accept_keyword("WHERE"):
            where = self._expression()
        return Delete(table=table, where=where)

    def _insert(self) -> Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier()
        columns: List[str] = []
        if self._accept_kind("LPAREN"):
            while True:
                columns.append(self._expect_identifier())
                if not self._accept_kind("COMMA"):
                    break
            self._expect_kind("RPAREN")
        if self._accept_keyword("VALUES"):
            rows: List[Tuple[Expression, ...]] = []
            while True:
                self._expect_kind("LPAREN")
                values: List[Expression] = []
                while True:
                    values.append(self._expression())
                    if not self._accept_kind("COMMA"):
                        break
                self._expect_kind("RPAREN")
                rows.append(tuple(values))
                if not self._accept_kind("COMMA"):
                    break
            return Insert(table=table, columns=tuple(columns), values=tuple(rows))
        select = self._select()
        return Insert(table=table, columns=tuple(columns), select=select)

    def _select(self) -> Select:
        cores = [self._select_core()]
        union_alls: List[bool] = []
        while self._check_keyword("UNION"):
            self._advance()
            union_alls.append(self._accept_keyword("ALL"))
            cores.append(self._select_core())
        order_by: List[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                expression = self._expression()
                descending = False
                if self._accept_keyword("DESC"):
                    descending = True
                else:
                    self._accept_keyword("ASC")
                order_by.append(OrderItem(expression=expression, descending=descending))
                if not self._accept_kind("COMMA"):
                    break
        limit: Optional[int] = None
        if self._accept_keyword("LIMIT"):
            token = self._expect_kind("NUMBER")
            limit = int(token.value)
        return Select(
            cores=tuple(cores),
            union_alls=tuple(union_alls),
            order_by=tuple(order_by),
            limit=limit,
        )

    def _select_core(self) -> SelectCore:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        if distinct is False:
            self._accept_keyword("ALL")
        items: List[SelectItem] = []
        while True:
            items.append(self._select_item())
            if not self._accept_kind("COMMA"):
                break
        sources: List[TableSource] = []
        if self._accept_keyword("FROM"):
            sources.append(self._table_source())
            while True:
                if self._accept_kind("COMMA"):
                    sources.append(self._table_source())
                    continue
                joined = self._maybe_join(sources)
                if joined:
                    continue
                break
        where = None
        if self._accept_keyword("WHERE"):
            where = self._expression()
        group_by: List[Expression] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            while True:
                group_by.append(self._expression())
                if not self._accept_kind("COMMA"):
                    break
        having = None
        if self._accept_keyword("HAVING"):
            having = self._expression()
        return SelectCore(
            items=tuple(items),
            sources=tuple(sources),
            where=where,
            group_by=tuple(group_by),
            having=having,
            distinct=distinct,
        )

    def _maybe_join(self, sources: List[TableSource]) -> bool:
        """If the next tokens start an explicit JOIN, fold it onto the last source."""
        kind = None
        if self._check_keyword("JOIN"):
            kind = "INNER"
            self._advance()
        elif self._check_keyword("INNER") and self._peek(1).matches_keyword("JOIN"):
            kind = "INNER"
            self._advance()
            self._advance()
        elif self._check_keyword("LEFT"):
            lookahead = 1
            if self._peek(1).matches_keyword("OUTER"):
                lookahead = 2
            if self._peek(lookahead).matches_keyword("JOIN"):
                kind = "LEFT"
                for _ in range(lookahead + 1):
                    self._advance()
        if kind is None:
            return False
        right = self._table_source()
        condition = None
        if self._accept_keyword("ON"):
            condition = self._expression()
        left = sources.pop()
        sources.append(Join(left=left, right=right, condition=condition, kind=kind))
        return True

    def _table_source(self) -> TableSource:
        if self._accept_kind("LPAREN"):
            select = self._select()
            self._expect_kind("RPAREN")
            alias = self._table_alias(required=True)
            return SubqueryRef(subquery=select, alias=alias)
        name = self._expect_identifier()
        alias = self._table_alias(required=False)
        return TableRef(name=name, alias=alias)

    def _table_alias(self, required: bool) -> Optional[str]:
        if self._accept_keyword("AS"):
            return self._expect_identifier()
        if self._check_kind("IDENT"):
            return self._advance().value
        if required:
            token = self._peek()
            raise ParseError("subquery in FROM requires an alias", token.position)
        return None

    def _select_item(self) -> SelectItem:
        if self._check_kind("STAR"):
            self._advance()
            return SelectItem(expression=Star())
        # table.* form
        if (
            self._check_kind("IDENT")
            and self._peek(1).kind == "DOT"
            and self._peek(2).kind == "STAR"
        ):
            table = self._advance().value
            self._advance()
            self._advance()
            return SelectItem(expression=Star(table=table))
        expression = self._expression()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self._check_kind("IDENT"):
            alias = self._advance().value
        return SelectItem(expression=expression, alias=alias)

    # -- expressions ----------------------------------------------------------

    def _expression(self) -> Expression:
        return self._or_expression()

    def _or_expression(self) -> Expression:
        left = self._and_expression()
        while self._accept_keyword("OR"):
            right = self._and_expression()
            left = BinaryOp(op="OR", left=left, right=right)
        return left

    def _and_expression(self) -> Expression:
        left = self._not_expression()
        while self._accept_keyword("AND"):
            right = self._not_expression()
            left = BinaryOp(op="AND", left=left, right=right)
        return left

    def _not_expression(self) -> Expression:
        if self._accept_keyword("NOT"):
            return UnaryOp(op="NOT", operand=self._not_expression())
        return self._comparison()

    def _comparison(self) -> Expression:
        left = self._additive()
        token = self._peek()
        if token.kind == "OP" and token.value in ("=", "<", ">", "<=", ">=", "<>", "!="):
            op = self._advance().value
            if op == "!=":
                op = "<>"
            right = self._additive()
            return BinaryOp(op=op, left=left, right=right)
        negated = False
        if self._check_keyword("NOT") and self._peek(1).matches_keyword("IN", "LIKE", "BETWEEN"):
            self._advance()
            negated = True
        if self._accept_keyword("IN"):
            self._expect_kind("LPAREN")
            if self._check_keyword("SELECT"):
                subquery = self._select()
                self._expect_kind("RPAREN")
                return InSubquery(operand=left, subquery=subquery, negated=negated)
            items: List[Expression] = []
            while True:
                items.append(self._expression())
                if not self._accept_kind("COMMA"):
                    break
            self._expect_kind("RPAREN")
            return InList(operand=left, items=tuple(items), negated=negated)
        if self._accept_keyword("LIKE"):
            right = self._additive()
            expression: Expression = BinaryOp(op="LIKE", left=left, right=right)
            if negated:
                expression = UnaryOp(op="NOT", operand=expression)
            return expression
        if self._accept_keyword("BETWEEN"):
            low = self._additive()
            self._expect_keyword("AND")
            high = self._additive()
            return Between(operand=left, low=low, high=high, negated=negated)
        if self._accept_keyword("IS"):
            is_negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return IsNull(operand=left, negated=is_negated)
        return left

    def _additive(self) -> Expression:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.kind == "PLUS":
                self._advance()
                left = BinaryOp(op="+", left=left, right=self._multiplicative())
            elif token.kind == "MINUS":
                self._advance()
                left = BinaryOp(op="-", left=left, right=self._multiplicative())
            elif token.kind == "OP" and token.value == "||":
                self._advance()
                left = BinaryOp(op="||", left=left, right=self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expression:
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind == "STAR":
                self._advance()
                left = BinaryOp(op="*", left=left, right=self._unary())
            elif token.kind == "SLASH":
                self._advance()
                left = BinaryOp(op="/", left=left, right=self._unary())
            elif token.kind == "PERCENT":
                self._advance()
                left = BinaryOp(op="%", left=left, right=self._unary())
            else:
                return left

    def _unary(self) -> Expression:
        token = self._peek()
        if token.kind == "MINUS":
            self._advance()
            return UnaryOp(op="-", operand=self._unary())
        if token.kind == "PLUS":
            self._advance()
            return self._unary()
        return self._primary()

    def _primary(self) -> Expression:
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return Literal(float(text))
            return Literal(int(text))
        if token.kind == "STRING":
            self._advance()
            return Literal(token.value)
        if token.matches_keyword("NULL"):
            self._advance()
            return Literal(None)
        if token.matches_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.matches_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if token.matches_keyword("CASE"):
            return self._case_expression()
        if token.kind == "LPAREN":
            self._advance()
            if self._check_keyword("SELECT"):
                subquery = self._select()
                self._expect_kind("RPAREN")
                return ScalarSubquery(subquery=subquery)
            expression = self._expression()
            self._expect_kind("RPAREN")
            return expression
        if token.kind == "IDENT" or token.kind == "KEYWORD":
            return self._identifier_expression()
        raise ParseError(f"unexpected token {token.value!r}", token.position)

    def _case_expression(self) -> Expression:
        self._expect_keyword("CASE")
        whens: List[Tuple[Expression, Expression]] = []
        default: Optional[Expression] = None
        while self._accept_keyword("WHEN"):
            condition = self._expression()
            self._expect_keyword("THEN")
            value = self._expression()
            whens.append((condition, value))
        if self._accept_keyword("ELSE"):
            default = self._expression()
        self._expect_keyword("END")
        if not whens:
            raise ParseError("CASE requires at least one WHEN clause", self._peek().position)
        return CaseExpression(whens=tuple(whens), default=default)

    def _identifier_expression(self) -> Expression:
        token = self._peek()
        if token.kind == "KEYWORD" and token.value not in {"ALL", "LEFT", "END"}:
            raise ParseError(f"unexpected keyword {token.value!r}", token.position)
        name = self._advance().value
        # function call
        if self._check_kind("LPAREN"):
            self._advance()
            distinct = self._accept_keyword("DISTINCT")
            args: List[Expression] = []
            if self._check_kind("STAR"):
                self._advance()
                args.append(Star())
            elif not self._check_kind("RPAREN"):
                while True:
                    args.append(self._expression())
                    if not self._accept_kind("COMMA"):
                        break
            self._expect_kind("RPAREN")
            return FunctionCall(name=name.upper(), args=tuple(args), distinct=distinct)
        # qualified column reference
        if self._accept_kind("DOT"):
            column = self._expect_identifier()
            return ColumnRef(name=column, table=name)
        return ColumnRef(name=name)
