"""Scalar function registry for the in-memory engine.

The declarative predicate realizations use a modest set of scalar functions
(``LOG``, ``EXP``, ``POWER``, ``SQRT``, string helpers) plus user-defined
functions such as ``JAROWINKLER`` and ``EDITSIM``.  The registry maps
upper-case function names to Python callables; ``NULL`` (Python ``None``)
arguments propagate to a ``NULL`` result for every built-in, matching SQL
semantics.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

from repro.dbengine.errors import CatalogError

__all__ = ["FunctionRegistry", "default_functions"]

ScalarFunction = Callable[..., object]


def _null_safe(func: ScalarFunction) -> ScalarFunction:
    """Wrap ``func`` so that any ``None`` argument yields ``None``."""

    def wrapper(*args: object) -> object:
        if any(arg is None for arg in args):
            return None
        return func(*args)

    return wrapper


def _substring(text: str, start: int, length: Optional[int] = None) -> str:
    """SQL SUBSTRING: 1-based start, optional length."""
    start = int(start)
    if start > 0:
        begin = start - 1
    elif start == 0:
        begin = 0
    else:
        begin = max(len(text) + start, 0)
    if length is None:
        return text[begin:]
    length = int(length)
    if length <= 0:
        return ""
    return text[begin : begin + length]


def _locate(needle: str, haystack: str, start: int = 1) -> int:
    """SQL LOCATE: 1-based position of ``needle`` in ``haystack`` or 0."""
    start = max(int(start), 1)
    index = haystack.find(needle, start - 1)
    return index + 1


def _round(value: float, digits: int = 0) -> float:
    return round(float(value), int(digits))


def _log(value: float, base: Optional[float] = None) -> float:
    value = float(value)
    if value <= 0:
        raise ValueError("LOG argument must be positive")
    if base is None:
        return math.log(value)
    return math.log(value, float(base))


def default_functions() -> Dict[str, ScalarFunction]:
    """The built-in scalar functions shared by both SQL backends."""
    functions: Dict[str, ScalarFunction] = {
        "LOG": _log,
        "LN": lambda value: math.log(float(value)),
        "EXP": lambda value: math.exp(float(value)),
        "POWER": lambda base, exponent: math.pow(float(base), float(exponent)),
        "POW": lambda base, exponent: math.pow(float(base), float(exponent)),
        "SQRT": lambda value: math.sqrt(float(value)),
        "ABS": lambda value: abs(value),
        "ROUND": _round,
        "FLOOR": lambda value: math.floor(float(value)),
        "CEIL": lambda value: math.ceil(float(value)),
        "MOD": lambda a, b: a % b,
        "LENGTH": lambda text: len(str(text)),
        "UPPER": lambda text: str(text).upper(),
        "LOWER": lambda text: str(text).lower(),
        "TRIM": lambda text: str(text).strip(),
        "CONCAT": lambda *parts: "".join(str(part) for part in parts),
        "REPLACE": lambda text, old, new: str(text).replace(str(old), str(new)),
        "REVERSE": lambda text: str(text)[::-1],
        "SUBSTRING": _substring,
        "SUBSTR": _substring,
        "LOCATE": _locate,
        "COALESCE": None,  # handled specially below (must not be null-safe)
        "GREATEST": lambda *values: max(values),
        "LEAST": lambda *values: min(values),
        "IFNULL": None,  # handled specially below
    }
    wrapped = {
        name: _null_safe(func) for name, func in functions.items() if func is not None
    }
    wrapped["COALESCE"] = lambda *values: next(
        (value for value in values if value is not None), None
    )
    wrapped["IFNULL"] = lambda value, fallback: fallback if value is None else value
    return wrapped


class FunctionRegistry:
    """Case-insensitive registry of scalar functions (built-ins + UDFs)."""

    def __init__(self) -> None:
        self._functions: Dict[str, ScalarFunction] = dict(default_functions())

    def register(self, name: str, func: ScalarFunction, null_safe: bool = True) -> None:
        """Register a user-defined function under ``name`` (case-insensitive)."""
        key = name.upper()
        self._functions[key] = _null_safe(func) if null_safe else func

    def get(self, name: str) -> ScalarFunction:
        key = name.upper()
        try:
            return self._functions[key]
        except KeyError as exc:
            raise CatalogError(f"unknown function: {name}") from exc

    def __contains__(self, name: str) -> bool:
        return name.upper() in self._functions

    def names(self) -> list[str]:
        return sorted(self._functions)
