"""The :class:`Database` catalog: tables, functions and statement execution."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.dbengine.ast_nodes import (
    CreateTable,
    Delete,
    DropTable,
    Insert,
    Select,
    Statement,
)
from repro.dbengine.errors import CatalogError, ExecutionError
from repro.dbengine.executor import Relation, ResultSet, SelectExecutor
from repro.dbengine.functions import FunctionRegistry
from repro.dbengine.parser import parse_statement, parse_statements
from repro.dbengine.table import Column, Table

__all__ = ["Database"]


class Database:
    """An in-memory database: a set of named tables plus scalar functions.

    The public surface mirrors the tiny subset of DB-API-ish behaviour needed
    by the declarative framework:

    * :meth:`execute` -- parse and run one SQL statement; SELECTs return a
      :class:`~repro.dbengine.executor.ResultSet`, other statements return the
      affected row count.
    * :meth:`execute_script` -- run a semicolon-separated script.
    * :meth:`create_table`, :meth:`insert_rows` -- fast-path catalog
      manipulation that skips SQL parsing for bulk preprocessing loads.
    * :meth:`register_function` -- register a UDF usable from SQL (e.g. the
      ``JAROWINKLER`` and ``EDITSIM`` functions used by the paper's
      edit-based and combination predicates).
    """

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self.functions = FunctionRegistry()
        self._executor = SelectExecutor(self, self.functions)

    # -- catalog --------------------------------------------------------------

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError as exc:
            raise CatalogError(f"unknown table: {name}") from exc

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> List[str]:
        return sorted(table.name for table in self._tables.values())

    def create_table(
        self,
        name: str,
        columns: Sequence[str | Column],
        if_not_exists: bool = False,
    ) -> Table:
        key = name.lower()
        if key in self._tables:
            if if_not_exists:
                return self._tables[key]
            raise CatalogError(f"table already exists: {name}")
        table = Table(name, columns)
        self._tables[key] = table
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"unknown table: {name}")
        del self._tables[key]

    def insert_rows(self, name: str, rows: Iterable[Sequence[object]]) -> int:
        """Bulk-insert rows without SQL parsing (preprocessing fast path)."""
        return self.table(name).insert_many(rows)

    def register_function(self, name: str, func, null_safe: bool = True) -> None:
        self.functions.register(name, func, null_safe=null_safe)

    # -- execution ------------------------------------------------------------

    def execute(self, sql: str, params: Sequence[object] | None = None) -> ResultSet | int:
        """Parse and execute a single SQL statement.

        ``params`` binds positional ``?`` placeholders at the token level
        (typed literals, not SQL text), mirroring DB-API parameter binding.
        """
        return self.execute_statement(
            parse_statement(sql, tuple(params) if params else None)
        )

    def execute_script(self, sql: str) -> List[ResultSet | int]:
        """Execute a semicolon-separated script; returns one result per statement."""
        return [self.execute_statement(stmt) for stmt in parse_statements(sql)]

    def query(self, sql: str, params: Sequence[object] | None = None) -> ResultSet:
        """Execute a statement that must be a SELECT."""
        result = self.execute(sql, params=params)
        if not isinstance(result, ResultSet):
            raise ExecutionError("query() requires a SELECT statement")
        return result

    def execute_statement(self, statement: Statement) -> ResultSet | int:
        if isinstance(statement, Select):
            return self._executor.execute(statement)
        if isinstance(statement, CreateTable):
            columns = [Column(name, type_name) for name, type_name in statement.columns]
            self.create_table(statement.table, columns, if_not_exists=statement.if_not_exists)
            return 0
        if isinstance(statement, DropTable):
            self.drop_table(statement.table, if_exists=statement.if_exists)
            return 0
        if isinstance(statement, Insert):
            return self._insert(statement)
        if isinstance(statement, Delete):
            return self._delete(statement)
        raise ExecutionError(f"unsupported statement {statement!r}")

    # -- statement handlers ---------------------------------------------------

    def _insert(self, statement: Insert) -> int:
        table = self.table(statement.table)
        if statement.columns:
            positions = [table.column_index(name) for name in statement.columns]
        else:
            positions = list(range(len(table.columns)))

        def place(values: Sequence[object]) -> List[object]:
            if len(values) != len(positions):
                raise ExecutionError(
                    f"INSERT into {table.name!r} expects {len(positions)} values, "
                    f"got {len(values)}"
                )
            row: List[object] = [None] * len(table.columns)
            for position, value in zip(positions, values):
                row[position] = value
            return row

        count = 0
        if statement.select is not None:
            result = self._executor.execute(statement.select)
            for row in result.rows:
                table.insert(place(row))
                count += 1
            return count
        empty_relation = Relation(columns=[], rows=[()])
        for value_row in statement.values:
            values = [
                self._executor._evaluate(expression, empty_relation, ())
                for expression in value_row
            ]
            table.insert(place(values))
            count += 1
        return count

    def _delete(self, statement: Delete) -> int:
        table = self.table(statement.table)
        if statement.where is None:
            count = len(table.rows)
            table.clear()
            return count
        relation = Relation(
            columns=[(statement.table, name) for name in table.column_names],
            rows=list(table.rows),
        )
        keep: List[tuple] = []
        removed = 0
        for row in relation.rows:
            if self._executor._evaluate(statement.where, relation, row):
                removed += 1
            else:
                keep.append(row)
        table.rows = keep
        return removed
