"""Abstract syntax tree nodes for the SQL subset.

Two families of nodes:

* *expressions* (:class:`Expression` subclasses) -- column references,
  literals, arithmetic / comparison / boolean operators, function calls
  (scalar and aggregate), ``CASE`` expressions, ``IN`` lists and subqueries.
* *statements* (:class:`Statement` subclasses) -- ``SELECT`` (with joins,
  grouping, set operations, ordering), ``INSERT``, ``CREATE TABLE``,
  ``DROP TABLE`` and ``DELETE``.

The nodes are plain dataclasses; evaluation lives in
:mod:`repro.dbengine.executor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = [
    "Expression",
    "Literal",
    "ColumnRef",
    "Star",
    "UnaryOp",
    "BinaryOp",
    "FunctionCall",
    "CaseExpression",
    "InList",
    "InSubquery",
    "ScalarSubquery",
    "Between",
    "IsNull",
    "SelectItem",
    "TableRef",
    "SubqueryRef",
    "Join",
    "OrderItem",
    "SelectCore",
    "Select",
    "Statement",
    "Insert",
    "CreateTable",
    "DropTable",
    "Delete",
    "AGGREGATE_FUNCTIONS",
]

AGGREGATE_FUNCTIONS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


class Expression:
    """Base class for all expression nodes."""


@dataclass(frozen=True)
class Literal(Expression):
    value: object


@dataclass(frozen=True)
class ColumnRef(Expression):
    name: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expression):
    """``*`` or ``table.*`` in a select list or ``COUNT(*)``."""

    table: Optional[str] = None


@dataclass(frozen=True)
class UnaryOp(Expression):
    op: str  # '-', '+', 'NOT'
    operand: Expression


@dataclass(frozen=True)
class BinaryOp(Expression):
    op: str  # arithmetic, comparison, AND, OR, LIKE
    left: Expression
    right: Expression


@dataclass(frozen=True)
class FunctionCall(Expression):
    name: str
    args: Tuple[Expression, ...]
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.name.upper() in AGGREGATE_FUNCTIONS


@dataclass(frozen=True)
class CaseExpression(Expression):
    """``CASE WHEN cond THEN value ... [ELSE value] END`` (searched form)."""

    whens: Tuple[Tuple[Expression, Expression], ...]
    default: Optional[Expression] = None


@dataclass(frozen=True)
class InList(Expression):
    operand: Expression
    items: Tuple[Expression, ...]
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(Expression):
    operand: Expression
    subquery: "Select"
    negated: bool = False


@dataclass(frozen=True)
class ScalarSubquery(Expression):
    subquery: "Select"


@dataclass(frozen=True)
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression
    negated: bool = False


# -- FROM clause -------------------------------------------------------------


class TableSource:
    """Base class for items appearing in a FROM clause."""


@dataclass(frozen=True)
class TableRef(TableSource):
    name: str
    alias: Optional[str] = None

    @property
    def effective_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryRef(TableSource):
    subquery: "Select"
    alias: str

    @property
    def effective_name(self) -> str:
        return self.alias


@dataclass(frozen=True)
class Join(TableSource):
    """An explicit ``[INNER|LEFT] JOIN ... ON ...`` between two sources."""

    left: TableSource
    right: TableSource
    condition: Optional[Expression]
    kind: str = "INNER"  # INNER or LEFT


# -- statements ---------------------------------------------------------------


class Statement:
    """Base class for all statements."""


@dataclass(frozen=True)
class SelectItem:
    expression: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class SelectCore:
    """One SELECT ... FROM ... WHERE ... GROUP BY ... HAVING ... block."""

    items: Tuple[SelectItem, ...]
    sources: Tuple[TableSource, ...]
    where: Optional[Expression] = None
    group_by: Tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    distinct: bool = False


@dataclass(frozen=True)
class Select(Statement):
    """A full select: one or more cores combined with UNION [ALL]."""

    cores: Tuple[SelectCore, ...]
    union_alls: Tuple[bool, ...] = ()  # len == len(cores) - 1
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None

    @property
    def core(self) -> SelectCore:
        return self.cores[0]


@dataclass(frozen=True)
class Insert(Statement):
    table: str
    columns: Tuple[str, ...]
    values: Tuple[Tuple[Expression, ...], ...] = ()
    select: Optional[Select] = None


@dataclass(frozen=True)
class CreateTable(Statement):
    table: str
    columns: Tuple[Tuple[str, str], ...]  # (name, type)
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropTable(Statement):
    table: str
    if_exists: bool = False


@dataclass(frozen=True)
class Delete(Statement):
    table: str
    where: Optional[Expression] = None
