"""In-memory tables with named columns.

A :class:`Table` stores rows as plain tuples plus a list of column names.
Column types are advisory (the engine is dynamically typed like SQLite) but
are retained so ``CREATE TABLE`` round-trips and tests can introspect them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.dbengine.errors import ExecutionError

__all__ = ["Column", "Table"]

Row = Tuple[object, ...]


@dataclass(frozen=True)
class Column:
    """A column definition: a name and an advisory type name."""

    name: str
    type_name: str = "TEXT"


class Table:
    """A named, ordered collection of rows with a fixed column list."""

    def __init__(self, name: str, columns: Sequence[Column | str]):
        if not columns:
            raise ExecutionError(f"table {name!r} must have at least one column")
        normalized: List[Column] = []
        for column in columns:
            if isinstance(column, Column):
                normalized.append(column)
            else:
                normalized.append(Column(name=str(column)))
        names = [column.name.lower() for column in normalized]
        if len(set(names)) != len(names):
            raise ExecutionError(f"table {name!r} has duplicate column names")
        self.name = name
        self.columns: List[Column] = normalized
        self._index: Dict[str, int] = {column.name.lower(): i for i, column in enumerate(normalized)}
        self.rows: List[Row] = []

    # -- schema ---------------------------------------------------------------

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    def column_index(self, name: str) -> int:
        try:
            return self._index[name.lower()]
        except KeyError as exc:
            raise ExecutionError(
                f"table {self.name!r} has no column {name!r}"
            ) from exc

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index

    # -- data -----------------------------------------------------------------

    def insert(self, values: Sequence[object]) -> None:
        """Append one row; the value count must match the column count."""
        if len(values) != len(self.columns):
            raise ExecutionError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(values)}"
            )
        self.rows.append(tuple(values))

    def insert_many(self, rows: Iterable[Sequence[object]]) -> int:
        """Append many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def clear(self) -> None:
        self.rows.clear()

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def to_dicts(self) -> List[Dict[str, object]]:
        """Rows as dictionaries keyed by column name (test/debug helper)."""
        names = self.column_names
        return [dict(zip(names, row)) for row in self.rows]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, columns={self.column_names}, rows={len(self.rows)})"
