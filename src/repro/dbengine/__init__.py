"""A small in-memory relational engine with a SQL subset.

The paper expresses every similarity predicate as plain SQL over token and
weight tables stored in a relational database (MySQL in the original study).
This package provides the substrate for that declarative realization without
requiring an external database server:

* :mod:`repro.dbengine.table` -- in-memory tables with named columns.
* :mod:`repro.dbengine.catalog` -- a :class:`Database` holding tables and a
  scalar-function / UDF registry.
* :mod:`repro.dbengine.lexer` / :mod:`repro.dbengine.parser` -- a SQL-subset
  tokenizer and recursive-descent parser (SELECT / INSERT / CREATE / DROP /
  DELETE, joins, subqueries in FROM, GROUP BY / HAVING, UNION ALL, ORDER BY,
  LIMIT, aggregate and scalar functions).
* :mod:`repro.dbengine.executor` -- an AST-walking executor with hash
  equi-joins and grouped aggregation.

The supported SQL subset is exactly what the declarative predicate
realizations in :mod:`repro.declarative` emit, which mirrors Appendix A/B of
the paper.
"""

from repro.dbengine.catalog import Database
from repro.dbengine.errors import (
    CatalogError,
    EngineError,
    ExecutionError,
    ParseError,
)
from repro.dbengine.table import Table

__all__ = [
    "Database",
    "Table",
    "EngineError",
    "ParseError",
    "ExecutionError",
    "CatalogError",
]
