"""AST-walking executor for the SQL subset.

The executor works on :class:`Relation` objects: a list of tuples plus a
mapping from (possibly qualified) column keys to tuple positions.  Joins are
performed with hash equi-joins whenever an equality predicate between two
sources is available (extracted from the ``WHERE`` conjuncts or the explicit
``ON`` condition); remaining predicates are applied as residual filters.
Grouped aggregation supports ``COUNT`` (including ``COUNT(*)`` and
``COUNT(DISTINCT ...)``), ``SUM``, ``AVG``, ``MIN`` and ``MAX``.
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dbengine.ast_nodes import (
    AGGREGATE_FUNCTIONS,
    Between,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Join,
    Literal,
    OrderItem,
    ScalarSubquery,
    Select,
    SelectCore,
    SelectItem,
    Star,
    SubqueryRef,
    TableRef,
    TableSource,
    UnaryOp,
)
from repro.dbengine.errors import ExecutionError
from repro.dbengine.functions import FunctionRegistry

__all__ = ["Relation", "ResultSet", "SelectExecutor"]

_AMBIGUOUS = object()

_COMPARISONS: Dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Relation:
    """An intermediate relation: tuples plus a key -> position index."""

    def __init__(self, columns: Sequence[Tuple[Optional[str], str]], rows: List[tuple]):
        """``columns`` is a sequence of ``(source_alias, column_name)`` pairs."""
        self.columns: List[Tuple[Optional[str], str]] = list(columns)
        self.rows = rows
        self.key_index: Dict[str, object] = {}
        for position, (alias, name) in enumerate(self.columns):
            bare = name.lower()
            if alias is not None:
                self.key_index[f"{alias.lower()}.{bare}"] = position
            if bare in self.key_index and self.key_index[bare] != position:
                self.key_index[bare] = _AMBIGUOUS
            elif bare not in self.key_index:
                self.key_index[bare] = position

    def resolve(self, name: str, table: Optional[str]) -> int:
        key = f"{table.lower()}.{name.lower()}" if table else name.lower()
        position = self.key_index.get(key)
        if position is _AMBIGUOUS:
            raise ExecutionError(f"ambiguous column reference {key!r}")
        if position is None:
            raise ExecutionError(f"unknown column reference {key!r}")
        return int(position)  # type: ignore[arg-type]

    def has(self, name: str, table: Optional[str]) -> bool:
        key = f"{table.lower()}.{name.lower()}" if table else name.lower()
        position = self.key_index.get(key)
        return position is not None and position is not _AMBIGUOUS


class ResultSet:
    """The output of a SELECT: column names and rows."""

    def __init__(self, columns: List[str], rows: List[tuple]):
        self.columns = columns
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_dicts(self) -> List[Dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self) -> object:
        """First column of the first row (or ``None`` if empty)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultSet(columns={self.columns}, rows={len(self.rows)})"


class SelectExecutor:
    """Executes :class:`Select` ASTs against a table catalog."""

    def __init__(self, catalog, functions: FunctionRegistry):
        # ``catalog`` is a Database; typed loosely to avoid a circular import.
        self._catalog = catalog
        self._functions = functions

    # -- public ---------------------------------------------------------------

    def execute(self, select: Select) -> ResultSet:
        results = [self._execute_core(core) for core in select.cores]
        combined = results[0]
        for index, result in enumerate(results[1:]):
            if len(result.columns) != len(combined.columns):
                raise ExecutionError("UNION arms must have the same number of columns")
            all_rows = combined.rows + result.rows
            if not select.union_alls[index]:
                all_rows = _distinct_rows(all_rows)
            combined = ResultSet(combined.columns, all_rows)
        if select.order_by:
            combined = self._order(combined, select.order_by)
        if select.limit is not None:
            combined = ResultSet(combined.columns, combined.rows[: select.limit])
        return combined

    # -- core execution -------------------------------------------------------

    def _execute_core(self, core: SelectCore) -> ResultSet:
        relation, residual = self._build_from(core)
        if residual is not None:
            relation = self._filter(relation, residual)

        has_aggregates = any(
            _contains_aggregate(item.expression) for item in core.items
        ) or (core.having is not None and _contains_aggregate(core.having))

        if core.group_by or has_aggregates:
            result = self._grouped_projection(core, relation)
        else:
            result = self._projection(core, relation)
        if core.distinct:
            result = ResultSet(result.columns, _distinct_rows(result.rows))
        return result

    # -- FROM clause ----------------------------------------------------------

    def _build_from(self, core: SelectCore) -> Tuple[Relation, Optional[Expression]]:
        conjuncts = _split_conjuncts(core.where)
        if not core.sources:
            relation = Relation(columns=[], rows=[()])
            residual = _combine_conjuncts(conjuncts)
            return relation, residual

        relation: Optional[Relation] = None
        for source in core.sources:
            relation = self._attach_source(relation, source, conjuncts)
        assert relation is not None
        residual = _combine_conjuncts(conjuncts)
        return relation, residual

    def _attach_source(
        self,
        current: Optional[Relation],
        source: TableSource,
        conjuncts: List[Expression],
    ) -> Relation:
        if isinstance(source, Join):
            left = self._attach_source(current, source.left, conjuncts)
            join_conjuncts = _split_conjuncts(source.condition)
            right = self._materialize_source(source.right)
            joined = self._join(left, right, join_conjuncts + conjuncts,
                                consume_from=join_conjuncts, extra=conjuncts,
                                kind=source.kind)
            # ON conditions that were not usable as hash-join keys (non-equi
            # predicates) must still be applied at the join itself.
            if join_conjuncts:
                joined = self._filter(joined, _combine_conjuncts(join_conjuncts))
            return joined
        right = self._materialize_source(source)
        if current is None:
            return right
        return self._join(current, right, conjuncts, consume_from=conjuncts,
                          extra=[], kind="INNER")

    def _materialize_source(self, source: TableSource) -> Relation:
        if isinstance(source, TableRef):
            table = self._catalog.table(source.name)
            alias = source.effective_name
            columns = [(alias, name) for name in table.column_names]
            return Relation(columns=columns, rows=list(table.rows))
        if isinstance(source, SubqueryRef):
            result = self.execute(source.subquery)
            columns = [(source.alias, name) for name in result.columns]
            return Relation(columns=columns, rows=result.rows)
        if isinstance(source, Join):
            conjuncts = _split_conjuncts(source.condition)
            left = self._materialize_source(source.left)
            right = self._materialize_source(source.right)
            joined = self._join(left, right, conjuncts, consume_from=conjuncts,
                                extra=[], kind=source.kind)
            if conjuncts:
                joined = self._filter(joined, _combine_conjuncts(conjuncts))
            return joined
        raise ExecutionError(f"unsupported table source {source!r}")

    def _join(
        self,
        left: Relation,
        right: Relation,
        candidate_conjuncts: List[Expression],
        consume_from: List[Expression],
        extra: List[Expression],
        kind: str,
    ) -> Relation:
        """Join ``left`` and ``right`` using any applicable equality conjunct.

        Equality conjuncts of the form ``left_col = right_col`` found in
        ``candidate_conjuncts`` drive a hash join and are removed from the
        lists they came from (``consume_from`` / ``extra``); everything else
        stays for residual filtering.  LEFT joins fall back to a nested loop
        with the full ON condition.
        """
        equi_pairs: List[Tuple[int, int]] = []
        used: List[Expression] = []
        for conjunct in list(candidate_conjuncts):
            pair = _equi_join_columns(conjunct, left, right)
            if pair is not None:
                equi_pairs.append(pair)
                used.append(conjunct)
        for conjunct in used:
            if conjunct in consume_from:
                consume_from.remove(conjunct)
            elif conjunct in extra:
                extra.remove(conjunct)

        merged_columns = left.columns + right.columns
        rows: List[tuple] = []
        if kind == "LEFT":
            remaining = list(consume_from)
            condition = _combine_conjuncts(used + remaining)
            consume_from.clear()
            null_pad = (None,) * len(right.columns)
            for left_row in left.rows:
                matched = False
                for right_row in right.rows:
                    combined = left_row + right_row
                    if condition is None or _is_true(
                        self._evaluate(condition, Relation(merged_columns, []), combined)
                    ):
                        rows.append(combined)
                        matched = True
                if not matched:
                    rows.append(left_row + null_pad)
            return Relation(columns=merged_columns, rows=rows)

        if equi_pairs:
            left_keys = [pair[0] for pair in equi_pairs]
            right_keys = [pair[1] for pair in equi_pairs]
            index: Dict[tuple, List[tuple]] = {}
            for right_row in right.rows:
                key = tuple(right_row[position] for position in right_keys)
                index.setdefault(key, []).append(right_row)
            for left_row in left.rows:
                key = tuple(left_row[position] for position in left_keys)
                for right_row in index.get(key, ()):
                    rows.append(left_row + right_row)
        else:
            for left_row in left.rows:
                for right_row in right.rows:
                    rows.append(left_row + right_row)
        return Relation(columns=merged_columns, rows=rows)

    def _filter(self, relation: Relation, condition: Expression) -> Relation:
        rows = [
            row
            for row in relation.rows
            if _is_true(self._evaluate(condition, relation, row))
        ]
        return Relation(columns=relation.columns, rows=rows)

    # -- projection -----------------------------------------------------------

    def _expand_items(
        self, core: SelectCore, relation: Relation
    ) -> List[Tuple[Expression, str]]:
        expanded: List[Tuple[Expression, str]] = []
        for item in core.items:
            expression = item.expression
            if isinstance(expression, Star):
                for position, (alias, name) in enumerate(relation.columns):
                    if expression.table is not None and (
                        alias is None or alias.lower() != expression.table.lower()
                    ):
                        continue
                    expanded.append((_PositionRef(position), name))
                continue
            name = item.alias or _derive_name(expression, len(expanded))
            expanded.append((expression, name))
        return expanded

    def _projection(self, core: SelectCore, relation: Relation) -> ResultSet:
        items = self._expand_items(core, relation)
        columns = [name for _, name in items]
        rows = [
            tuple(self._evaluate(expression, relation, row) for expression, _ in items)
            for row in relation.rows
        ]
        return ResultSet(columns=columns, rows=rows)

    def _grouped_projection(self, core: SelectCore, relation: Relation) -> ResultSet:
        items = self._expand_items(core, relation)
        columns = [name for _, name in items]
        groups: Dict[tuple, List[tuple]] = {}
        if core.group_by:
            for row in relation.rows:
                key = tuple(
                    self._evaluate(expression, relation, row)
                    for expression in core.group_by
                )
                groups.setdefault(key, []).append(row)
        else:
            groups[()] = list(relation.rows)
            if not relation.rows:
                # Aggregates over an empty input still produce one row
                # (e.g. COUNT(*) == 0), matching SQL semantics.
                groups[()] = []

        rows: List[tuple] = []
        for group_rows in groups.values():
            if core.group_by and not group_rows:
                continue
            if core.having is not None:
                having_value = self._evaluate_grouped(core.having, relation, group_rows)
                if not _is_true(having_value):
                    continue
            rows.append(
                tuple(
                    self._evaluate_grouped(expression, relation, group_rows)
                    for expression, _ in items
                )
            )
        return ResultSet(columns=columns, rows=rows)

    # -- ordering -------------------------------------------------------------

    def _order(self, result: ResultSet, order_by: Sequence[OrderItem]) -> ResultSet:
        output_index = {name.lower(): position for position, name in enumerate(result.columns)}

        def key_for(row: tuple) -> tuple:
            keys = []
            for item in order_by:
                value = self._evaluate_output(item.expression, output_index, row)
                keys.append(_SortKey(value, item.descending))
            return tuple(keys)

        ordered = sorted(result.rows, key=key_for)
        return ResultSet(result.columns, ordered)

    def _evaluate_output(
        self, expression: Expression, output_index: Dict[str, int], row: tuple
    ) -> object:
        if isinstance(expression, ColumnRef):
            # Qualified references (e.g. ORDER BY S.tid) resolve against the
            # output column of the same bare name, matching common SQL usage.
            position = output_index.get(expression.name.lower())
            if position is None and expression.table is not None:
                position = output_index.get(f"{expression.table.lower()}.{expression.name.lower()}")
            if position is not None:
                return row[position]
        if isinstance(expression, Literal) and isinstance(expression.value, int):
            # ORDER BY <ordinal>
            ordinal = expression.value
            if 1 <= ordinal <= len(row):
                return row[ordinal - 1]
        raise ExecutionError(
            "ORDER BY expressions must reference output columns or ordinals"
        )

    # -- expression evaluation ------------------------------------------------

    def _evaluate(self, expression: Expression, relation: Relation, row: tuple) -> object:
        if isinstance(expression, Literal):
            return expression.value
        if isinstance(expression, _PositionRef):
            return row[expression.position]
        if isinstance(expression, ColumnRef):
            return row[relation.resolve(expression.name, expression.table)]
        if isinstance(expression, UnaryOp):
            value = self._evaluate(expression.operand, relation, row)
            return _apply_unary(expression.op, value)
        if isinstance(expression, BinaryOp):
            return self._binary(expression, relation, row)
        if isinstance(expression, FunctionCall):
            if expression.is_aggregate:
                raise ExecutionError(
                    f"aggregate {expression.name} used outside GROUP BY context"
                )
            args = [self._evaluate(arg, relation, row) for arg in expression.args]
            return self._functions.get(expression.name)(*args)
        if isinstance(expression, CaseExpression):
            for condition, value in expression.whens:
                if _is_true(self._evaluate(condition, relation, row)):
                    return self._evaluate(value, relation, row)
            if expression.default is not None:
                return self._evaluate(expression.default, relation, row)
            return None
        if isinstance(expression, Between):
            value = self._evaluate(expression.operand, relation, row)
            low = self._evaluate(expression.low, relation, row)
            high = self._evaluate(expression.high, relation, row)
            if value is None or low is None or high is None:
                return None
            inside = low <= value <= high
            return (not inside) if expression.negated else inside
        if isinstance(expression, IsNull):
            value = self._evaluate(expression.operand, relation, row)
            return (value is not None) if expression.negated else (value is None)
        if isinstance(expression, InList):
            value = self._evaluate(expression.operand, relation, row)
            members = [self._evaluate(item, relation, row) for item in expression.items]
            found = value in members
            return (not found) if expression.negated else found
        if isinstance(expression, InSubquery):
            value = self._evaluate(expression.operand, relation, row)
            members = self._subquery_values(expression.subquery)
            found = value in members
            return (not found) if expression.negated else found
        if isinstance(expression, ScalarSubquery):
            return self.execute(expression.subquery).scalar()
        if isinstance(expression, Star):
            raise ExecutionError("'*' is only valid in a select list or COUNT(*)")
        raise ExecutionError(f"unsupported expression {expression!r}")

    def _binary(self, expression: BinaryOp, relation: Relation, row: tuple) -> object:
        op = expression.op
        if op == "AND":
            left = self._evaluate(expression.left, relation, row)
            if not _is_true(left):
                return False
            return _is_true(self._evaluate(expression.right, relation, row))
        if op == "OR":
            left = self._evaluate(expression.left, relation, row)
            if _is_true(left):
                return True
            return _is_true(self._evaluate(expression.right, relation, row))
        left = self._evaluate(expression.left, relation, row)
        right = self._evaluate(expression.right, relation, row)
        if op in _COMPARISONS:
            if left is None or right is None:
                return None
            return _COMPARISONS[op](left, right)
        if op == "LIKE":
            if left is None or right is None:
                return None
            return _like(str(left), str(right))
        if op == "||":
            if left is None or right is None:
                return None
            return f"{left}{right}"
        if left is None or right is None:
            return None
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                return None
            return left / right
        if op == "%":
            return left % right
        raise ExecutionError(f"unsupported operator {op!r}")

    def _subquery_values(self, select: Select) -> set:
        result = self.execute(select)
        if result.columns and len(result.columns) != 1:
            raise ExecutionError("IN subquery must return a single column")
        return {row[0] for row in result.rows}

    # -- grouped evaluation ---------------------------------------------------

    def _evaluate_grouped(
        self, expression: Expression, relation: Relation, group_rows: List[tuple]
    ) -> object:
        if isinstance(expression, FunctionCall) and expression.is_aggregate:
            return self._aggregate(expression, relation, group_rows)
        if isinstance(expression, (Literal, _PositionRef, ColumnRef)):
            if isinstance(expression, Literal):
                return expression.value
            if not group_rows:
                return None
            return self._evaluate(expression, relation, group_rows[0])
        if isinstance(expression, UnaryOp):
            return _apply_unary(
                expression.op,
                self._evaluate_grouped(expression.operand, relation, group_rows),
            )
        if isinstance(expression, BinaryOp):
            rewritten = BinaryOp(
                op=expression.op,
                left=Literal(self._evaluate_grouped(expression.left, relation, group_rows)),
                right=Literal(self._evaluate_grouped(expression.right, relation, group_rows)),
            )
            return self._binary(rewritten, relation, group_rows[0] if group_rows else ())
        if isinstance(expression, FunctionCall):
            args = [
                self._evaluate_grouped(arg, relation, group_rows)
                for arg in expression.args
            ]
            return self._functions.get(expression.name)(*args)
        if isinstance(expression, CaseExpression):
            for condition, value in expression.whens:
                if _is_true(self._evaluate_grouped(condition, relation, group_rows)):
                    return self._evaluate_grouped(value, relation, group_rows)
            if expression.default is not None:
                return self._evaluate_grouped(expression.default, relation, group_rows)
            return None
        if not group_rows:
            return None
        return self._evaluate(expression, relation, group_rows[0])

    def _aggregate(
        self, call: FunctionCall, relation: Relation, group_rows: List[tuple]
    ) -> object:
        name = call.name.upper()
        if name == "COUNT":
            if not call.args or isinstance(call.args[0], Star):
                return len(group_rows)
            values = [
                self._evaluate(call.args[0], relation, row)
                for row in group_rows
            ]
            values = [value for value in values if value is not None]
            if call.distinct:
                return len(set(values))
            return len(values)
        if not call.args:
            raise ExecutionError(f"{name} requires an argument")
        values = [
            self._evaluate(call.args[0], relation, row) for row in group_rows
        ]
        values = [value for value in values if value is not None]
        if call.distinct:
            values = list(dict.fromkeys(values))
        if not values:
            return None
        if name == "SUM":
            return sum(values)
        if name == "AVG":
            return sum(values) / len(values)
        if name == "MIN":
            return min(values)
        if name == "MAX":
            return max(values)
        raise ExecutionError(f"unsupported aggregate {name}")


# -- helpers ------------------------------------------------------------------


class _PositionRef(Expression):
    """Internal expression that reads a fixed tuple position (Star expansion)."""

    __slots__ = ("position",)

    def __init__(self, position: int):
        self.position = position


class _SortKey:
    """Sort key wrapper that handles None and descending order."""

    __slots__ = ("value", "descending")

    def __init__(self, value: object, descending: bool):
        self.value = value
        self.descending = descending

    def __lt__(self, other: "_SortKey") -> bool:
        a, b = self.value, other.value
        if a is None and b is None:
            return False
        if a is None:
            result = True
        elif b is None:
            result = False
        else:
            result = a < b
        return (not result and a != b) if self.descending else result

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self.value == other.value


def _derive_name(expression: Expression, position: int) -> str:
    if isinstance(expression, ColumnRef):
        return expression.name
    if isinstance(expression, FunctionCall):
        return expression.name.lower()
    return f"col{position}"


def _contains_aggregate(expression: Expression) -> bool:
    if isinstance(expression, FunctionCall):
        if expression.is_aggregate:
            return True
        return any(_contains_aggregate(arg) for arg in expression.args)
    if isinstance(expression, BinaryOp):
        return _contains_aggregate(expression.left) or _contains_aggregate(expression.right)
    if isinstance(expression, UnaryOp):
        return _contains_aggregate(expression.operand)
    if isinstance(expression, CaseExpression):
        if any(
            _contains_aggregate(condition) or _contains_aggregate(value)
            for condition, value in expression.whens
        ):
            return True
        return expression.default is not None and _contains_aggregate(expression.default)
    if isinstance(expression, Between):
        return any(
            _contains_aggregate(part)
            for part in (expression.operand, expression.low, expression.high)
        )
    if isinstance(expression, (InList,)):
        return _contains_aggregate(expression.operand) or any(
            _contains_aggregate(item) for item in expression.items
        )
    if isinstance(expression, (InSubquery, IsNull)):
        return _contains_aggregate(expression.operand)
    return False


def _split_conjuncts(expression: Optional[Expression]) -> List[Expression]:
    if expression is None:
        return []
    if isinstance(expression, BinaryOp) and expression.op == "AND":
        return _split_conjuncts(expression.left) + _split_conjuncts(expression.right)
    return [expression]


def _combine_conjuncts(conjuncts: List[Expression]) -> Optional[Expression]:
    if not conjuncts:
        return None
    combined = conjuncts[0]
    for conjunct in conjuncts[1:]:
        combined = BinaryOp(op="AND", left=combined, right=conjunct)
    return combined


def _equi_join_columns(
    expression: Expression, left: Relation, right: Relation
) -> Optional[Tuple[int, int]]:
    """If ``expression`` equates a left column with a right column, return positions."""
    if not isinstance(expression, BinaryOp) or expression.op != "=":
        return None
    a, b = expression.left, expression.right
    if not isinstance(a, ColumnRef) or not isinstance(b, ColumnRef):
        return None
    if left.has(a.name, a.table) and right.has(b.name, b.table):
        return left.resolve(a.name, a.table), right.resolve(b.name, b.table)
    if left.has(b.name, b.table) and right.has(a.name, a.table):
        return left.resolve(b.name, b.table), right.resolve(a.name, a.table)
    return None


def _apply_unary(op: str, value: object) -> object:
    if op == "NOT":
        if value is None:
            return None
        return not _is_true(value)
    if value is None:
        return None
    if op == "-":
        return -value
    return value


def _is_true(value: object) -> bool:
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    return bool(value)


def _distinct_rows(rows: List[tuple]) -> List[tuple]:
    seen = set()
    output: List[tuple] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            output.append(row)
    return output


def _like(value: str, pattern: str) -> bool:
    """SQL LIKE with % and _ wildcards (case-insensitive, MySQL-style)."""
    import re

    regex_parts: List[str] = []
    for ch in pattern:
        if ch == "%":
            regex_parts.append(".*")
        elif ch == "_":
            regex_parts.append(".")
        else:
            regex_parts.append(re.escape(ch))
    return re.fullmatch("".join(regex_parts), value, flags=re.IGNORECASE) is not None
