"""repro -- Benchmarking Declarative Approximate Selection Predicates.

A reproduction of the SIGMOD 2007 benchmark study of similarity predicates
for declarative approximate selections.  The package provides:

* :mod:`repro.core` -- the approximate selection API and all similarity
  predicates (overlap, aggregate-weighted, language-modeling, edit-based and
  combination classes);
* :mod:`repro.text` -- tokenizers, string distances, weighting schemes and
  min-hash;
* :mod:`repro.blocking` -- candidate blockers (length / prefix filtering,
  MinHash-LSH, pipelines) that prune the candidate sets of selections, joins
  and deduplication;
* :mod:`repro.dbengine` / :mod:`repro.backends` / :mod:`repro.declarative` --
  the declarative (pure-SQL) realizations of every predicate, runnable on an
  in-memory SQL engine or on SQLite;
* :mod:`repro.datagen` -- the UIS-style benchmark data generator with
  controlled error injection;
* :mod:`repro.eval` -- accuracy metrics (MAP / max-F1), experiment runner,
  timing harness and the IDF-pruning performance enhancement.

Quickstart::

    from repro import ApproximateSelector
    selector = ApproximateSelector(["AT&T Incorporated", "IBM Corp."], predicate="bm25")
    selector.top_k("AT&T Inc.", k=1)
"""

from repro.core import (
    ApproximateSelector,
    Predicate,
    SelectionResult,
    available_predicates,
    make_predicate,
)
from repro.blocking import (
    Blocker,
    BlockingPipeline,
    LengthFilter,
    MinHashLSH,
    PrefixFilter,
    make_blocker,
)

__version__ = "1.1.0"

__all__ = [
    "ApproximateSelector",
    "SelectionResult",
    "Predicate",
    "make_predicate",
    "available_predicates",
    "Blocker",
    "LengthFilter",
    "PrefixFilter",
    "MinHashLSH",
    "BlockingPipeline",
    "make_blocker",
    "__version__",
]
