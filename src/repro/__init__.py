"""repro -- Benchmarking Declarative Approximate Selection Predicates.

A reproduction of the SIGMOD 2007 benchmark study of similarity predicates
for declarative approximate selections.  The front door is the unified
similarity engine:

Quickstart::

    from repro import SimilarityEngine

    engine = SimilarityEngine()
    query = engine.from_strings(["AT&T Incorporated", "IBM Corp."]).predicate("bm25")
    query.top_k("AT&T Inc.", 1)          # -> [Match(tid=0, score=..., string=...)]

The same fluent query runs every paper predicate in either *realization*
(direct in-memory Python, or the paper's declarative SQL on the bundled
in-memory engine / SQLite), with optional candidate blocking, batched
workloads and plan inspection::

    query.realization("declarative").backend("sqlite").top_k("AT&T Inc.", 1)
    query.blocker("length+prefix").select("AT&T Inc.", 0.6)
    query.run_many(["AT&T", "IBM"], op="top_k", k=3)   # preprocessing paid once
    print(query.explain("AT&T Inc.", k=1))             # plan, SQL, blocker stats

Package map:

* :mod:`repro.engine` -- the :class:`SimilarityEngine` facade, fluent
  :class:`~repro.engine.query.Query` builder, merged predicate registry,
  plans and explain reports;
* :mod:`repro.core` -- the direct predicate realizations plus the
  approximate join and deduplication operators;
* :mod:`repro.declarative` / :mod:`repro.dbengine` / :mod:`repro.backends`
  -- the declarative (pure SQL / UDF) realizations and their backends;
* :mod:`repro.blocking` -- candidate blockers (length / prefix filtering,
  MinHash-LSH, pipelines);
* :mod:`repro.text` -- tokenizers, string distances, weighting schemes;
* :mod:`repro.datagen` -- the UIS-style benchmark data generator;
* :mod:`repro.eval` -- accuracy metrics, experiment runner, timing harness;
* :mod:`repro.obs` -- end-to-end observability: span-tree tracing across
  engine -> realization -> shards -> SQL, a process-wide metrics registry
  of counters and latency histograms, the shared monotonic clock, and the
  JSON export schema used by traces, metrics and benchmarks.  Off by
  default (the no-op tracer costs nothing); turn it on per query with
  ``query.trace("AT&T Inc.", k=1)`` or per engine with
  ``SimilarityEngine(tracer=Tracer())``;
* :mod:`repro.serve` -- similarity-as-a-service: an asyncio HTTP serving
  layer (stdlib only) that multiplexes concurrent clients over the engine
  with admission control (bounded concurrency + queue, 429/504
  backpressure), micro-batching of compatible requests into ``run_many``
  batch executions (bit-identical to direct calls), per-corpus engine
  lifecycle with LRU eviction, graceful SIGTERM drain, and a small JSON
  client.  ``python -m repro.cli serve`` starts a server;
* :mod:`repro.resilience` -- failure handling wired through the shard and
  serve layers: deterministic fault injection (``REPRO_FAULTS``), bounded
  retries with seeded backoff, request deadlines propagated to shard-task
  and SQL-statement boundaries, per-corpus circuit breakers, and the
  ``resilience.*`` accounting surfaced by ``explain()``.  Self-healing is
  exact: shard tasks are pure, so retrying or re-running them after a
  worker crash is bit-identical to an undisturbed run;
* :mod:`repro.analysis` -- invariant-aware static analysis (stdlib ``ast``
  only): ``python -m repro.analysis`` checks the contracts the guarantees
  above rest on -- sorted-order float accumulation, the single sanctioned
  clock, pure executor tasks, lock discipline on shared caches, structured
  error envelopes (rules RPL001-RPL005; see ``docs/invariants.md``).

Migrating from ``ApproximateSelector``: the class remains as a deprecated
thin shim; ``ApproximateSelector(strings, predicate="bm25").top_k(q, 5)`` is
now spelled ``SimilarityEngine().from_strings(strings).predicate("bm25")
.top_k(q, 5)``.  Results everywhere are :class:`~repro.engine.Match`
objects; ``SelectionResult`` and ``ScoredTuple`` are backward-compatible
aliases of :class:`~repro.engine.Match` (the old ``.text`` attribute is kept
as a property).
"""

from repro.core import (
    ApproximateSelector,
    Match,
    Predicate,
    SelectionResult,
    available_predicates,
    make_predicate,
)
from repro.blocking import (
    Blocker,
    BlockingPipeline,
    LengthFilter,
    MinHashLSH,
    PrefixFilter,
    make_blocker,
)
from repro.engine import (
    ExplainReport,
    Query,
    QueryPlan,
    SimilarityEngine,
    SimilarityPredicateProtocol,
)
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    FaultInjector,
    ResilienceStats,
    RetryPolicy,
)
from repro.shard import ShardedPredicate, ShardStats

__version__ = "1.7.0"

__all__ = [
    "SimilarityEngine",
    "Query",
    "Match",
    "QueryPlan",
    "ExplainReport",
    "SimilarityPredicateProtocol",
    "ApproximateSelector",
    "SelectionResult",
    "Predicate",
    "make_predicate",
    "available_predicates",
    "Blocker",
    "LengthFilter",
    "PrefixFilter",
    "MinHashLSH",
    "BlockingPipeline",
    "make_blocker",
    "ShardedPredicate",
    "ShardStats",
    "FaultInjector",
    "RetryPolicy",
    "Deadline",
    "CircuitBreaker",
    "ResilienceStats",
    "__version__",
]
