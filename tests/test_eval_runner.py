"""Unit tests for the experiment runner, timing harness and pruning."""

from __future__ import annotations

import pytest

from repro.core.predicates import BM25, Jaccard
from repro.eval.pruning import IdfPruner, PrunedTokenizer, prune_rate_threshold
from repro.eval.runner import AccuracyResult, ExperimentRunner
from repro.eval.timing import time_preprocessing, time_queries
from repro.text.tokenize import QgramTokenizer


class TestExperimentRunner:
    def test_evaluate_by_name(self, small_dataset):
        runner = ExperimentRunner(small_dataset, "small")
        result = runner.evaluate("bm25", num_queries=20)
        assert isinstance(result, AccuracyResult)
        assert result.predicate_name == "BM25"
        assert result.dataset_name == "small"
        assert result.num_queries == 20
        assert 0.0 <= result.mean_average_precision <= 1.0
        assert 0.0 <= result.mean_max_f1 <= 1.0

    def test_evaluate_reuses_fitted_predicate(self, small_dataset):
        runner = ExperimentRunner(small_dataset, "small")
        predicate = BM25().fit(small_dataset.strings)
        result = runner.evaluate(predicate, num_queries=10)
        assert result.num_queries == 10

    def test_keep_outcomes(self, small_dataset):
        runner = ExperimentRunner(small_dataset, "small")
        result = runner.evaluate("jaccard", num_queries=5, keep_outcomes=True)
        assert len(result.outcomes) == 5
        for outcome in result.outcomes:
            assert 0.0 <= outcome.average_precision <= 1.0
            assert outcome.num_relevant >= 1

    def test_workload_is_deterministic(self, small_dataset):
        runner = ExperimentRunner(small_dataset, "small")
        assert runner.query_workload(15, seed=3) == runner.query_workload(15, seed=3)
        assert runner.query_workload(15, seed=3) != runner.query_workload(15, seed=4)

    def test_evaluate_many(self, small_dataset):
        runner = ExperimentRunner(small_dataset, "small")
        results = runner.evaluate_many(["jaccard", "bm25"], num_queries=10)
        assert [r.predicate_name for r in results] == ["Jaccard", "BM25"]

    def test_weighted_predicate_beats_unweighted_on_dirty_data(self, small_dataset):
        """The headline finding: BM25 is at least as accurate as plain Jaccard."""
        runner = ExperimentRunner(small_dataset, "small")
        jaccard = runner.evaluate("jaccard", num_queries=40)
        bm25 = runner.evaluate("bm25", num_queries=40)
        assert bm25.mean_average_precision >= jaccard.mean_average_precision - 0.02

    def test_summary_row(self, small_dataset):
        runner = ExperimentRunner(small_dataset, "small")
        row = runner.evaluate("jaccard", num_queries=5).summary_row()
        assert set(row) == {"predicate", "dataset", "MAP", "maxF1", "queries"}


class TestTiming:
    def test_preprocessing_phases(self, small_dataset):
        timing = time_preprocessing("bm25", small_dataset.strings)
        assert timing.predicate_name == "BM25"
        assert timing.num_tuples == len(small_dataset)
        assert timing.tokenization_seconds >= 0.0
        assert timing.weights_seconds >= 0.0
        assert timing.total_seconds == pytest.approx(
            timing.tokenization_seconds + timing.weights_seconds
        )

    def test_query_timing(self, small_dataset):
        queries = [small_dataset.strings[i] for i in range(10)]
        timing = time_queries("jaccard", small_dataset.strings, queries)
        assert timing.num_queries == 10
        assert timing.total_seconds > 0.0
        assert timing.average_seconds == pytest.approx(timing.total_seconds / 10)
        assert timing.average_milliseconds == pytest.approx(timing.average_seconds * 1000)

    def test_query_timing_reuses_fitted_predicate(self, small_dataset):
        predicate = Jaccard().fit(small_dataset.strings)
        timing = time_queries(predicate, small_dataset.strings, ["Morgan"])
        assert timing.num_queries == 1

    def test_query_timing_refits_predicate_fitted_on_other_relation(self, small_dataset):
        # The docstring promise: a predicate fitted on a *different* relation
        # must be refit, not silently timed against the wrong data.
        predicate = Jaccard().fit(["aaa", "bbb"])
        time_queries(predicate, small_dataset.strings, ["Morgan"])
        assert predicate.base_strings == list(small_dataset.strings)


class TestPruning:
    def test_threshold_formula(self):
        assert prune_rate_threshold([1.0, 3.0], 0.5) == 2.0
        assert prune_rate_threshold([], 0.5) == 0.0
        with pytest.raises(ValueError):
            prune_rate_threshold([1.0], 2.0)

    def test_pruner_requires_fit(self):
        with pytest.raises(RuntimeError):
            IdfPruner(0.3).pruned_tokenizer()

    def test_rate_zero_prunes_nothing(self, small_dataset):
        pruner = IdfPruner(0.0).fit(small_dataset.strings)
        assert pruner.pruned_tokens == set()
        assert pruner.retained_fraction == 1.0

    def test_rate_one_keeps_only_top_idf(self, small_dataset):
        pruner = IdfPruner(1.0).fit(small_dataset.strings)
        assert pruner.retained_fraction < 0.5

    def test_moderate_rate_drops_frequent_tokens(self, small_dataset):
        pruner = IdfPruner(0.3, tokenizer=QgramTokenizer(q=2)).fit(small_dataset.strings)
        idf = pruner.idf_table()
        for token in pruner.pruned_tokens:
            assert idf[token] < pruner.threshold

    def test_pruned_tokenizer_filters(self, small_dataset):
        pruner = IdfPruner(0.3).fit(small_dataset.strings)
        tokenizer = pruner.pruned_tokenizer()
        assert isinstance(tokenizer, PrunedTokenizer)
        tokens = tokenizer.tokenize(small_dataset.strings[0])
        assert not set(tokens) & pruner.pruned_tokens
        # attribute forwarding to the wrapped tokenizer
        assert tokenizer.q == 2

    def test_idf_histogram(self, small_dataset):
        pruner = IdfPruner(0.3).fit(small_dataset.strings)
        histogram = pruner.idf_histogram(num_bins=8)
        assert len(histogram) == 8
        assert sum(histogram) == pruner.vocabulary_size
        with pytest.raises(ValueError):
            pruner.idf_histogram(num_bins=0)

    def test_apply_builds_pruned_predicate(self, small_dataset):
        pruner = IdfPruner(0.3)
        predicate = pruner.apply("jaccard", small_dataset.strings)
        assert predicate.is_fitted
        ranked = predicate.rank(small_dataset.strings[0])
        assert ranked and ranked[0].score <= 1.0

    def test_pruning_keeps_accuracy_reasonable(self, small_dataset):
        """Moderate pruning must not destroy accuracy (paper section 5.6)."""
        runner = ExperimentRunner(small_dataset, "small")
        baseline = runner.evaluate("bm25", num_queries=30)
        pruned_predicate = IdfPruner(0.2).apply("bm25", small_dataset.strings)
        pruned = runner.evaluate(pruned_predicate, num_queries=30)
        assert pruned.mean_average_precision >= baseline.mean_average_precision - 0.1
