"""Unit tests for duplicate distributions, the generator and named datasets."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.datasets import (
    ACCURACY_CLASSES,
    DATASET_CONFIGS,
    dataset_class,
    make_dataset,
    scalability_config,
)
from repro.datagen.distributions import duplicate_counts
from repro.datagen.generator import (
    DatasetGenerator,
    GeneratedDataset,
    GeneratorParameters,
)
from repro.datagen.sources import company_names


class TestDistributions:
    @pytest.mark.parametrize("name", ["uniform", "zipf", "zipfian", "poisson"])
    def test_counts_sum_to_total(self, name):
        counts = duplicate_counts(name, 20, 200, random.Random(1))
        assert sum(counts) == 200
        assert len(counts) == 20
        assert all(count >= 1 for count in counts)

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            duplicate_counts("normal", 10, 100, random.Random(1))

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            duplicate_counts("uniform", 0, 10, random.Random(1))
        with pytest.raises(ValueError):
            duplicate_counts("uniform", 10, 5, random.Random(1))

    def test_uniform_is_even(self):
        counts = duplicate_counts("uniform", 10, 100, random.Random(1))
        assert max(counts) - min(counts) <= 1

    def test_zipf_is_skewed(self):
        counts = duplicate_counts("zipf", 50, 1000, random.Random(1))
        assert max(counts) > 3 * (1000 // 50)

    @given(st.integers(1, 30), st.integers(1, 20), st.integers(0, 1000))
    @settings(max_examples=40)
    def test_sum_property(self, clusters, extra_per_cluster, seed):
        total = clusters * (1 + extra_per_cluster)
        for name in ("uniform", "zipf", "poisson"):
            counts = duplicate_counts(name, clusters, total, random.Random(seed))
            assert sum(counts) == total


class TestGeneratorParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            GeneratorParameters(size=0, num_clean=1)
        with pytest.raises(ValueError):
            GeneratorParameters(size=10, num_clean=20)
        with pytest.raises(ValueError):
            GeneratorParameters(size=10, num_clean=5, edit_extent=2.0)

    def test_scaled(self):
        parameters = GeneratorParameters(size=100, num_clean=10)
        scaled = parameters.scaled(1000)
        assert scaled.size == 1000
        assert scaled.num_clean == 100
        assert scaled.edit_extent == parameters.edit_extent


class TestDatasetGenerator:
    @pytest.fixture(scope="class")
    def dataset(self) -> GeneratedDataset:
        generator = DatasetGenerator(company_names(count=120, seed=2))
        return generator.generate(
            GeneratorParameters(
                size=600,
                num_clean=100,
                erroneous_fraction=0.7,
                edit_extent=0.2,
                token_swap_rate=0.3,
                abbreviation_rate=0.5,
                seed=5,
            )
        )

    def test_requires_clean_strings(self):
        with pytest.raises(ValueError):
            DatasetGenerator([])

    def test_size(self, dataset):
        assert len(dataset) == 600
        assert len(dataset.strings) == 600

    def test_number_of_clusters(self, dataset):
        assert dataset.num_clusters() == 100

    def test_tids_are_sequential(self, dataset):
        assert [record.tid for record in dataset.records] == list(range(600))

    def test_every_cluster_has_a_clean_representative(self, dataset):
        for cluster_id in range(dataset.num_clusters()):
            members = dataset.cluster_members(cluster_id)
            assert any(dataset.records[tid].is_clean for tid in members)

    def test_relevant_for_is_symmetric_within_cluster(self, dataset):
        record = dataset.records[42]
        relevant = dataset.relevant_for(42)
        assert 42 in relevant
        assert all(dataset.cluster_of(tid) == record.cluster_id for tid in relevant)

    def test_some_records_are_erroneous(self, dataset):
        assert any(not record.is_clean for record in dataset.records)

    def test_errors_respect_cluster_source(self, dataset):
        # Erroneous strings should still be closer to their own clean tuple
        # than a random string from a different cluster, in the vast majority
        # of cases (sanity of error injection).
        from repro.text.strings import edit_similarity

        closer = 0
        total = 0
        for record in dataset.records[:200]:
            if record.is_clean:
                continue
            own_clean = next(
                dataset.records[tid]
                for tid in dataset.cluster_members(record.cluster_id)
                if dataset.records[tid].is_clean
            )
            other = dataset.records[(record.tid + 137) % len(dataset.records)]
            if other.cluster_id == record.cluster_id:
                continue
            total += 1
            if edit_similarity(record.text, own_clean.text) > edit_similarity(
                record.text, other.text
            ):
                closer += 1
        assert total > 0
        assert closer / total > 0.9

    def test_reproducible_for_seed(self):
        generator = DatasetGenerator(company_names(count=50, seed=2))
        parameters = GeneratorParameters(size=200, num_clean=40, seed=9)
        first = generator.generate(parameters)
        second = generator.generate(parameters)
        assert first.strings == second.strings
        assert first.cluster_ids == second.cluster_ids

    def test_sample_query_tids(self, dataset):
        sample = dataset.sample_query_tids(50, seed=1)
        assert len(sample) == 50
        assert len(set(sample)) == 50
        assert dataset.sample_query_tids(10_000) == list(range(600))


class TestNamedDatasets:
    def test_all_thirteen_configs_present(self):
        assert len(DATASET_CONFIGS) == 13
        assert set(ACCURACY_CLASSES) == {"dirty", "medium", "low"}

    def test_dataset_class_lookup(self):
        assert dataset_class("CU1") == "dirty"
        assert dataset_class("CU8") == "low"
        assert dataset_class("F3") == "single-error"

    def test_table_5_3_parameters(self):
        cu1 = DATASET_CONFIGS["CU1"]
        assert cu1.erroneous_fraction == 0.90
        assert cu1.edit_extent == 0.30
        assert cu1.token_swap_rate == 0.20
        assert cu1.abbreviation_rate == 0.50
        f1 = DATASET_CONFIGS["F1"]
        assert f1.edit_extent == 0.0
        assert f1.token_swap_rate == 0.0
        assert f1.abbreviation_rate == 0.50

    def test_make_dataset_scaled_down(self):
        dataset = make_dataset("CU5", size=200, num_clean=40)
        assert len(dataset) == 200
        assert dataset.num_clusters() == 40

    def test_make_dataset_unknown_name(self):
        with pytest.raises(ValueError):
            make_dataset("CU99")

    def test_f1_contains_only_abbreviation_errors(self):
        dataset = make_dataset("F1", size=150, num_clean=30, seed=3)
        # No edit or swap errors: every erroneous tuple differs from its clean
        # representative only by whole-word substitutions.
        for record in dataset.records:
            if record.is_clean:
                continue
            clean = next(
                dataset.records[tid].text
                for tid in dataset.cluster_members(record.cluster_id)
                if dataset.records[tid].is_clean
            )
            assert len(record.text.split()) == len(clean.split())

    def test_scalability_config_matches_section_5_5(self):
        config = scalability_config(10_000)
        assert config.size == 10_000
        assert config.erroneous_fraction == 0.70
        assert config.edit_extent == 0.20
        assert config.token_swap_rate == 0.20
        assert config.abbreviation_rate == 0.0
