"""Regression tests for the engine-stats / lifecycle / explain bugfix sweep.

Each class pins one fixed bug:

* ``run_many`` used to leave ``last_num_candidates`` holding a single
  misleading value (the batch's last query -- or, before any filter ran, a
  previous sequential call's); it now records per-qid counts and resets the
  scalar.
* ``SimilarityEngine.clear_cache`` used to leak SQLite connections the
  engine itself had created; it now closes them (and ``SQLBackend`` is a
  context manager).
* ``GESJaccard``/``GESApx`` filter scores used to depend on query word
  *order* (float summation), flipping candidates at thresholds on the
  min-hash score lattice; summation is now canonical (sorted).
* ``explain()`` used to report stale ``PruningStats`` from an earlier
  ``top_k`` call when its own execution ran the rank/heap path -- it now
  reports the strategy that actually executed, plus the fallback reason.
"""

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.sqlite import SQLiteBackend
from repro.core.predicates.registry import make_predicate
from repro.engine import SimilarityEngine

CORPUS = [
    "AT&T Corporation",
    "ATT Corp",
    "International Business Machines",
    "IBM Corporation",
    "Morgan Stanley Inc",
    "Morgn Stanley Incorporated",
    "Goldman Sachs Group",
    "Deutsche Bank AG",
]


class TestRunManyCandidateStats:
    @pytest.mark.parametrize("realization", ["direct", "declarative"])
    def test_batch_resets_single_query_counter(self, realization):
        engine = SimilarityEngine(realization=realization)
        query = engine.from_strings(CORPUS).predicate("bm25")
        # A sequential call leaves a per-query count behind ...
        query.select("Morgan Stanley", 0.1)
        predicate = query.fitted_predicate()
        assert predicate.last_num_candidates is not None
        # ... which a batch must not leave dangling: per-qid counts are
        # recorded, the scalar is reset.
        query.run_many(["IBM Corp", "Goldman"], op="top_k", k=2)
        assert predicate.last_num_candidates is None

    @pytest.mark.parametrize("realization", ["direct", "declarative"])
    def test_per_query_counts_match_sequential_execution(self, realization):
        engine = SimilarityEngine(realization=realization)
        query = engine.from_strings(CORPUS).predicate("bm25")
        texts = ["Morgan Stanley", "IBM Corp", "zzz"]
        query.run_many(texts, op="rank")
        stats = query.last_run_many_stats
        assert stats is not None
        assert stats.num_queries == len(texts)
        expected = []
        predicate = query.fitted_predicate()
        for text in texts:
            predicate.rank(text)
            expected.append(predicate.last_num_candidates)
        assert list(stats.candidates_per_query) == expected
        assert stats.total_candidates == sum(expected)
        assert "queries" in stats.describe()

    def test_declarative_predicate_records_batch_counts(self):
        engine = SimilarityEngine(realization="declarative")
        query = engine.from_strings(CORPUS).predicate("jaccard")
        texts = ["Morgan Stanley", "IBM"]
        query.run_many(texts, op="select", threshold=0.2)
        predicate = query.fitted_predicate()
        assert predicate.last_num_candidates is None
        assert len(predicate.last_batch_candidates) == len(texts)
        assert all(count >= 0 for count in predicate.last_batch_candidates)

    def test_empty_batch(self):
        engine = SimilarityEngine()
        query = engine.from_strings(CORPUS).predicate("bm25")
        assert query.run_many([], op="rank") == []
        assert query.last_run_many_stats.num_queries == 0


class TestBackendLifecycle:
    def test_clear_cache_closes_engine_owned_sqlite_backend(self):
        engine = SimilarityEngine(realization="declarative", backend="sqlite")
        query = engine.from_strings(CORPUS[:5]).predicate("bm25")
        assert len(query.rank("Morgan Stanley")) > 0
        backend = engine._backend_instances["sqlite"]
        engine.clear_cache()
        with pytest.raises(sqlite3.ProgrammingError):
            backend.query("SELECT 1")
        # The engine itself stays usable: a fresh backend is created lazily.
        assert len(query.rank("Morgan Stanley")) > 0
        engine.clear_cache()

    def test_clear_cache_leaves_caller_owned_backend_open(self):
        with SQLiteBackend() as backend:
            engine = SimilarityEngine(realization="declarative")
            query = (
                engine.from_strings(CORPUS[:5]).predicate("bm25").backend(backend)
            )
            assert len(query.rank("Morgan Stanley")) > 0
            engine.clear_cache()
            # Caller-owned instance: still open after the engine drops caches.
            assert backend.query("SELECT 1") == [(1,)]

    def test_sqlite_backend_is_a_context_manager(self):
        with SQLiteBackend() as backend:
            backend.create_table("T", ["x INTEGER"])
            backend.insert_rows("T", [(1,), (2,)])
            assert backend.row_count("T") == 2
        with pytest.raises(sqlite3.ProgrammingError):
            backend.query("SELECT 1")


_words = st.sampled_from(
    ["morgan", "stanley", "goldman", "sachs", "deutsche", "bank", "group",
     "incorporated", "corporation", "international"]
)


class TestGesApxFilterDeterminism:
    @given(
        words=st.lists(_words, min_size=2, max_size=8, unique=True),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_filter_score_is_word_order_invariant(self, words, data):
        corpus = [
            "morgan stanley incorporated group",
            "goldman sachs group incorporated",
            "deutsche bank international corporation",
            "morgan goldman deutsche stanley",
            "stanley sachs bank group",
        ]
        predicate = make_predicate("ges_apx", threshold=0.525).fit(corpus)
        permuted = data.draw(st.permutations(words))
        for tuple_words in (corpus[0].split(), corpus[3].split()):
            original = predicate.filter_score(words, tuple_words)
            shuffled = predicate.filter_score(list(permuted), tuple_words)
            # Bit-identical, not approximately equal: a one-ulp difference is
            # exactly what used to flip candidates at lattice thresholds.
            assert original == shuffled

    def test_candidate_membership_stable_at_lattice_threshold(self):
        # 0.525 sits on the min-hash filter's score lattice (multiples of
        # 1/(2*num_hashes) around the q-gram adjustment constant); candidate
        # membership there must not depend on query word order.
        corpus = [
            "morgan stanley incorporated group",
            "goldman sachs group incorporated",
            "deutsche bank international corporation",
            "morgan goldman deutsche stanley",
            "stanley sachs bank group",
            "incorporated international morgan bank",
        ]
        predicate = make_predicate("ges_apx", threshold=0.525).fit(corpus)
        words = ["morgan", "stanley", "goldman", "sachs", "deutsche", "bank",
                 "group", "incorporated"]
        forward = {m.tid for m in predicate.rank(" ".join(words))}
        backward = {m.tid for m in predicate.rank(" ".join(reversed(words)))}
        assert forward == backward

    def test_ges_jaccard_inherits_sorted_summation(self):
        corpus = ["morgan stanley group", "goldman sachs group"]
        predicate = make_predicate("ges_jaccard", threshold=0.5).fit(corpus)
        words = ["stanley", "morgan", "group"]
        assert predicate.filter_score(words, corpus[0].split()) == (
            predicate.filter_score(list(reversed(words)), corpus[0].split())
        )


class TestExplainExecutionAccuracy:
    def test_no_stale_pruning_stats_without_k(self):
        engine = SimilarityEngine()
        query = engine.from_strings(CORPUS * 10).predicate("bm25")
        # Prime the cached predicate with real pruning counters ...
        query.top_k("Morgan Stanley Inc", 3)
        assert query.fitted_predicate().pruning_stats is not None
        # ... then explain without k: the sample execution runs a full
        # ranking, so the report must not surface the stale counters.
        report = query.explain("IBM Corp", op="top_k")
        assert report.pruning is None
        assert report.execution == "top_k executed as a full ranking"
        assert "pass k=" in report.fallback_reason

    def test_reports_maxscore_when_it_ran(self):
        engine = SimilarityEngine()
        report = (
            engine.from_strings(CORPUS * 10)
            .predicate("bm25")
            .explain("Morgan Stanley Inc", k=3)
        )
        assert report.execution == "top_k via max-score pruned accumulation"
        assert report.fallback_reason is None
        assert report.pruning is not None

    def test_reports_heap_fallback_reason_for_blocked_aggregates(self):
        engine = SimilarityEngine()
        report = (
            engine.from_strings(CORPUS)
            .predicate("bm25")
            .blocker("lsh")
            .explain("Morgan Stanley", k=3)
        )
        assert report.execution == "top_k via heap accumulation"
        assert "after scoring" in report.fallback_reason
        assert report.pruning is None
        assert "executed:" in report.describe()
        assert "fallback:" in report.describe()

    def test_reports_non_monotone_fallback_reason(self):
        engine = SimilarityEngine()
        report = (
            engine.from_strings(CORPUS).predicate("jaccard").explain("IBM", k=2)
        )
        assert report.execution == "top_k via heap accumulation"
        assert "monotone sum" in report.fallback_reason

    def test_sharded_blocked_topk_plan_and_reason_agree(self):
        # A blocked sharded top_k merges the blocked per-shard rankings; the
        # plan must not announce max-score pruning and the report must name
        # the real reason (not a nonexistent restriction).
        engine = SimilarityEngine()
        query = (
            engine.from_strings(CORPUS * 3)
            .predicate("weighted_match")
            .shards(2)
            .blocker("lsh")
        )
        notes = " | ".join(query.plan("top_k").notes)
        assert "max-score" not in notes
        assert "heap" in notes
        report = query.explain("Morgan Stanley", k=3)
        assert report.execution == "top_k via heap accumulation"
        assert "merging the blocked per-shard rankings" in report.fallback_reason
        # Unblocked, the same sharded plan runs (and reports) max-score.
        unblocked = query.blocker(None)
        assert any("max-score" in note for note in unblocked.plan("top_k").notes)
        assert (
            unblocked.explain("Morgan Stanley", k=3).execution
            == "top_k via max-score pruned accumulation"
        )

    def test_declarative_topk_reports_sql_execution(self):
        engine = SimilarityEngine(realization="declarative")
        report = engine.from_strings(CORPUS[:5]).predicate("bm25").explain(
            "Morgan Stanley", k=2
        )
        assert report.execution == "top_k via SQL (see sql path / emitted SQL)"
        assert report.pruning is None
